//! Property-based tests for the similarity metrics and series tools.

use egeria_analysis::cka::cka;
use egeria_analysis::pwcca::pwcca_distance;
use egeria_analysis::series::{moving_average, window_slope, window_std};
use egeria_analysis::sp_loss;
use egeria_tensor::{Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sp_loss_zero_iff_same_gram(seed in any::<u64>(), b in 2usize..8, d in 2usize..10) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[b, d], &mut rng);
        prop_assert!(sp_loss(&a, &a).unwrap() < 1e-9);
        // Any orthogonal-ish perturbation keeps it non-negative.
        let other = Tensor::randn(&[b, d], &mut rng);
        prop_assert!(sp_loss(&a, &other).unwrap() >= 0.0);
    }

    #[test]
    fn sp_loss_symmetric(seed in any::<u64>(), b in 2usize..8) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[b, 6], &mut rng);
        let c = Tensor::randn(&[b, 6], &mut rng);
        let ab = sp_loss(&a, &c).unwrap();
        let ba = sp_loss(&c, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-5);
    }

    #[test]
    fn sp_loss_scale_invariant(seed in any::<u64>(), scale in 0.1f32..10.0) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[5, 7], &mut rng);
        let c = Tensor::randn(&[5, 7], &mut rng);
        let base = sp_loss(&a, &c).unwrap();
        let scaled = sp_loss(&a.mul_scalar(scale), &c).unwrap();
        prop_assert!((base - scaled).abs() < 1e-4);
    }

    #[test]
    fn pwcca_distance_stays_in_unit_interval(seed in any::<u64>(), n in 6usize..20, d in 2usize..5) {
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[n, d], &mut rng);
        let y = Tensor::randn(&[n, d], &mut rng);
        let dist = pwcca_distance(&x, &y).unwrap();
        prop_assert!((0.0..=1.0).contains(&dist));
        prop_assert!(pwcca_distance(&x, &x).unwrap() < 1e-2);
    }

    #[test]
    fn cka_bounded_and_reflexive(seed in any::<u64>(), n in 5usize..15, d in 2usize..6) {
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[n, d], &mut rng);
        let y = Tensor::randn(&[n, d], &mut rng);
        let v = cka(&x, &y).unwrap();
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((cka(&x, &x).unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn moving_average_bounded_by_extremes(values in prop::collection::vec(-100.0f32..100.0, 1..50), w in 1usize..20) {
        let avg = moving_average(&values, w).unwrap();
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(avg >= lo - 1e-4 && avg <= hi + 1e-4);
    }

    #[test]
    fn window_slope_sign_matches_trend(start in -10.0f32..10.0, step in 0.01f32..2.0, n in 3usize..30) {
        let up: Vec<f32> = (0..n).map(|i| start + step * i as f32).collect();
        prop_assert!(window_slope(&up, n).unwrap() > 0.0);
        let down: Vec<f32> = up.iter().rev().copied().collect();
        prop_assert!(window_slope(&down, n).unwrap() < 0.0);
    }

    #[test]
    fn window_std_nonnegative_and_zero_for_constants(v in -50.0f32..50.0, n in 2usize..30) {
        let series = vec![v; n];
        // Tolerance scales with |v|: the variance of a constant series is
        // pure floating-point cancellation noise.
        prop_assert!(window_std(&series, n).unwrap().abs() < 1e-4 * v.abs().max(1.0));
    }
}
