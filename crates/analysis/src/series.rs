//! Time-series smoothing and slope analysis for Algorithm 1.

use egeria_tensor::linalg::linear_fit;
use egeria_tensor::{Result, TensorError};

/// Equation 2's moving average: the mean of the last `w` values, or of all
/// values when fewer than `w` exist.
pub fn moving_average(values: &[f32], w: usize) -> Result<f32> {
    if values.is_empty() || w == 0 {
        return Err(TensorError::Numerical(
            "moving_average needs a non-empty history and w > 0".into(),
        ));
    }
    let take = w.min(values.len());
    let slice = &values[values.len() - take..];
    Ok(slice.iter().sum::<f32>() / take as f32)
}

/// The least-squares slope of the last `w` points of a series (Algorithm
/// 1's `windowLinearFit`), with x = 0, 1, 2, ….
///
/// Returns `None` when fewer than 2 points are available (no trend can be
/// estimated yet).
pub fn window_slope(values: &[f32], w: usize) -> Option<f32> {
    let take = w.min(values.len());
    if take < 2 {
        return None;
    }
    let ys = &values[values.len() - take..];
    let xs: Vec<f32> = (0..take).map(|i| i as f32).collect();
    linear_fit(&xs, ys).ok().map(|(slope, _)| slope)
}

/// Standard deviation of the last `w` values of a series (population
/// formula); `None` with fewer than 2 points.
pub fn window_std(values: &[f32], w: usize) -> Option<f32> {
    let take = w.min(values.len());
    if take < 2 {
        return None;
    }
    let slice = &values[values.len() - take..];
    let mean = slice.iter().sum::<f32>() / take as f32;
    let var = slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / take as f32;
    Some(var.sqrt())
}

/// The relative change of a loss series over its last `w` values:
/// `|mean(second half) − mean(first half)| / mean(first half)`.
///
/// Egeria's bootstrapping monitor declares the critical period over when
/// this drops below the configured rate (10% by default, §4.2.2).
pub fn relative_change(values: &[f32], w: usize) -> Option<f32> {
    let take = w.min(values.len());
    if take < 4 {
        return None;
    }
    let slice = &values[values.len() - take..];
    let half = take / 2;
    let first: f32 = slice[..half].iter().sum::<f32>() / half as f32;
    let second: f32 = slice[half..].iter().sum::<f32>() / (take - half) as f32;
    if first.abs() < 1e-12 {
        return Some(0.0);
    }
    Some((second - first).abs() / first.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_matches_equation_2() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        // i >= W: average the last W.
        assert_eq!(moving_average(&v, 2).unwrap(), 3.5);
        // i < W: average everything so far.
        assert_eq!(moving_average(&v, 10).unwrap(), 2.5);
    }

    #[test]
    fn moving_average_rejects_empty() {
        assert!(moving_average(&[], 3).is_err());
        assert!(moving_average(&[1.0], 0).is_err());
    }

    #[test]
    fn window_slope_flat_series_is_zero() {
        let v = vec![2.0; 10];
        assert!(window_slope(&v, 5).unwrap().abs() < 1e-7);
    }

    #[test]
    fn window_slope_detects_trends() {
        let up: Vec<f32> = (0..10).map(|i| i as f32 * 0.5).collect();
        assert!((window_slope(&up, 10).unwrap() - 0.5).abs() < 1e-5);
        let down: Vec<f32> = (0..10).map(|i| -(i as f32)).collect();
        assert!(window_slope(&down, 10).unwrap() < -0.9);
    }

    #[test]
    fn window_slope_uses_only_the_window() {
        // Steep history followed by a flat window: slope ≈ 0.
        let mut v: Vec<f32> = (0..10).map(|i| i as f32 * 10.0).collect();
        v.extend(vec![90.0; 10]);
        assert!(window_slope(&v, 10).unwrap().abs() < 1e-5);
    }

    #[test]
    fn window_slope_needs_two_points() {
        assert!(window_slope(&[1.0], 5).is_none());
        assert!(window_slope(&[], 5).is_none());
    }

    #[test]
    fn window_std_flat_is_zero_and_spread_is_positive() {
        assert_eq!(window_std(&[2.0; 8], 5), Some(0.0));
        let noisy = [1.0, 3.0, 1.0, 3.0];
        assert!(window_std(&noisy, 4).unwrap() > 0.9);
        assert!(window_std(&[1.0], 4).is_none());
    }

    #[test]
    fn relative_change_drops_as_loss_stabilizes() {
        let falling: Vec<f32> = (0..20).map(|i| 10.0 / (1.0 + i as f32)).collect();
        let stable = vec![1.0; 20];
        let rc_fall = relative_change(&falling, 20).unwrap();
        let rc_stable = relative_change(&stable, 20).unwrap();
        assert!(rc_fall > 0.3, "falling change {rc_fall}");
        assert!(rc_stable < 1e-6);
    }

    #[test]
    fn relative_change_needs_history() {
        assert!(relative_change(&[1.0, 2.0, 3.0], 10).is_none());
    }
}
