//! Linear centered kernel alignment (Kornblith et al.).

use egeria_tensor::linalg::center_columns;
use egeria_tensor::{Result, Tensor, TensorError};

/// Linear CKA similarity between `(n, d₁)` and `(n, d₂)` activation
/// matrices; 1 means identical representations up to orthogonal transform
/// and isotropic scaling.
pub fn cka(x: &Tensor, y: &Tensor) -> Result<f32> {
    if x.rank() != 2 || y.rank() != 2 || x.dims()[0] != y.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            op: "cka",
            lhs: x.dims().to_vec(),
            rhs: y.dims().to_vec(),
        });
    }
    let xc = center_columns(x)?;
    let yc = center_columns(y)?;
    let xty = xc.transpose2d()?.matmul(&yc)?;
    let xtx = xc.transpose2d()?.matmul(&xc)?;
    let yty = yc.transpose2d()?.matmul(&yc)?;
    let denom = xtx.norm() * yty.norm();
    if denom < 1e-12 {
        return Ok(0.0);
    }
    Ok((xty.sq_norm() / denom).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    #[test]
    fn self_similarity_is_one() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[20, 5], &mut rng);
        assert!((cka(&x, &x).unwrap() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn invariant_to_isotropic_scaling() {
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[20, 5], &mut rng);
        let y = Tensor::randn(&[20, 5], &mut rng);
        let a = cka(&x, &y).unwrap();
        let b = cka(&x.mul_scalar(7.0), &y).unwrap();
        assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn independent_matrices_have_low_cka() {
        let mut rng = Rng::new(3);
        let x = Tensor::randn(&[100, 4], &mut rng);
        let y = Tensor::randn(&[100, 4], &mut rng);
        assert!(cka(&x, &y).unwrap() < 0.3);
    }

    #[test]
    fn constant_matrix_yields_zero() {
        let mut rng = Rng::new(4);
        let x = Tensor::full(&[10, 3], 1.0);
        let y = Tensor::randn(&[10, 3], &mut rng);
        assert_eq!(cka(&x, &y).unwrap(), 0.0);
    }
}
