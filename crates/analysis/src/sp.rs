//! Similarity-Preserving loss (Appendix B of the paper).
//!
//! Given activations `A_T`, `A_R` of the training and reference model for
//! the same mini-batch, reshape each to `(b, ·)`, form the batch Gram
//! matrices `G = Q·Qᵀ`, L2-normalize each row, and report
//! `‖G_T − G_R‖²_F / b²`. The loss compares *pair-wise similarity
//! structure*, so it is invariant to per-sample activation scaling — the
//! property that makes it a semantically meaningful plasticity signal.

use egeria_tensor::{Result, Tensor, TensorError};

/// Row-normalized batch Gram matrix `(b, b)` of a `(b, …)` activation.
pub fn similarity_matrix(a: &Tensor) -> Result<Tensor> {
    let b = *a.dims().first().ok_or(TensorError::ShapeMismatch {
        op: "sp_loss",
        lhs: a.dims().to_vec(),
        rhs: vec![],
    })?;
    if b == 0 {
        return Err(TensorError::Numerical("empty batch in sp_loss".into()));
    }
    let q = a.reshape(&[b, a.numel() / b])?;
    let mut g = q.matmul(&q.transpose2d()?)?;
    for i in 0..b {
        let row = &mut g.data_mut()[i * b..(i + 1) * b];
        let norm: f32 = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
    Ok(g)
}

/// The SP loss between two same-batch activations (Equation 1's
/// `SP_loss(A_T, A_R)`).
pub fn sp_loss(a_t: &Tensor, a_r: &Tensor) -> Result<f32> {
    if a_t.dims().first() != a_r.dims().first() {
        return Err(TensorError::ShapeMismatch {
            op: "sp_loss",
            lhs: a_t.dims().to_vec(),
            rhs: a_r.dims().to_vec(),
        });
    }
    let b = a_t.dims()[0] as f32;
    let gt = similarity_matrix(a_t)?;
    let gr = similarity_matrix(a_r)?;
    Ok(gt.sub(&gr)?.sq_norm() / (b * b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    #[test]
    fn identical_activations_have_zero_loss() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[8, 4, 3, 3], &mut rng);
        assert!(sp_loss(&a, &a).unwrap() < 1e-10);
    }

    #[test]
    fn loss_is_symmetric_and_nonnegative() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[6, 10], &mut rng);
        let b = Tensor::randn(&[6, 10], &mut rng);
        let ab = sp_loss(&a, &b).unwrap();
        let ba = sp_loss(&b, &a).unwrap();
        assert!(ab >= 0.0);
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn invariant_to_global_scaling() {
        // Scaling all activations scales Gram rows uniformly; row
        // normalization cancels it.
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[5, 7], &mut rng);
        let b = Tensor::randn(&[5, 7], &mut rng);
        let l1 = sp_loss(&a, &b).unwrap();
        let l2 = sp_loss(&a.mul_scalar(3.0), &b).unwrap();
        assert!((l1 - l2).abs() < 1e-5);
    }

    #[test]
    fn different_shapes_same_batch_are_comparable() {
        // Train and reference activations may differ in feature shape only
        // if architectures diverge — same arch means same shape, but the
        // metric itself only requires matching batch size.
        let mut rng = Rng::new(4);
        let a = Tensor::randn(&[4, 8], &mut rng);
        let b = Tensor::randn(&[4, 2, 2, 2], &mut rng);
        assert!(sp_loss(&a, &b).is_ok());
        let c = Tensor::randn(&[5, 8], &mut rng);
        assert!(sp_loss(&a, &c).is_err());
    }

    #[test]
    fn closer_models_have_lower_loss() {
        let mut rng = Rng::new(5);
        let a = Tensor::randn(&[8, 16], &mut rng);
        let noise = Tensor::randn(&[8, 16], &mut rng);
        let near = a.add(&noise.mul_scalar(0.05)).unwrap();
        let far = a.add(&noise.mul_scalar(1.0)).unwrap();
        assert!(sp_loss(&a, &near).unwrap() < sp_loss(&a, &far).unwrap());
    }

    #[test]
    fn similarity_matrix_rows_are_unit_norm() {
        let mut rng = Rng::new(6);
        let a = Tensor::randn(&[6, 12], &mut rng);
        let g = similarity_matrix(&a).unwrap();
        for i in 0..6 {
            let norm: f32 = g.data()[i * 6..(i + 1) * 6]
                .iter()
                .map(|&x| x * x)
                .sum::<f32>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-4);
        }
    }
}
