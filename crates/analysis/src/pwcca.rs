//! Projection-weighted canonical correlation analysis (Morcos et al.).
//!
//! PWCCA compares two activation matrices `X (n×d₁)`, `Y (n×d₂)` elicited by
//! the same `n` inputs: compute CCA correlations between their column
//! spaces, then weight each canonical direction by how much of `X` it
//! accounts for. [`pwcca_distance`] returns `1 − similarity ∈ [0, 1]`; low
//! means converged toward the comparison model, matching the paper's use in
//! Figures 1 and 15.

use egeria_tensor::linalg::{center_columns, qr, svd};
use egeria_tensor::{Result, Tensor, TensorError};

/// PWCCA similarity between two activation matrices with matching row
/// (sample) counts. Returns a value in `[0, 1]`; 1 means identical
/// subspaces.
pub fn pwcca_similarity(x: &Tensor, y: &Tensor) -> Result<f32> {
    if x.rank() != 2 || y.rank() != 2 || x.dims()[0] != y.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            op: "pwcca",
            lhs: x.dims().to_vec(),
            rhs: y.dims().to_vec(),
        });
    }
    let n = x.dims()[0];
    if n < 2 {
        return Err(TensorError::Numerical("pwcca needs >= 2 samples".into()));
    }
    let xc = center_columns(x)?;
    let yc = center_columns(y)?;
    // Orthonormal bases of the (centered) column spaces. Guard rank
    // deficiency by dropping near-zero directions via SVD.
    let qx = orthonormal_basis(&xc)?;
    let qy = orthonormal_basis(&yc)?;
    if qx.dims()[1] == 0 || qy.dims()[1] == 0 {
        // A constant activation has no variance to correlate.
        return Ok(0.0);
    }
    let m = qx.transpose2d()?.matmul(&qy)?;
    let (u, rho, _v) = svd(&m)?;
    // Canonical directions of X in sample space: H = Qx · U.
    let h = qx.matmul(&u)?;
    let k = rho.len();
    // Projection weights: α_i = Σ_j |⟨h_i, x_j⟩| over the columns of X.
    let proj = h.transpose2d()?.matmul(&xc)?; // (k, d1)
    let d1 = xc.dims()[1];
    let mut alphas = vec![0.0f32; k];
    for (i, a) in alphas.iter_mut().enumerate() {
        *a = proj.data()[i * d1..(i + 1) * d1]
            .iter()
            .map(|&v| v.abs())
            .sum();
    }
    let total: f32 = alphas.iter().sum();
    if total <= 1e-12 {
        return Ok(0.0);
    }
    let sim: f32 = alphas
        .iter()
        .zip(rho.iter())
        .map(|(&a, &r)| a / total * r.clamp(0.0, 1.0))
        .sum();
    Ok(sim.clamp(0.0, 1.0))
}

/// PWCCA distance `1 − similarity` (the paper's Figure 1 y-axis: lower =
/// more converged).
pub fn pwcca_distance(x: &Tensor, y: &Tensor) -> Result<f32> {
    Ok(1.0 - pwcca_similarity(x, y)?)
}

/// Flattens a `(b, …)` activation into the `(b, features)` matrix PWCCA
/// expects, averaging spatial positions for rank-4 maps (the standard
/// practice for CNN activations, keeping the feature dimension at channel
/// count).
pub fn activation_matrix(a: &Tensor) -> Result<Tensor> {
    match a.rank() {
        2 => Ok(a.clone()),
        3 => a.reshape(&[a.dims()[0], a.dims()[1] * a.dims()[2]]),
        4 => {
            // (b, c, h, w) → average over h, w → (b, c).
            egeria_tensor::conv::global_avg_pool(a)
        }
        _ => Err(TensorError::ShapeMismatch {
            op: "activation_matrix",
            lhs: a.dims().to_vec(),
            rhs: vec![],
        }),
    }
}

fn orthonormal_basis(a: &Tensor) -> Result<Tensor> {
    let (n, d) = (a.dims()[0], a.dims()[1]);
    if d <= n {
        let (q, r) = qr(a)?;
        // Drop columns whose diagonal is numerically zero (rank deficiency).
        let keep: Vec<usize> = (0..d)
            .filter(|&i| r.at(&[i, i]).map(|v| v.abs() > 1e-5).unwrap_or(false))
            .collect();
        select_columns(&q, &keep)
    } else {
        // Wide activations: use the top-n left singular vectors.
        let (u, s, _) = svd(a)?;
        let keep: Vec<usize> = (0..s.len()).filter(|&i| s[i] > 1e-5).collect();
        select_columns(&u, &keep)
    }
}

fn select_columns(m: &Tensor, cols: &[usize]) -> Result<Tensor> {
    let (rows, all) = (m.dims()[0], m.dims()[1]);
    let mut out = Tensor::zeros(&[rows, cols.len()]);
    for (j, &c) in cols.iter().enumerate() {
        if c >= all {
            return Err(TensorError::AxisOutOfRange { axis: c, rank: all });
        }
        for i in 0..rows {
            out.data_mut()[i * cols.len() + j] = m.data()[i * all + c];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    #[test]
    fn identical_matrices_have_distance_zero() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[20, 5], &mut rng);
        let d = pwcca_distance(&x, &x).unwrap();
        assert!(d < 1e-3, "self-distance {d}");
    }

    #[test]
    fn invariant_to_invertible_linear_maps() {
        // CCA compares subspaces, so Y = X·A for invertible A is identical.
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[30, 4], &mut rng);
        let a = Tensor::randn(&[4, 4], &mut rng).add(&Tensor::eye(4).mul_scalar(3.0)).unwrap();
        let y = x.matmul(&a).unwrap();
        let d = pwcca_distance(&x, &y).unwrap();
        assert!(d < 0.02, "distance under linear map {d}");
    }

    #[test]
    fn independent_random_matrices_are_far() {
        let mut rng = Rng::new(3);
        let x = Tensor::randn(&[60, 4], &mut rng);
        let y = Tensor::randn(&[60, 4], &mut rng);
        let d = pwcca_distance(&x, &y).unwrap();
        assert!(d > 0.4, "independent distance {d}");
    }

    #[test]
    fn distance_in_unit_interval() {
        let mut rng = Rng::new(4);
        for _ in 0..5 {
            let x = Tensor::randn(&[15, 6], &mut rng);
            let y = Tensor::randn(&[15, 3], &mut rng);
            let d = pwcca_distance(&x, &y).unwrap();
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn partial_overlap_is_intermediate() {
        let mut rng = Rng::new(5);
        let x = Tensor::randn(&[40, 4], &mut rng);
        let noise = Tensor::randn(&[40, 4], &mut rng);
        let near = x.add(&noise.mul_scalar(0.2)).unwrap();
        let d_near = pwcca_distance(&x, &near).unwrap();
        let d_far = pwcca_distance(&x, &noise).unwrap();
        assert!(d_near < d_far, "{d_near} vs {d_far}");
    }

    #[test]
    fn constant_activation_yields_zero_similarity() {
        let mut rng = Rng::new(6);
        let x = Tensor::full(&[10, 3], 2.5);
        let y = Tensor::randn(&[10, 3], &mut rng);
        assert!((pwcca_distance(&x, &y).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn activation_matrix_shapes() {
        let a4 = Tensor::zeros(&[2, 3, 4, 4]);
        assert_eq!(activation_matrix(&a4).unwrap().dims(), &[2, 3]);
        let a3 = Tensor::zeros(&[2, 5, 6]);
        assert_eq!(activation_matrix(&a3).unwrap().dims(), &[2, 30]);
        let a2 = Tensor::zeros(&[2, 7]);
        assert_eq!(activation_matrix(&a2).unwrap().dims(), &[2, 7]);
    }

    #[test]
    fn rejects_mismatched_sample_counts() {
        let x = Tensor::zeros(&[4, 2]);
        let y = Tensor::zeros(&[5, 2]);
        assert!(pwcca_distance(&x, &y).is_err());
    }
}
