//! Representation-similarity metrics and time-series tools.
//!
//! Three activation-comparison metrics from the paper:
//!
//! - [`sp_loss`]: the Similarity-Preserving loss (Tung & Mori) of Appendix B
//!   — Egeria's *plasticity* metric (Equation 1),
//! - [`pwcca`]: projection-weighted CCA (Morcos et al.) — the *post hoc*
//!   convergence analysis of Figures 1 and 15 (requires a fully-trained
//!   model, which is why the online system uses SP loss instead),
//! - [`cka`]: linear centered kernel alignment, included as a third lens for
//!   the heatmap experiments.
//!
//! Plus the time-series machinery of Algorithm 1: the moving average of
//! Equation 2 ([`series::moving_average`]) and the windowed least-squares
//! slope ([`series::window_slope`]).

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod cka;
pub mod pwcca;
pub mod series;
pub mod sp;

pub use pwcca::pwcca_distance;
pub use sp::sp_loss;
