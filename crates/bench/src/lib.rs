//! Experiment harness: workload definitions, run helpers, and result
//! emission for every table and figure of the paper (see DESIGN.md §3 for
//! the experiment index).

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod experiments;
pub mod runner;
pub mod workloads;

pub use runner::{write_csv, write_json, ResultsDir};
