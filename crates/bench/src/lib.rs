//! Experiment harness: workload definitions, run helpers, and result
//! emission for every table and figure of the paper (see DESIGN.md §3 for
//! the experiment index).

pub mod experiments;
pub mod runner;
pub mod workloads;

pub use runner::{write_csv, write_json, ResultsDir};
