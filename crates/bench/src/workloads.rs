//! The seven Table 1 workloads at reproduction scale.
//!
//! Each workload bundles a width-reduced model, its synthetic dataset, the
//! paper's training configuration (optimizer family, LR schedule shape,
//! batch size), and the paper-scale cost profile used by the performance
//! simulator. Epoch counts are scaled down ~3× from the paper so a full
//! sweep runs on a CPU in minutes; LR-decay milestones keep their relative
//! positions (e.g. ResNet's 100/150-of-200 become 50/75-of-100).

use egeria_core::trainer::Optimizer;
use egeria_data::images::{ImageDataConfig, SyntheticImages};
use egeria_data::qa::{QaDataConfig, SyntheticQa};
use egeria_data::segmentation::{SegDataConfig, SyntheticSegmentation};
use egeria_data::translation::{SyntheticTranslation, TranslationConfig};
use egeria_data::{DataLoader, Dataset};
use egeria_models::bert::{BertConfig, BertQa};
use egeria_models::deeplab::{deeplab_v3, DeepLabConfig};
use egeria_models::mobilenet::{mobilenet_v2, MobileNetConfig};
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::transformer::{Seq2SeqTransformer, TransformerConfig};
use egeria_models::Model;
use egeria_nn::optim::{Adam, Sgd};
use egeria_nn::sched::{InverseSqrt, LambdaLr, LinearDecay, LrSchedule, MultiStepDecay};
use egeria_simsys::arch::{FlopsModel, PaperScale};

/// Which Table 1 workload to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// ResNet-50-style on synthetic ImageNet (classification).
    ResNet50,
    /// MobileNetV2-style on synthetic CIFAR (classification).
    MobileNetV2,
    /// ResNet-56 on synthetic CIFAR (classification).
    ResNet56,
    /// DeepLabv3-style on synthetic VOC (segmentation).
    DeepLabV3,
    /// Transformer-Base on synthetic WMT (translation).
    TransformerBase,
    /// Transformer-Tiny on synthetic WMT.
    TransformerTiny,
    /// BERT-Base-style fine-tuning on synthetic SQuAD (QA).
    BertQa,
}

/// A fully-specified training workload.
pub struct Workload {
    /// Workload name for reports.
    pub name: &'static str,
    /// The model under training.
    pub model: Box<dyn Model>,
    /// Training dataset.
    pub train: Box<dyn Dataset>,
    /// Validation dataset.
    pub val: Box<dyn Dataset>,
    /// Per-worker batch size.
    pub batch_size: usize,
    /// Default epoch count (scaled from the paper).
    pub epochs: usize,
    /// Base learning rate.
    pub base_lr: f32,
    /// Whether the schedule is indexed per iteration.
    pub lr_per_iteration: bool,
    /// Whether the validation metric improves upward.
    pub higher_is_better: bool,
    /// Paper-scale totals for the cost model.
    pub paper_scale: PaperScale,
    /// FLOP distribution model.
    pub flops_model: FlopsModel,
    optimizer_kind: OptKind,
    schedule_kind: SchedKind,
}

#[derive(Clone, Copy)]
enum OptKind {
    SgdMomentum,
    Adam,
}

#[derive(Clone, Copy)]
enum SchedKind {
    /// Step decay at 50% and 75% of training (paper: 100/150 of 200 or
    /// 30/60 of 90).
    MultiStep,
    /// Inverse-sqrt with warmup (Transformer).
    InverseSqrt { warmup: usize },
    /// Linear decay (BERT fine-tuning).
    Linear { total: usize },
    /// Polynomial lambda (DeepLab).
    Poly { total: usize },
}

impl Workload {
    /// Builds the given workload at reproduction scale.
    pub fn make(kind: Kind, seed: u64) -> Workload {
        match kind {
            Kind::ResNet56 => {
                let model = resnet_cifar(
                    ResNetCifarConfig {
                        n: 9,
                        width: 4,
                        classes: 8,
                        ..Default::default()
                    },
                    seed,
                );
                let data_cfg = ImageDataConfig {
                    samples: 320,
                    classes: 8,
                    size: 10,
                    noise: 0.5,
                    augment: true,
                };
                Workload {
                    name: "resnet56",
                    model: Box::new(model),
                    train: Box::new(SyntheticImages::new(data_cfg, seed.wrapping_add(1))),
                    val: Box::new(SyntheticImages::new(
                        ImageDataConfig {
                            samples: 128,
                            augment: false,
                            ..data_cfg
                        },
                        seed.wrapping_add(1),
                    )),
                    batch_size: 16,
                    epochs: 60,
                    base_lr: 0.1,
                    lr_per_iteration: false,
                    higher_is_better: true,
                    paper_scale: PaperScale::resnet56_cifar(),
                    flops_model: FlopsModel::PerBlockUniform,
                    optimizer_kind: OptKind::SgdMomentum,
                    schedule_kind: SchedKind::MultiStep,
                }
            }
            Kind::ResNet50 => {
                let model = resnet_cifar(
                    ResNetCifarConfig {
                        n: 4,
                        width: 4,
                        classes: 12,
                        ..Default::default()
                    },
                    seed,
                );
                let data_cfg = ImageDataConfig {
                    samples: 320,
                    classes: 12,
                    size: 10,
                    noise: 0.5,
                    augment: true,
                };
                Workload {
                    name: "resnet50",
                    model: Box::new(model),
                    train: Box::new(SyntheticImages::new(data_cfg, seed.wrapping_add(2))),
                    val: Box::new(SyntheticImages::new(
                        ImageDataConfig {
                            samples: 128,
                            augment: false,
                            ..data_cfg
                        },
                        seed.wrapping_add(2),
                    )),
                    batch_size: 16,
                    epochs: 45,
                    base_lr: 0.1,
                    lr_per_iteration: false,
                    higher_is_better: true,
                    paper_scale: PaperScale::resnet50_imagenet(),
                    flops_model: FlopsModel::PerBlockUniform,
                    optimizer_kind: OptKind::SgdMomentum,
                    schedule_kind: SchedKind::MultiStep,
                }
            }
            Kind::MobileNetV2 => {
                let model = mobilenet_v2(
                    MobileNetConfig {
                        width_div: 8,
                        classes: 10,
                        ..Default::default()
                    },
                    seed,
                );
                let data_cfg = ImageDataConfig {
                    samples: 240,
                    classes: 10,
                    size: 12,
                    noise: 1.3,
                    augment: true,
                };
                Workload {
                    name: "mobilenet_v2",
                    model: Box::new(model),
                    train: Box::new(SyntheticImages::new(data_cfg, seed.wrapping_add(3))),
                    val: Box::new(SyntheticImages::new(
                        ImageDataConfig {
                            samples: 64,
                            augment: false,
                            ..data_cfg
                        },
                        seed.wrapping_add(3),
                    )),
                    batch_size: 16,
                    epochs: 40,
                    base_lr: 0.05,
                    lr_per_iteration: false,
                    higher_is_better: true,
                    paper_scale: PaperScale::mobilenet_v2_cifar(),
                    flops_model: FlopsModel::PerBlockUniform,
                    optimizer_kind: OptKind::SgdMomentum,
                    schedule_kind: SchedKind::MultiStep,
                }
            }
            Kind::DeepLabV3 => {
                let model = deeplab_v3(
                    DeepLabConfig {
                        stages: vec![2, 2, 2, 2],
                        width: 4,
                        classes: 5,
                        ..Default::default()
                    },
                    seed,
                );
                let data_cfg = SegDataConfig {
                    samples: 192,
                    classes: 5,
                    size: 16,
                };
                let epochs = 40;
                Workload {
                    name: "deeplabv3",
                    model: Box::new(model),
                    train: Box::new(SyntheticSegmentation::new(data_cfg, seed.wrapping_add(4))),
                    val: Box::new(SyntheticSegmentation::new(
                        SegDataConfig {
                            samples: 64,
                            ..data_cfg
                        },
                        seed.wrapping_add(400),
                    )),
                    batch_size: 16,
                    epochs,
                    base_lr: 0.02,
                    lr_per_iteration: false,
                    higher_is_better: true,
                    paper_scale: PaperScale::deeplabv3_voc(),
                    flops_model: FlopsModel::PerBlockUniform,
                    optimizer_kind: OptKind::SgdMomentum,
                    schedule_kind: SchedKind::Poly { total: epochs },
                }
            }
            Kind::TransformerBase => {
                let cfg = TransformerConfig::base(16);
                let model = Seq2SeqTransformer::new("transformer_base", cfg, seed)
                    .expect("valid config");
                let data_cfg = TranslationConfig {
                    samples: 256,
                    vocab: 16,
                    len: 8,
                };
                Workload {
                    name: "transformer_base",
                    model: Box::new(model),
                    train: Box::new(SyntheticTranslation::new(data_cfg, seed.wrapping_add(5))),
                    val: Box::new(SyntheticTranslation::new(
                        TranslationConfig {
                            samples: 96,
                            ..data_cfg
                        },
                        seed.wrapping_add(5),
                    )),
                    batch_size: 16,
                    epochs: 50,
                    base_lr: 4e-3,
                    lr_per_iteration: true,
                    // The reported metric series is token accuracy
                    // (perplexity is derivable from the loss and shown in
                    // Figure 9c's CSV).
                    higher_is_better: true,
                    paper_scale: PaperScale::transformer_base_wmt(),
                    flops_model: FlopsModel::ProportionalToParams,
                    optimizer_kind: OptKind::Adam,
                    schedule_kind: SchedKind::InverseSqrt { warmup: 40 },
                }
            }
            Kind::TransformerTiny => {
                let cfg = TransformerConfig::tiny(16);
                let model = Seq2SeqTransformer::new("transformer_tiny", cfg, seed)
                    .expect("valid config");
                let data_cfg = TranslationConfig {
                    samples: 256,
                    vocab: 16,
                    len: 8,
                };
                Workload {
                    name: "transformer_tiny",
                    model: Box::new(model),
                    train: Box::new(SyntheticTranslation::new(data_cfg, seed.wrapping_add(6))),
                    val: Box::new(SyntheticTranslation::new(
                        TranslationConfig {
                            samples: 96,
                            ..data_cfg
                        },
                        seed.wrapping_add(6),
                    )),
                    batch_size: 16,
                    epochs: 35,
                    base_lr: 3e-3,
                    lr_per_iteration: true,
                    // The reported metric series is token accuracy
                    // (perplexity is derivable from the loss and shown in
                    // Figure 9c's CSV).
                    higher_is_better: true,
                    paper_scale: PaperScale::transformer_tiny_wmt(),
                    flops_model: FlopsModel::ProportionalToParams,
                    optimizer_kind: OptKind::Adam,
                    schedule_kind: SchedKind::InverseSqrt { warmup: 40 },
                }
            }
            Kind::BertQa => {
                let mut model = BertQa::new(
                    "bert_base",
                    BertConfig {
                        vocab: 24,
                        d_model: 24,
                        heads: 4,
                        d_ff: 48,
                        layers: 12,
                    },
                    seed,
                )
                .expect("valid config");
                // The paper FINE-TUNES a pretrained BERT; emulate the
                // pretrained checkpoint by training on a disjoint synthetic
                // QA distribution first (deterministic in `seed`), so front
                // blocks start near-converged like real BERT layers.
                pretrain_bert(&mut model, seed);
                let data_cfg = QaDataConfig {
                    samples: 256,
                    vocab: 24,
                    len: 16,
                    answer_len: 3,
                };
                let epochs = 25;
                let iters = epochs * (256 / 16);
                Workload {
                    name: "bert_qa",
                    model: Box::new(model),
                    train: Box::new(SyntheticQa::new(data_cfg, seed.wrapping_add(7))),
                    val: Box::new(SyntheticQa::new(
                        QaDataConfig {
                            samples: 96,
                            ..data_cfg
                        },
                        seed.wrapping_add(700),
                    )),
                    batch_size: 16,
                    epochs,
                    base_lr: 5e-4,
                    lr_per_iteration: true,
                    higher_is_better: true,
                    paper_scale: PaperScale::bert_base_squad(),
                    flops_model: FlopsModel::ProportionalToParams,
                    optimizer_kind: OptKind::Adam,
                    schedule_kind: SchedKind::Linear { total: iters },
                }
            }
        }
    }

    /// A fresh optimizer for this workload.
    pub fn optimizer(&self) -> Optimizer {
        match self.optimizer_kind {
            OptKind::SgdMomentum => Optimizer::Sgd(Sgd::new(self.base_lr, 0.9, 1e-4)),
            OptKind::Adam => Optimizer::Adam(Adam::new(self.base_lr, 0.0)),
        }
    }

    /// A fresh LR schedule for this workload.
    pub fn schedule(&self) -> Box<dyn LrSchedule> {
        match self.schedule_kind {
            SchedKind::MultiStep => Box::new(MultiStepDecay::new(
                self.base_lr,
                0.1,
                vec![self.epochs / 2, self.epochs * 3 / 4],
            )),
            SchedKind::InverseSqrt { warmup } => Box::new(InverseSqrt::new(self.base_lr, warmup)),
            SchedKind::Linear { total } => Box::new(LinearDecay::new(self.base_lr, total)),
            SchedKind::Poly { total } => {
                let t = total as f32;
                Box::new(LambdaLr::new(self.base_lr, move |e| {
                    (1.0 - e as f32 / t).max(0.0).powf(0.9)
                }))
            }
        }
    }

    /// A training loader over this workload's dataset.
    pub fn loader(&self, seed: u64) -> DataLoader {
        DataLoader::new(self.train.len(), self.batch_size, seed, true)
    }

    /// A validation loader (sequential coverage).
    pub fn val_loader(&self) -> DataLoader {
        DataLoader::new(self.val.len(), self.batch_size, 0, false)
    }

    /// Per-module block counts inferred from module names like
    /// `"layer3.0-layer3.3"` (4 blocks); single names count 1.
    pub fn blocks_per_module(&self) -> Vec<usize> {
        self.model
            .modules()
            .iter()
            .map(|m| blocks_in_name(&m.name))
            .collect()
    }

    /// The paper-scale cost spec matching this model's module layout.
    pub fn arch_spec(&self) -> egeria_simsys::ArchSpec {
        let params: Vec<usize> = self.model.modules().iter().map(|m| m.param_count).collect();
        let blocks = self.blocks_per_module();
        egeria_simsys::ArchSpec::scaled(
            self.name,
            &params,
            Some(&blocks),
            self.flops_model,
            self.paper_scale,
        )
    }
}

/// Pre-trains a BERT-style model on a held-out synthetic QA distribution
/// (the stand-in for loading a pretrained checkpoint before fine-tuning).
fn pretrain_bert(model: &mut BertQa, seed: u64) {
    use egeria_models::Model;
    let data = SyntheticQa::new(
        QaDataConfig {
            samples: 192,
            vocab: 24,
            len: 16,
            answer_len: 3,
        },
        seed.wrapping_add(0xBE57),
    );
    let loader = DataLoader::new(192, 16, seed.wrapping_add(1), true);
    let mut opt = Adam::new(1e-3, 0.0);
    for epoch in 0..10 {
        for plan in loader.epoch_plan(epoch) {
            let batch = data.materialize(&plan.indices).expect("pretrain batch");
            let _ = model.train_step(&batch, None).expect("pretrain step");
            opt.step(&mut model.params_mut()).expect("pretrain opt");
            model.zero_grad();
        }
    }
}

/// Counts the building blocks a module-name range covers.
pub fn blocks_in_name(name: &str) -> usize {
    // Trailing digits of the endpoint: handles both dotted ("layer1.8")
    // and undotted ("block3") block naming.
    let parse_idx = |s: &str| -> Option<usize> {
        let digits: String = s
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_digit())
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        digits.parse::<usize>().ok()
    };
    match name.split_once('-') {
        Some((a, b)) => match (parse_idx(a), parse_idx(b)) {
            (Some(x), Some(y)) if y >= x => y - x + 1,
            _ => 1,
        },
        None => 1,
    }
}

/// All seven workload kinds, in Table 1 order.
pub const ALL_KINDS: [Kind; 7] = [
    Kind::ResNet50,
    Kind::MobileNetV2,
    Kind::ResNet56,
    Kind::DeepLabV3,
    Kind::TransformerBase,
    Kind::TransformerTiny,
    Kind::BertQa,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_in_name_parses_ranges() {
        assert_eq!(blocks_in_name("layer3.0-layer3.3"), 4);
        assert_eq!(blocks_in_name("layer1.0-layer1.8"), 9);
        assert_eq!(blocks_in_name("classifier"), 1);
        assert_eq!(blocks_in_name("encoder.2"), 1);
        assert_eq!(blocks_in_name("block0-block3"), 4);
    }

    #[test]
    fn every_workload_builds_and_matches_its_spec() {
        for kind in ALL_KINDS {
            let w = Workload::make(kind, 42);
            let spec = w.arch_spec();
            assert_eq!(spec.num_modules(), w.model.modules().len(), "{}", w.name);
            assert!(w.train.len() > w.batch_size);
            assert!(!w.val.is_empty());
            let _ = w.optimizer();
            let s = w.schedule();
            assert!(s.lr(0) >= 0.0);
        }
    }

    #[test]
    fn transformer_base_has_12_modules_and_tiny_4() {
        assert_eq!(Workload::make(Kind::TransformerBase, 1).model.modules().len(), 12);
        assert_eq!(Workload::make(Kind::TransformerTiny, 1).model.modules().len(), 4);
        assert_eq!(Workload::make(Kind::BertQa, 1).model.modules().len(), 12);
    }
}
