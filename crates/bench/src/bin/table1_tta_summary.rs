//! Table 1: time-to-accuracy speedups for all seven workloads.
//!
//! For each model we train a vanilla baseline and an Egeria run on the same
//! seed, define the accuracy target as the baseline's converged metric (the
//! paper does the same), cost both iteration traces on the paper's testbed
//! via the performance simulator, and report the TTA speedup. Multi-node
//! rows rerun the cost model on larger clusters (the trace is per-worker;
//! data-parallel scaling enters through the all-reduce term).

use egeria_bench::experiments::{
    converged_metric, default_egeria, metric_series, run_workload, running_best, trace_of,
};
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::{Kind, ALL_KINDS};
use egeria_simsys::device::ClusterSpec;
use egeria_simsys::iteration::CommPolicy;
use egeria_simsys::tta::{epoch_times, time_to_target, tta_speedup};

fn clusters_for(kind: Kind) -> Vec<(&'static str, ClusterSpec)> {
    match kind {
        Kind::ResNet50 => vec![
            ("1x2", ClusterSpec::v100_cluster(1)),
            ("2x2", ClusterSpec::v100_cluster(2)),
            ("3x2", ClusterSpec::v100_cluster(3)),
            ("4x2", ClusterSpec::v100_cluster(4)),
            ("5x2", ClusterSpec::v100_cluster(5)),
        ],
        Kind::TransformerBase => vec![
            ("4x2", ClusterSpec::v100_cluster(4)),
            ("2x2", ClusterSpec::v100_cluster(2)),
            ("3x2", ClusterSpec::v100_cluster(3)),
            ("5x2", ClusterSpec::v100_cluster(5)),
        ],
        Kind::TransformerTiny => vec![("1x8", ClusterSpec::rtx_single_node())],
        _ => vec![("1x2", ClusterSpec::v100_cluster(1))],
    }
}

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let mut rows = Vec::new();
    for kind in ALL_KINDS {
        eprintln!("== {kind:?}: baseline run");
        let base = run_workload(kind, 42, None, None).expect("baseline run");
        eprintln!("== {kind:?}: egeria run");
        let eg = run_workload(kind, 42, Some(default_egeria(kind)), None).expect("egeria run");
        let higher = base.higher_is_better;
        let base_metric = converged_metric(&base.report, higher);
        let eg_metric = converged_metric(&eg.report, higher);
        // Target: slightly relaxed baseline-converged metric (the paper's
        // targets are the baseline's converged accuracy; the relaxation
        // absorbs small-validation-set noise at reproduction scale).
        let target = if higher { base_metric * 0.97 } else { base_metric * 1.03 };
        let base_trace = trace_of(&base.report);
        let eg_trace = trace_of(&eg.report);
        let base_metrics = running_best(&metric_series(&base.report), higher);
        let eg_metrics = running_best(&metric_series(&eg.report), higher);
        for (label, cluster) in clusters_for(kind) {
            let bt = epoch_times(
                &base.arch,
                &cluster,
                &base_trace,
                base.batch_size,
                CommPolicy::Vanilla,
            );
            let et = epoch_times(
                &eg.arch,
                &cluster,
                &eg_trace,
                eg.batch_size,
                CommPolicy::Vanilla,
            );
            let b_tta = time_to_target(&bt, &base_metrics, target, higher);
            let e_tta = time_to_target(&et, &eg_metrics, target, higher);
            let (speedup, b_s, e_s) = match (b_tta, e_tta) {
                (Some(b), Some(e)) => (tta_speedup(b, e), b, e),
                // Fall back to full-run time at equal-or-better accuracy.
                _ => (
                    tta_speedup(*bt.last().unwrap(), *et.last().unwrap()),
                    *bt.last().unwrap(),
                    *et.last().unwrap(),
                ),
            };
            rows.push(format!(
                "{},{},{:.4},{:.4},{:.4},{:.1},{:.1},{:.1}",
                kind_name(kind),
                label,
                base_metric,
                eg_metric,
                target,
                b_s,
                e_s,
                speedup * 100.0
            ));
        }
    }
    write_csv(
        &results.path("table1_tta_summary.csv"),
        "model,cluster,baseline_metric,egeria_metric,target,baseline_tta_s,egeria_tta_s,speedup_pct",
        &rows,
    )
    .expect("write table 1");
}

fn kind_name(kind: Kind) -> &'static str {
    match kind {
        Kind::ResNet50 => "resnet50",
        Kind::MobileNetV2 => "mobilenet_v2",
        Kind::ResNet56 => "resnet56",
        Kind::DeepLabV3 => "deeplabv3",
        Kind::TransformerBase => "transformer_base",
        Kind::TransformerTiny => "transformer_tiny",
        Kind::BertQa => "bert_qa",
    }
}
