//! Figure 13: sensitivity of the linear-fitting window `W`.
//!
//! Egeria runs of ResNet-56 across `W ∈ {3, 6, 12, 20, 30}` (scaled from
//! the paper's 5–50 range to our shorter schedules), reporting the final
//! accuracy and how much got frozen. Expected shape: accuracy is flat for
//! moderate-to-large `W`; only very small `W` freezes eagerly and can dent
//! accuracy.

use egeria_bench::experiments::{converged_metric, default_egeria, run_workload};
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::Kind;

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let mut rows = Vec::new();
    for w in [3usize, 6, 12, 24] {
        eprintln!("== W = {w}");
        let cfg = default_egeria(Kind::ResNet56).with_window(w);
        let out = run_workload(Kind::ResNet56, 42, Some(cfg), None).expect("run");
        let acc = converged_metric(&out.report, true);
        let max_prefix = out
            .report
            .iterations
            .iter()
            .map(|i| i.frozen_prefix)
            .max()
            .unwrap_or(0);
        let first_freeze = out
            .report
            .events
            .iter()
            .find(|e| e.kind == "freeze")
            .map(|e| e.iteration as i64)
            .unwrap_or(-1);
        rows.push(format!("{w},{acc:.4},{max_prefix},{first_freeze}"));
    }
    write_csv(
        &results.path("fig13_w_sensitivity.csv"),
        "window_w,final_accuracy,max_frozen_prefix,first_freeze_iteration",
        &rows,
    )
    .expect("write fig 13");
}
