//! Table 2: reference-model precision sweep (int8 / f16 / f32).
//!
//! Three Egeria runs of ResNet-56 differing only in reference precision,
//! reporting (1) the final accuracy — the precision must not change it
//! materially, (2) the CPU inference speed ratio measured on real kernels
//! (int8 `qmatmul` vs f32 `matmul` over reference-sized matrices; f16 is
//! modeled per the paper's measurement since CPUs lack native f16 GEMM),
//! and (3) the reference accuracy gap — the quantized snapshot's own
//! validation accuracy versus the f32 snapshot's.

use egeria_bench::experiments::{converged_metric, default_egeria, run_workload};
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::{Kind, Workload};
use egeria_core::trainer::evaluate;
use egeria_quant::qtensor::{qmatmul, Granularity, QTensor};
use egeria_quant::{quantize_reference, Precision};
use egeria_tensor::{Rng, Tensor};
use std::time::Instant;

/// Measures the int8-vs-f32 matmul speed ratio on reference-sized GEMMs.
fn measure_int8_speedup() -> f64 {
    let mut rng = Rng::new(7);
    let a = Tensor::randn(&[64, 256], &mut rng);
    let b = Tensor::randn(&[256, 256], &mut rng);
    let qa = QTensor::quantize(&a, Granularity::PerTensor).unwrap();
    let qb = QTensor::quantize(&b, Granularity::PerTensor).unwrap();
    let reps = 200;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = a.matmul(&b).unwrap();
    }
    let t_f32 = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..reps {
        let _ = qmatmul(&qa, &qb).unwrap();
    }
    let t_int8 = t1.elapsed();
    t_f32.as_secs_f64() / t_int8.as_secs_f64()
}

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let int8_speed = measure_int8_speedup();
    eprintln!("measured int8 matmul speedup: {int8_speed:.2}x");

    // Reference accuracy gap: quantize a trained model and evaluate it.
    let mut w = Workload::make(Kind::ResNet56, 42);
    // Quick pre-training to a sensible accuracy for the gap measurement.
    {
        let loader = w.loader(5);
        let mut opt = w.optimizer();
        let schedule = w.schedule();
        for epoch in 0..24 {
            opt.set_lr(schedule.lr(epoch));
            for plan in loader.epoch_plan(epoch) {
                let batch = w.train.materialize(&plan.indices).expect("batch");
                let _ = w.model.train_step(&batch, None).expect("step");
                opt.step(&mut w.model.params_mut()).expect("opt");
                w.model.zero_grad();
            }
        }
    }
    let val_loader = w.val_loader();
    let gap_of = |precision: Precision, w: &Workload| -> f32 {
        let mut q = quantize_reference(w.model.as_ref(), precision).expect("quantize");
        let (_, acc) = evaluate(q.as_mut(), w.val.as_ref(), &val_loader).expect("eval");
        acc
    };
    let acc_f32 = gap_of(Precision::F32, &w);
    let acc_f16 = gap_of(Precision::F16, &w);
    let acc_int8 = gap_of(Precision::Int8, &w);

    // Final-accuracy rows: full Egeria runs per reference precision.
    let mut rows = Vec::new();
    for (name, precision, speed) in [
        ("int8", Precision::Int8, int8_speed),
        ("float16", Precision::F16, Precision::F16.cpu_speedup() as f64),
        ("float32", Precision::F32, 1.0),
    ] {
        eprintln!("== egeria run with {name} reference");
        let cfg = egeria_core::EgeriaConfig {
            reference_precision: precision,
            ..default_egeria(Kind::ResNet56)
        };
        let out = run_workload(Kind::ResNet56, 42, Some(cfg), None).expect("run");
        let final_acc = converged_metric(&out.report, true);
        let ref_gap = match precision {
            Precision::Int8 => acc_int8 - acc_f32,
            Precision::F16 => acc_f16 - acc_f32,
            Precision::F32 => 0.0,
        };
        rows.push(format!(
            "{name},{final_acc:.4},{speed:.2},{:.4}",
            ref_gap
        ));
    }
    write_csv(
        &results.path("table2_reference_precision.csv"),
        "precision,final_accuracy,cpu_inference_speedup_x,reference_acc_gap",
        &rows,
    )
    .expect("write table 2");
}
