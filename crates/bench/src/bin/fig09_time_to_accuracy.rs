//! Figure 9 (and Appendix E Figures 17–20): validation-metric-vs-time
//! curves, Egeria against the vanilla baseline, for the four headline
//! tasks: ResNet-50-style classification, DeepLabv3-style segmentation,
//! Transformer-Base translation (perplexity), and BERT-style QA (F1).

use egeria_bench::experiments::{default_egeria, metric_series, run_workload, trace_of};
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::Kind;
use egeria_nn::loss::perplexity;
use egeria_simsys::device::ClusterSpec;
use egeria_simsys::iteration::CommPolicy;
use egeria_simsys::tta::epoch_times;

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let tasks = [
        (Kind::ResNet50, "resnet50", ClusterSpec::v100_cluster(1)),
        (Kind::DeepLabV3, "deeplabv3", ClusterSpec::v100_cluster(1)),
        (
            Kind::TransformerBase,
            "transformer_base",
            ClusterSpec::v100_cluster(4),
        ),
        (Kind::BertQa, "bert_qa", ClusterSpec::v100_cluster(1)),
    ];
    let mut rows = Vec::new();
    for (kind, name, cluster) in tasks {
        for egeria in [false, true] {
            eprintln!("== {name} egeria={egeria}");
            let cfg = egeria.then(|| default_egeria(kind));
            let out = run_workload(kind, 42, cfg, None).expect("run");
            let times = epoch_times(
                &out.arch,
                &cluster,
                &trace_of(&out.report),
                out.batch_size,
                CommPolicy::Vanilla,
            );
            let metrics = metric_series(&out.report);
            for (e, (t, m)) in times.iter().zip(metrics.iter()).enumerate() {
                if let Some(metric) = m {
                    // Translation additionally reports perplexity derived
                    // from the validation loss (the paper's Figure 9c axis).
                    let extra = if kind == Kind::TransformerBase {
                        out.report.epochs[e]
                            .val_loss
                            .map(perplexity)
                            .unwrap_or(f32::NAN)
                    } else {
                        f32::NAN
                    };
                    rows.push(format!(
                        "{name},{},{e},{t:.1},{metric:.4},{extra:.3}",
                        if egeria { "egeria" } else { "baseline" }
                    ));
                }
            }
        }
    }
    write_csv(
        &results.path("fig09_time_to_accuracy.csv"),
        "task,system,epoch,sim_time_s,metric,perplexity",
        &rows,
    )
    .expect("write fig 9");
}
