//! Serving-layer load benchmark: `BENCH_serve.json`.
//!
//! Drives a [`ServeEngine`] with the two canonical load shapes:
//!
//! - **open loop**: a paced generator submits probes at a fixed arrival
//!   rate regardless of completions (the shape that exposes queueing
//!   delay and shedding under overload), and
//! - **closed loop**: K clients each keep exactly one probe in flight
//!   (the trainer's own shape — `capture` blocks on its ticket).
//!
//! Each section reports client-measured latency percentiles (p50/p95/p99),
//! delivered throughput, shed counts, and the mean executed batch size.
//! Pass `--smoke` for a fast low-request run with the same report shape.

use egeria_bench::write_json;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Targets};
use egeria_quant::Precision;
use egeria_serve::{ProbeRequest, RealClock, ServeConfig, ServeEngine};
use egeria_tensor::{Rng, Tensor};
use serde::Serialize;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct LoadReport {
    submitted: u64,
    completed: u64,
    shed: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    throughput_rps: f64,
    mean_batch_size: f64,
}

#[derive(Serialize)]
struct Report {
    workers: usize,
    max_batch: usize,
    max_wait_us: u64,
    queue_depth: usize,
    precision: String,
    open_loop: LoadReport,
    closed_loop: LoadReport,
}

fn probe_batch(rng: &mut Rng, rows: usize) -> Batch {
    Batch {
        input: Input::Image(Tensor::randn(&[rows, 3, 8, 8], rng)),
        targets: Targets::Classes((0..rows).map(|i| i % 8).collect()),
        sample_ids: (0..rows as u64).collect(),
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn finish(
    mut latencies_us: Vec<u64>,
    batch_size_sum: u64,
    submitted: u64,
    shed: u64,
    elapsed: Duration,
) -> LoadReport {
    latencies_us.sort_unstable();
    let completed = latencies_us.len() as u64;
    LoadReport {
        submitted,
        completed,
        shed,
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        throughput_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        mean_batch_size: batch_size_sum as f64 / completed.max(1) as f64,
    }
}

/// Paced submissions at a fixed arrival interval; a collector thread waits
/// on tickets in submission order (resolution is FIFO to within one batch,
/// so the collector never sits on an already-resolved ticket for long).
fn open_loop(engine: &Arc<ServeEngine>, requests: u64, interval: Duration) -> LoadReport {
    let (tx, rx) = mpsc::channel::<(Instant, egeria_serve::ProbeTicket)>();
    let collector = std::thread::spawn(move || {
        let mut latencies = Vec::new();
        let mut batch_size_sum = 0u64;
        let mut shed = 0u64;
        for (start, ticket) in rx {
            match ticket.wait() {
                Ok(resp) => {
                    latencies.push(start.elapsed().as_micros() as u64);
                    batch_size_sum += resp.batch_size as u64;
                }
                Err(_) => shed += 1,
            }
        }
        (latencies, batch_size_sum, shed)
    });
    let mut rng = Rng::new(17);
    let mut shed_at_admission = 0u64;
    let t0 = Instant::now();
    let mut next = t0;
    for i in 0..requests {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
        next += interval;
        let batch = probe_batch(&mut rng, 2);
        let start = Instant::now();
        match engine.submit(ProbeRequest {
            batch,
            module: (i % 3) as usize,
            deadline: None,
        }) {
            Ok(ticket) => tx.send((start, ticket)).expect("collector died"),
            Err(_) => shed_at_admission += 1,
        }
    }
    drop(tx);
    let (latencies, batch_size_sum, shed_on_ticket) = collector.join().expect("collector panicked");
    let elapsed = t0.elapsed();
    finish(
        latencies,
        batch_size_sum,
        requests,
        shed_at_admission + shed_on_ticket,
        elapsed,
    )
}

/// K clients, each with exactly one probe in flight (submit → wait → next).
fn closed_loop(engine: &Arc<ServeEngine>, clients: usize, per_client: u64) -> LoadReport {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(engine);
            std::thread::spawn(move || {
                let mut rng = Rng::new(31 + c as u64);
                let mut latencies = Vec::new();
                let mut batch_size_sum = 0u64;
                let mut shed = 0u64;
                for i in 0..per_client {
                    let batch = probe_batch(&mut rng, 2);
                    let start = Instant::now();
                    let ticket = match engine.submit(ProbeRequest {
                        batch,
                        module: (i % 3) as usize,
                        deadline: None,
                    }) {
                        Ok(t) => t,
                        Err(_) => {
                            shed += 1;
                            continue;
                        }
                    };
                    match ticket.wait() {
                        Ok(resp) => {
                            latencies.push(start.elapsed().as_micros() as u64);
                            batch_size_sum += resp.batch_size as u64;
                        }
                        Err(_) => shed += 1,
                    }
                }
                (latencies, batch_size_sum, shed)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut batch_size_sum = 0u64;
    let mut shed = 0u64;
    for h in handles {
        let (l, b, s) = h.join().expect("client panicked");
        latencies.extend(l);
        batch_size_sum += b;
        shed += s;
    }
    let elapsed = t0.elapsed();
    finish(
        latencies,
        batch_size_sum,
        clients as u64 * per_client,
        shed,
        elapsed,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = ServeConfig::from_env();
    let (open_requests, interval, clients, per_client) = if smoke {
        (64u64, Duration::from_micros(500), 2usize, 16u64)
    } else {
        (1024, Duration::from_micros(500), 4, 256)
    };
    println!(
        "bench_serve: {} worker(s), max_batch {}, max_wait {:?}, queue {}{}",
        cfg.workers,
        cfg.max_batch,
        cfg.max_wait,
        cfg.queue_depth,
        if smoke { " (smoke)" } else { "" }
    );

    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        42,
    );
    let engine = Arc::new(ServeEngine::new(
        cfg.clone(),
        RealClock::shared(),
        egeria_obs::Telemetry::disabled(),
    ));
    engine
        .publish(&model, Precision::Int8)
        .expect("publish reference snapshot");

    let open = open_loop(&engine, open_requests, interval);
    println!(
        "open loop    {:>6} submitted  {:>6} completed  {:>4} shed  p50 {:>7} us  p99 {:>7} us  {:>8.1} rps  mean batch {:.2}",
        open.submitted, open.completed, open.shed, open.p50_us, open.p99_us,
        open.throughput_rps, open.mean_batch_size
    );
    let closed = closed_loop(&engine, clients, per_client);
    println!(
        "closed loop  {:>6} submitted  {:>6} completed  {:>4} shed  p50 {:>7} us  p99 {:>7} us  {:>8.1} rps  mean batch {:.2}",
        closed.submitted, closed.completed, closed.shed, closed.p50_us, closed.p99_us,
        closed.throughput_rps, closed.mean_batch_size
    );

    let report = Report {
        workers: cfg.workers,
        max_batch: cfg.max_batch,
        max_wait_us: cfg.max_wait.as_micros() as u64,
        queue_depth: cfg.queue_depth,
        precision: "int8".into(),
        open_loop: open,
        closed_loop: closed,
    };
    write_json(std::path::Path::new("BENCH_serve.json"), &report).expect("write BENCH_serve.json");
}
