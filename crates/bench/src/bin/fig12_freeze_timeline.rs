//! Figure 12: freezing/unfreezing decision timeline for ResNet-56.
//!
//! Trains ResNet-56 with Egeria for the full schedule (LR ÷10 at 50% and
//! 75% of training, scaled from the paper's 100/150-of-200) and emits the
//! percentage of active parameters per epoch plus the event log. The LR
//! decays must trigger the unfreeze mechanism, and refreezing afterwards
//! must be faster than the initial freeze (relaxed criteria, §4.2.2).

use egeria_bench::experiments::{default_egeria, run_workload};
use egeria_bench::runner::{write_csv, write_json, ResultsDir};
use egeria_bench::workloads::Kind;

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let out = run_workload(Kind::ResNet56, 42, Some(default_egeria(Kind::ResNet56)), None)
        .expect("egeria run");
    let mut rows = Vec::new();
    for e in &out.report.epochs {
        rows.push(format!(
            "{},{:.4},{},{:.4},{:.5}",
            e.epoch,
            e.active_param_fraction * 100.0,
            e.frozen_prefix,
            e.val_metric.unwrap_or(f32::NAN),
            e.lr
        ));
    }
    write_csv(
        &results.path("fig12_freeze_timeline.csv"),
        "epoch,active_params_pct,frozen_prefix,val_acc,lr",
        &rows,
    )
    .expect("write fig 12");
    write_json(&results.path("fig12_events.json"), &out.report.events).expect("write events");

    // Refreeze-speed check: evaluations between an unfreeze and the next
    // freeze should be fewer than before the first freeze.
    let events = &out.report.events;
    if let (Some(first_freeze), Some(unfreeze)) = (
        events.iter().find(|e| e.kind == "freeze"),
        events.iter().find(|e| e.kind == "unfreeze"),
    ) {
        if let Some(refreeze) = events
            .iter()
            .find(|e| e.kind == "freeze" && e.iteration > unfreeze.iteration)
        {
            println!(
                "first freeze after {} iters; refreeze after {} iters (relaxed criteria)",
                first_freeze.iteration,
                refreeze.iteration - unfreeze.iteration
            );
        }
    }
}
