//! §6.2 ablation: gradient-norm-guided freezing vs Egeria's plasticity.
//!
//! The paper: "We also test freezing layers based on gradient norm on
//! CIFAR-10 and find that achieving the same speedup will lose 2% of
//! accuracy." This binary trains ResNet-56 three ways — vanilla baseline,
//! gradient-norm freezing (same window machinery, hard-label signal), and
//! Egeria — and reports final accuracy plus how much got frozen how early.

use egeria_bench::experiments::{converged_metric, default_egeria, run_workload};
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::{Kind, Workload};
use egeria_core::baselines::GradNormFreezer;
use egeria_core::freezer::FreezeEvent;
use egeria_core::trainer::evaluate;
use egeria_tensor::Result;

struct GradNormOutcome {
    final_acc: f32,
    first_freeze_iter: i64,
    max_prefix: usize,
}

/// Trains with gradient-norm freezing using Egeria's evaluation cadence.
fn run_gradnorm(epochs: usize) -> Result<GradNormOutcome> {
    let mut w = Workload::make(Kind::ResNet56, 42);
    let cfg = default_egeria(Kind::ResNet56);
    let loader = w.loader(1042);
    let val_loader = w.val_loader();
    let mut opt = w.optimizer();
    let schedule = w.schedule();
    let mut freezer = GradNormFreezer::new(w.model.modules().len(), &cfg);
    let mut step = 0usize;
    let mut first_freeze = -1i64;
    let mut max_prefix = 0usize;
    for epoch in 0..epochs {
        opt.set_lr(schedule.lr(epoch));
        for plan in loader.epoch_plan(epoch) {
            let batch = w.train.materialize(&plan.indices)?;
            let _ = w.model.train_step(&batch, None)?;
            if step.is_multiple_of(cfg.n) {
                let front = freezer.front();
                if front < w.model.modules().len() {
                    let norm = GradNormFreezer::module_grad_norm(w.model.as_ref(), front);
                    if let FreezeEvent::Froze(k) = freezer.observe(norm)? {
                        w.model.freeze_prefix(k)?;
                        max_prefix = max_prefix.max(k);
                        if first_freeze < 0 {
                            first_freeze = step as i64;
                        }
                    }
                }
            }
            opt.step(&mut w.model.params_mut())?;
            w.model.zero_grad();
            step += 1;
        }
    }
    let (_, final_acc) = evaluate(w.model.as_mut(), w.val.as_ref(), &val_loader)?;
    Ok(GradNormOutcome {
        final_acc,
        first_freeze_iter: first_freeze,
        max_prefix,
    })
}

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let epochs = 40;
    eprintln!("== vanilla baseline");
    let base = run_workload(Kind::ResNet56, 42, None, Some(epochs)).expect("baseline");
    let base_acc = converged_metric(&base.report, true);
    eprintln!("== gradient-norm freezing");
    let gn = run_gradnorm(epochs).expect("gradnorm run");
    eprintln!("== egeria (plasticity) freezing");
    let eg = run_workload(
        Kind::ResNet56,
        42,
        Some(default_egeria(Kind::ResNet56)),
        Some(epochs),
    )
    .expect("egeria run");
    let eg_acc = converged_metric(&eg.report, true);
    let eg_first = eg
        .report
        .events
        .iter()
        .find(|e| e.kind == "freeze")
        .map(|e| e.iteration as i64)
        .unwrap_or(-1);
    let eg_max = eg
        .report
        .iterations
        .iter()
        .map(|i| i.frozen_prefix as usize)
        .max()
        .unwrap_or(0);
    let rows = vec![
        format!("baseline,{base_acc:.4},0.0,-1,0"),
        format!(
            "gradient_norm,{:.4},{:.2},{},{}",
            gn.final_acc,
            (base_acc - gn.final_acc) * 100.0,
            gn.first_freeze_iter,
            gn.max_prefix
        ),
        format!(
            "egeria_plasticity,{eg_acc:.4},{:.2},{eg_first},{eg_max}",
            (base_acc - eg_acc) * 100.0
        ),
    ];
    write_csv(
        &results.path("gradnorm_baseline.csv"),
        "method,final_acc,acc_drop_pct,first_freeze_iter,max_frozen_prefix",
        &rows,
    )
    .expect("write gradnorm baseline");
}
