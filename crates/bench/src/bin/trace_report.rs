//! Summarizes a recorded telemetry trace (`egeria-obs` JSONL).
//!
//! ```text
//! trace_report <trace.jsonl> [--batch N] [--no-calibrate]
//! ```
//!
//! Validates the file against the schema, prints the event/kind summary,
//! freeze-decision timeline, per-layer frozen-time breakdown, and observed
//! iteration split, then (unless `--no-calibrate`) costs the observed
//! freezing states through the performance simulator and reports how well
//! the observed split ratios match the model's prediction.

use egeria_obs::report::{render, summarize};
use egeria_simsys::arch::{ArchSpec, FlopsModel, PaperScale};
use egeria_simsys::{calibrate, ClusterSpec, CommPolicy, ObservedSplit};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: trace_report <trace.jsonl> [--batch N] [--no-calibrate]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut batch_size = 32usize;
    let mut calibrate_enabled = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--batch" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(b) => batch_size = b,
                    None => return usage(),
                }
            }
            "--no-calibrate" => calibrate_enabled = false,
            a if path.is_none() && !a.starts_with('-') => path = Some(a.to_string()),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(path) = path else { return usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match summarize(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_report: {path} is not a valid trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render(&summary));

    if calibrate_enabled && !summary.splits.is_empty() {
        // The reproduction's traces come from CPU runs of width-reduced
        // models; only the *ratios* between freezing states are comparable
        // to the simulated testbed, which is exactly what calibrate()
        // checks.
        let arch = ArchSpec::scaled(
            "resnet50",
            &[100, 200, 400, 800],
            Some(&[4, 4, 4, 4]),
            FlopsModel::PerBlockUniform,
            PaperScale::resnet50_imagenet(),
        );
        let cluster = ClusterSpec::v100_cluster(1);
        let observed: Vec<ObservedSplit> = summary
            .splits
            .iter()
            .map(|s| ObservedSplit {
                frozen_prefix: s.frozen_prefix as usize,
                fp_cached: s.fp_cached,
                steps: s.count as usize,
                mean_seconds: s.mean_dur_us / 1e6,
            })
            .collect();
        match calibrate(&arch, &cluster, batch_size, CommPolicy::Vanilla, &observed) {
            Some(r) => print!("\n{}", r.render()),
            None => println!("\ncalibration: no usable train_step splits in trace"),
        }
    }
    ExitCode::SUCCESS
}
