//! Figure 2: prematurely freezing layers hurts the final accuracy.
//!
//! Statically freezes each layer module at an early (~10%) and a later
//! (~25%) point of training — the paper's epoch 20 and 50 of 200 — and
//! compares converged validation accuracy against the unfrozen baseline.
//! Deep modules frozen early must lose the most accuracy.

use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::{Kind, Workload};
use egeria_core::trainer::evaluate;
use egeria_tensor::Result;

/// Trains ResNet-56 with a static freeze of modules `0..=module` applied at
/// `freeze_epoch` (`None` = baseline), returning the converged accuracy.
fn run(module: Option<usize>, freeze_epoch: usize, epochs: usize) -> Result<f32> {
    let mut w = Workload::make(Kind::ResNet56, 42);
    let loader = w.loader(7);
    let val_loader = w.val_loader();
    let mut opt = w.optimizer();
    let schedule = w.schedule();
    for epoch in 0..epochs {
        if let Some(m) = module {
            if epoch == freeze_epoch {
                w.model.freeze_prefix(m + 1)?;
            }
        }
        opt.set_lr(schedule.lr(epoch));
        for plan in loader.epoch_plan(epoch) {
            let batch = w.train.materialize(&plan.indices)?;
            let _ = w.model.train_step(&batch, None)?;
            opt.step(&mut w.model.params_mut())?;
            w.model.zero_grad();
        }
    }
    let (_, acc) = evaluate(w.model.as_mut(), w.val.as_ref(), &val_loader)?;
    Ok(acc)
}

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let epochs = 40;
    // Scale the paper's 20/50-of-200 to 4/10-of-40.
    let early = 4;
    let later = 10;
    let baseline = run(None, 0, epochs).expect("baseline");
    let mut rows = vec![format!("baseline,-,{baseline:.4},0.0")];
    let n_freezable = {
        let w = Workload::make(Kind::ResNet56, 42);
        w.model.modules().len() - 1
    };
    for module in 0..n_freezable {
        for (label, at) in [("early", early), ("later", later)] {
            let acc = run(Some(module), at, epochs).expect("static freeze run");
            rows.push(format!(
                "module{},{label},{acc:.4},{:.2}",
                module,
                (baseline - acc) * 100.0
            ));
            eprintln!("module {module} @ {label}: acc {acc:.4} (baseline {baseline:.4})");
        }
    }
    write_csv(
        &results.path("fig02_premature_freezing.csv"),
        "frozen_through,when,final_acc,acc_drop_pct",
        &rows,
    )
    .expect("write fig 2");
}
