//! Calibration: wall-clock cost of one training epoch per workload.
//!
//! Not a paper figure — this sizes the experiment sweep for the host CPU.

use egeria_bench::workloads::{Workload, ALL_KINDS};
use std::time::Instant;

fn main() {
    for kind in ALL_KINDS {
        let mut w = Workload::make(kind, 42);
        let loader = w.loader(1);
        let plans = loader.epoch_plan(0);
        let mut opt = w.optimizer();
        let start = Instant::now();
        let mut loss_sum = 0.0f32;
        for plan in &plans {
            let batch = w.train.materialize(&plan.indices).expect("materialize");
            let r = w.model.train_step(&batch, None).expect("train step");
            loss_sum += r.loss;
            opt.step(&mut w.model.params_mut()).expect("optimizer step");
            w.model.zero_grad();
        }
        let dt = start.elapsed().as_secs_f64();
        println!(
            "{:18} {:3} iters/epoch  {:7.3} s/epoch  ({:5.1} ms/iter, mean loss {:.3}, {} modules, {} epochs planned -> ~{:.1} s/run)",
            w.name,
            plans.len(),
            dt,
            dt * 1000.0 / plans.len() as f64,
            loss_sum / plans.len() as f32,
            w.model.modules().len(),
            w.epochs,
            dt * w.epochs as f64,
        );
    }
}
