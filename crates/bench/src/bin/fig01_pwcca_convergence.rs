//! Figure 1: post hoc PWCCA layer-convergence analysis of ResNet-56.
//!
//! Trains ResNet-56 (no Egeria) with the step-decay schedule, snapshotting
//! every few epochs, then compares every snapshot's per-module activations
//! with the fully-trained model's via PWCCA distance. The expected shape:
//! front modules flatten out early (freezable regions), every curve drops
//! again after each LR decay, and deep modules converge last.

use egeria_analysis::pwcca::{activation_matrix, pwcca_distance};
use egeria_bench::experiments::train_with_snapshots;
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::Kind;

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let epochs = 48;
    let snap_epochs: Vec<usize> = (0..epochs).step_by(4).collect();
    eprintln!("training with {} snapshots...", snap_epochs.len());
    let (snaps, mut final_model, probe) =
        train_with_snapshots(Kind::ResNet56, 42, epochs, &snap_epochs, 64).expect("training");
    let n_modules = final_model.modules().len();
    // Final-model activations per module.
    let final_acts: Vec<_> = (0..n_modules)
        .map(|m| {
            activation_matrix(&final_model.capture_activation(&probe, m).expect("capture"))
                .expect("matrix")
        })
        .collect();
    let mut rows = Vec::new();
    for (epoch, snap) in snaps {
        let mut snap = snap;
        for (m, final_act) in final_acts.iter().enumerate() {
            let act = activation_matrix(&snap.capture_activation(&probe, m).expect("capture"))
                .expect("matrix");
            let d = pwcca_distance(&act, final_act).expect("pwcca");
            rows.push(format!("{epoch},{m},{d:.5}"));
        }
        eprintln!("epoch {epoch} done");
    }
    write_csv(
        &results.path("fig01_pwcca_convergence.csv"),
        "epoch,module,pwcca_distance",
        &rows,
    )
    .expect("write fig 1");
}
