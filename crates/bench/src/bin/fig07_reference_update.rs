//! Figure 7: a stale reference amplifies plasticity fluctuations; periodic
//! updates stabilize the trend.
//!
//! One training run, two plasticity traces of the frontmost module
//! measured per iteration batch: (a) against a reference generated once
//! after bootstrap and never updated, (b) against a reference regenerated
//! every few epochs. The stale trace must show larger high-frequency
//! variation relative to its mean in the later training phase.

use egeria_analysis::sp_loss;
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::{Kind, Workload};
use egeria_quant::{quantize_reference, Precision};

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let epochs = 28;
    let gen_epoch = 4;
    let update_every = 4;
    let mut w = Workload::make(Kind::ResNet56, 42);
    let loader = w.loader(33);
    let mut opt = w.optimizer();
    let schedule = w.schedule();
    let probe = w
        .train
        .materialize(&(0..64.min(w.train.len())).collect::<Vec<_>>())
        .expect("probe");
    let mut stale_ref = None;
    let mut fresh_ref = None;
    let mut rows = Vec::new();
    let mut stale_series = Vec::new();
    let mut fresh_series = Vec::new();
    for epoch in 0..epochs {
        opt.set_lr(schedule.lr(epoch));
        for plan in loader.epoch_plan(epoch) {
            let batch = w.train.materialize(&plan.indices).expect("batch");
            let _ = w.model.train_step(&batch, None).expect("step");
            opt.step(&mut w.model.params_mut()).expect("opt");
            w.model.zero_grad();
        }
        if epoch == gen_epoch {
            stale_ref = Some(quantize_reference(w.model.as_ref(), Precision::Int8).expect("q"));
            fresh_ref = Some(quantize_reference(w.model.as_ref(), Precision::Int8).expect("q"));
        } else if epoch > gen_epoch && (epoch - gen_epoch) % update_every == 0 {
            fresh_ref = Some(quantize_reference(w.model.as_ref(), Precision::Int8).expect("q"));
        }
        if let (Some(s), Some(f)) = (stale_ref.as_mut(), fresh_ref.as_mut()) {
            let act = w.model.capture_activation(&probe, 0).expect("capture");
            let ps = sp_loss(&act, &s.capture_activation(&probe, 0).expect("s")).expect("sp");
            let pf = sp_loss(&act, &f.capture_activation(&probe, 0).expect("f")).expect("sp");
            stale_series.push(ps);
            fresh_series.push(pf);
            rows.push(format!("{epoch},{ps:.6},{pf:.6}"));
        }
    }
    write_csv(
        &results.path("fig07_reference_update.csv"),
        "epoch,plasticity_stale_reference,plasticity_updated_reference",
        &rows,
    )
    .expect("write fig 7");
    // Report the tail-window fluctuation (mean absolute first difference)
    // for both traces. Absolute, not level-normalized: the updated
    // reference keeps the plasticity *level* near zero by construction, so
    // a relative measure would be meaningless; what Figure 7 shows is the
    // raw wobble a freezing decision has to see through.
    let fluct = |s: &[f32]| {
        let tail = &s[s.len() / 2..];
        let diffs: Vec<f32> = tail.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
        diffs.iter().sum::<f32>() / diffs.len().max(1) as f32
    };
    println!(
        "tail fluctuation (mean |Δ| per epoch): stale {:.6} vs updated {:.6}",
        fluct(&stale_series),
        fluct(&fresh_series)
    );
}
