//! Figure 4: plasticity (SP loss against a partially-trained reference)
//! validates the training-progress metric.
//!
//! As in the paper, the reference is the model snapshot after ~25% of
//! training (ResNet-56 pre-trained 50 of 200 epochs), int8-quantized. We
//! then train from scratch again on the same seed and record each module's
//! plasticity per epoch, plus validation accuracy — front modules must
//! stabilize at a low level within the first third while the deep module
//! stays high/unstable longer. Normalized values (per-module min-max) are
//! emitted alongside, matching Figure 4b.

use egeria_analysis::sp_loss;
use egeria_bench::experiments::train_with_snapshots;
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::{Kind, Workload};
use egeria_core::trainer::evaluate;
use egeria_quant::{quantize_reference, Precision};

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let epochs = 36;
    let ref_epoch = epochs / 4;
    // First pass: obtain the partially-trained reference snapshot.
    eprintln!("pass 1: training to epoch {ref_epoch} for the reference snapshot");
    let (snaps, _, probe) =
        train_with_snapshots(Kind::ResNet56, 42, ref_epoch, &[ref_epoch - 1], 64)
            .expect("reference training");
    let (_, ref_snapshot) = snaps.into_iter().last().expect("snapshot");
    let mut reference =
        quantize_reference(ref_snapshot.as_ref(), Precision::Int8).expect("quantize");

    // Second pass: fresh training, recording plasticity per module per epoch.
    eprintln!("pass 2: fresh training with plasticity tracing");
    let mut w = Workload::make(Kind::ResNet56, 42);
    let loader = w.loader(119);
    let val_loader = w.val_loader();
    let mut opt = w.optimizer();
    let schedule = w.schedule();
    let n_modules = w.model.modules().len();
    let ref_acts: Vec<_> = (0..n_modules)
        .map(|m| reference.capture_activation(&probe, m).expect("ref capture"))
        .collect();
    let mut series: Vec<Vec<f32>> = vec![Vec::new(); n_modules];
    let mut accs = Vec::new();
    for epoch in 0..epochs {
        opt.set_lr(schedule.lr(epoch));
        for plan in loader.epoch_plan(epoch) {
            let batch = w.train.materialize(&plan.indices).expect("batch");
            let _ = w.model.train_step(&batch, None).expect("step");
            opt.step(&mut w.model.params_mut()).expect("opt");
            w.model.zero_grad();
        }
        for m in 0..n_modules {
            let act = w.model.capture_activation(&probe, m).expect("capture");
            series[m].push(sp_loss(&act, &ref_acts[m]).expect("sp"));
        }
        let (_, acc) = evaluate(w.model.as_mut(), w.val.as_ref(), &val_loader).expect("eval");
        accs.push(acc);
        eprintln!("epoch {epoch}: acc {acc:.3}");
    }
    // Per-module min-max normalization (Figure 4b).
    let norm: Vec<Vec<f32>> = series
        .iter()
        .map(|s| {
            let lo = s.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let span = (hi - lo).max(1e-12);
            s.iter().map(|&v| (v - lo) / span).collect()
        })
        .collect();
    let mut rows = Vec::new();
    for epoch in 0..epochs {
        for m in 0..n_modules {
            rows.push(format!(
                "{epoch},{m},{:.6},{:.4},{:.4}",
                series[m][epoch], norm[m][epoch], accs[epoch]
            ));
        }
    }
    write_csv(
        &results.path("fig04_plasticity_trend.csv"),
        "epoch,module,plasticity,plasticity_normalized,val_acc",
        &rows,
    )
    .expect("write fig 4");
}
