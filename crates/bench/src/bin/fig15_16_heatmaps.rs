//! Figures 15 & 16: PWCCA and SP-loss heatmaps of intermediate activations
//! across layer modules and training stages.
//!
//! For snapshots at 25/50/75/100% of training, computes the module×module
//! similarity between the snapshot's activations and the fully-trained
//! model's. Diagonal cells show layer-by-layer convergence order (front
//! converges first); SP values above 1.0 are cut off as in the paper's
//! Figure 16.

use egeria_analysis::pwcca::{activation_matrix, pwcca_distance};
use egeria_analysis::sp_loss;
use egeria_bench::experiments::train_with_snapshots;
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::Kind;

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let epochs = 32;
    let snap_epochs = [epochs / 4, epochs / 2, 3 * epochs / 4, epochs - 1];
    let (snaps, mut final_model, probe) =
        train_with_snapshots(Kind::ResNet56, 42, epochs, &snap_epochs, 64).expect("training");
    let n = final_model.modules().len();
    let final_acts: Vec<_> = (0..n)
        .map(|m| final_model.capture_activation(&probe, m).expect("capture"))
        .collect();
    let final_mats: Vec<_> = final_acts
        .iter()
        .map(|a| activation_matrix(a).expect("matrix"))
        .collect();
    let mut rows = Vec::new();
    for (epoch, mut snap) in snaps {
        for i in 0..n {
            let act = snap.capture_activation(&probe, i).expect("capture");
            let mat = activation_matrix(&act).expect("matrix");
            for j in 0..n {
                let d = pwcca_distance(&mat, &final_mats[j]).expect("pwcca");
                // The paper cuts SP off at 1.0 to keep half-trained layers
                // readable (Appendix D).
                let sp = sp_loss(&act, &final_acts[j]).expect("sp").min(1.0);
                rows.push(format!("{epoch},{i},{j},{d:.5},{sp:.5}"));
            }
        }
        eprintln!("snapshot at epoch {epoch} done");
    }
    write_csv(
        &results.path("fig15_16_heatmaps.csv"),
        "snapshot_epoch,snapshot_module,final_module,pwcca_distance,sp_loss_capped",
        &rows,
    )
    .expect("write figs 15/16");
}
