//! Figure 11: distributed training throughput across cluster sizes.
//!
//! Costs the ResNet-50-style and Transformer-Base traces on 2×2 → 5×2 V100
//! clusters under four systems: vanilla baseline, ByteScheduler, Egeria
//! (frozen trace, vanilla transport), and Egeria + ByteScheduler. Expected
//! shape: ByteScheduler alone helps little on these computation-intensive
//! models (may even dip slightly), Egeria's freezing raises throughput, and
//! the two compose.

use egeria_bench::experiments::{default_egeria, run_workload, trace_of};
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::Kind;
use egeria_simsys::device::ClusterSpec;
use egeria_simsys::iteration::CommPolicy;
use egeria_simsys::tta::{throughput, IterTrace};

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let mut rows = Vec::new();
    for kind in [Kind::ResNet50, Kind::TransformerBase] {
        eprintln!("== {kind:?}");
        let eg = run_workload(kind, 42, Some(default_egeria(kind)), None).expect("egeria");
        let eg_trace = trace_of(&eg.report);
        let base_trace: Vec<IterTrace> = eg_trace
            .iter()
            .map(|t| IterTrace {
                epoch: t.epoch,
                frozen_prefix: 0,
                fp_cached: false,
            })
            .collect();
        for nodes in 2..=5 {
            let cluster = ClusterSpec::v100_cluster(nodes);
            let tp = |trace: &[IterTrace], policy| {
                throughput(&eg.arch, &cluster, trace, eg.batch_size, policy)
            };
            let baseline = tp(&base_trace, CommPolicy::Vanilla);
            let bytescheduler = tp(&base_trace, CommPolicy::ByteScheduler);
            let egeria = tp(&eg_trace, CommPolicy::Vanilla);
            let egeria_bs = tp(&eg_trace, CommPolicy::ByteScheduler);
            rows.push(format!(
                "{:?},{nodes}x2,{baseline:.0},{bytescheduler:.0},{egeria:.0},{egeria_bs:.0}",
                kind
            ));
        }
    }
    write_csv(
        &results.path("fig11_distributed.csv"),
        "model,cluster,baseline_sps,bytescheduler_sps,egeria_sps,egeria_plus_bs_sps",
        &rows,
    )
    .expect("write fig 11");
}
