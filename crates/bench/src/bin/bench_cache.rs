//! Activation-cache backend benchmark: `BENCH_cache.json`.
//!
//! Runs the same put-everything-then-read-everything workload against the
//! three cache configurations that matter (DESIGN §5j):
//!
//! - **flat** — one serialized tensor file per sample (cache v1),
//! - **chunked** — the egeria-store chunk/shard layout with the lossless
//!   shuffle+LZ codec (bit-exact with flat),
//! - **chunked_int8** — the same store with the opt-in lossy int8
//!   re-quantization transform.
//!
//! The workload caches ReLU-sparse activations (about half the values are
//! exact zeros, like real post-ReLU feature maps) so the codec sees
//! realistic input. Each scenario reports put/get throughput, the on-disk
//! footprint and file count, and the batch hit rate; the summary pins the
//! two acceptance ratios (`footprint_ratio`, `file_ratio`: flat vs
//! chunked) and the hit-rate delta. Pass `--smoke` for a fast small run
//! with the same report shape.

use egeria_bench::write_json;
use egeria_core::cache::ActivationCache;
use egeria_store::{StoreCodec, StoreConfig};
use egeria_tensor::{Rng, Tensor};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

#[derive(Serialize)]
struct ScenarioReport {
    name: String,
    samples: usize,
    put_samples_per_s: f64,
    get_samples_per_s: f64,
    disk_bytes: u64,
    file_count: u64,
    hits: usize,
    misses: usize,
    hit_rate: f64,
    corrupt_entries: usize,
    write_errors: usize,
    codec_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    samples: usize,
    batch: usize,
    sample_floats: usize,
    scenarios: Vec<ScenarioReport>,
    /// flat disk bytes / chunked (lossless) disk bytes — acceptance ≥ 2.
    footprint_ratio: f64,
    /// flat file count / chunked (lossless) file count — acceptance ≥ 10.
    file_ratio: f64,
    /// chunked hit rate − flat hit rate (must not be negative).
    hit_rate_delta: f64,
}

/// A batch of post-ReLU-like conv activations, with the two kinds of
/// structure real feature maps carry and the codec exploits:
///
/// - **dead channels** (dying ReLU / channel selectivity): whole `hw`
///   spans of exact zeros, and
/// - **spatial correlation** inside active channels: an AR(1)
///   pre-activation whose negative excursions ReLU into *runs* of zeros
///   rather than isolated ones.
///
/// Unstructured iid sparsity would be unfairly hard on any LZ-class
/// codec (isolated 4-byte zeros never reach MIN_MATCH after shuffling)
/// and is not what trained networks produce.
fn relu_sparse_batch(rng: &mut Rng, rows: usize, channels: usize, hw: usize) -> Tensor {
    let mut data = Vec::with_capacity(rows * channels * hw);
    for _ in 0..rows {
        for _ in 0..channels {
            if rng.uniform() < 0.5 {
                // Dead channel: exact zeros end to end.
                data.extend(std::iter::repeat_n(0.0f32, hw));
                continue;
            }
            let mut v = 0.0f32;
            for _ in 0..hw {
                v = 0.8 * v + 0.6 * rng.normal();
                data.push(if v > 0.0 { v } else { 0.0 });
            }
        }
    }
    Tensor::from_vec(data, &[rows, channels * hw]).expect("batch shape")
}

/// Recursive on-disk footprint of a cache directory.
fn disk_usage(dir: &Path) -> (u64, u64) {
    let mut bytes = 0u64;
    let mut files = 0u64;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let path = e.path();
            if path.is_dir() {
                stack.push(path);
            } else if let Ok(meta) = e.metadata() {
                bytes += meta.len();
                files += 1;
            }
        }
    }
    (bytes, files)
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("egeria_bench_cache_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(
    name: &str,
    mut cache: ActivationCache,
    dir: &Path,
    samples: usize,
    batch: usize,
    channels: usize,
    hw: usize,
) -> ScenarioReport {
    let mut rng = Rng::new(7);
    let ids_of = |b: usize| -> Vec<u64> { (0..batch).map(|r| (b * batch + r) as u64).collect() };
    let batches = samples / batch;

    let put_start = Instant::now();
    for b in 0..batches {
        let act = relu_sparse_batch(&mut rng, batch, channels, hw);
        cache.put_batch(&ids_of(b), &act, 1).expect("put");
    }
    cache.persist().expect("persist");
    let put_s = put_start.elapsed().as_secs_f64();

    let get_start = Instant::now();
    for b in 0..batches {
        let got = cache.get_batch(&ids_of(b), 1).expect("get");
        assert!(got.is_some(), "cached batch {b} must hit");
    }
    let get_s = get_start.elapsed().as_secs_f64();

    let (disk_bytes, file_count) = disk_usage(dir);
    let stats = cache.stats();
    let lookups = (stats.hits + stats.misses).max(1);
    let codec_ratio = cache
        .store_stats()
        .map(|s| s.codec_ratio())
        .unwrap_or(1.0);
    let report = ScenarioReport {
        name: name.to_string(),
        samples,
        put_samples_per_s: samples as f64 / put_s.max(1e-9),
        get_samples_per_s: samples as f64 / get_s.max(1e-9),
        disk_bytes,
        file_count,
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hits as f64 / lookups as f64,
        corrupt_entries: stats.corrupt_entries,
        write_errors: stats.write_errors,
        codec_ratio,
    };
    let _ = std::fs::remove_dir_all(dir);
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let samples = if smoke { 2_000 } else { 10_000 };
    let batch = 50;
    let (channels, hw) = if smoke { (16, 16) } else { (32, 16) };
    let feat = channels * hw;
    // A small memory window forces the get phase onto the disk path —
    // the number the backends actually differ on.
    let mem_batches = 2;
    eprintln!(
        "bench_cache{}: {samples} samples x {feat} floats, batch {batch}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut scenarios = Vec::new();

    let flat_dir = bench_dir("flat");
    scenarios.push(run_scenario(
        "flat",
        ActivationCache::new(&flat_dir, mem_batches).expect("flat cache"),
        &flat_dir,
        samples,
        batch,
        channels,
        hw,
    ));

    let chunked_dir = bench_dir("chunked");
    scenarios.push(run_scenario(
        "chunked",
        ActivationCache::with_store(&chunked_dir, mem_batches, StoreConfig::default())
            .expect("chunked cache"),
        &chunked_dir,
        samples,
        batch,
        channels,
        hw,
    ));

    let int8_dir = bench_dir("chunked_int8");
    scenarios.push(run_scenario(
        "chunked_int8",
        ActivationCache::with_store(
            &int8_dir,
            mem_batches,
            StoreConfig {
                codec: StoreCodec::Int8,
                ..StoreConfig::default()
            },
        )
        .expect("int8 cache"),
        &int8_dir,
        samples,
        batch,
        channels,
        hw,
    ));

    let flat = &scenarios[0];
    let chunked = &scenarios[1];
    let report = Report {
        smoke,
        samples,
        batch,
        sample_floats: feat,
        footprint_ratio: flat.disk_bytes as f64 / chunked.disk_bytes.max(1) as f64,
        file_ratio: flat.file_count as f64 / chunked.file_count.max(1) as f64,
        hit_rate_delta: chunked.hit_rate - flat.hit_rate,
        scenarios,
    };
    for s in &report.scenarios {
        eprintln!(
            "{:<14} put {:>10.0}/s  get {:>10.0}/s  {:>12} bytes in {:>6} files  hit_rate {:.3}  codec {:.2}x",
            s.name, s.put_samples_per_s, s.get_samples_per_s, s.disk_bytes, s.file_count, s.hit_rate, s.codec_ratio
        );
    }
    eprintln!(
        "footprint_ratio {:.2}x (>=2 expected), file_ratio {:.1}x (>=10 expected), hit_rate_delta {:+.4}",
        report.footprint_ratio, report.file_ratio, report.hit_rate_delta
    );
    write_json(Path::new("BENCH_cache.json"), &report).expect("write BENCH_cache.json");
    eprintln!("wrote BENCH_cache.json");
}
