//! Smoke check: does Egeria freeze sensibly and keep accuracy on one
//! workload? Not a paper figure; a fast sanity gate for the sweep.

use egeria_bench::experiments::{converged_metric, default_egeria, run_workload};
use egeria_bench::workloads::Kind;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("bert") => Kind::BertQa,
        Some("transformer") => Kind::TransformerBase,
        Some("mobilenet") => Kind::MobileNetV2,
        Some("deeplab") => Kind::DeepLabV3,
        Some("resnet50") => Kind::ResNet50,
        _ => Kind::ResNet56,
    };
    let epochs = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok());
    let base = run_workload(kind, 42, None, epochs).expect("baseline");
    let cfg = default_egeria(kind);
    let eg = run_workload(kind, 42, Some(cfg), epochs).expect("egeria");
    println!("epoch  base_loss base_metric   eg_loss eg_metric prefix active% cached");
    for (b, e) in base.report.epochs.iter().zip(eg.report.epochs.iter()) {
        let cached = eg
            .report
            .iterations
            .iter()
            .filter(|i| i.epoch as usize == e.epoch && i.fp_cached)
            .count();
        println!(
            "{:5}  {:9.4} {:11.4}  {:8.4} {:9.4} {:6} {:6.2} {:6}",
            b.epoch,
            b.train_loss,
            b.val_metric.unwrap_or(f32::NAN),
            e.train_loss,
            e.val_metric.unwrap_or(f32::NAN),
            e.frozen_prefix,
            e.active_param_fraction,
            cached
        );
    }
    println!("events: {:?}", eg.report.events);
    println!(
        "converged metric: baseline {:.4} egeria {:.4}",
        converged_metric(&base.report, base.higher_is_better),
        converged_metric(&eg.report, eg.higher_is_better)
    );
    println!(
        "plasticity points: {}, cache stats: {:?}",
        eg.report.plasticity.len(),
        eg.report.cache_stats
    );
}
