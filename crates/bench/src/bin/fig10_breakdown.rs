//! Figure 10: performance breakdown of backward-freezing vs FP caching.
//!
//! For each single-node workload we take the Egeria freezing trace and cost
//! it three ways on the paper testbed: (a) baseline (no freezing), (b)
//! freezing only (cached-FP disabled), (c) freezing + cached FP. The gap
//! (a)−(b) is the BP/communication saving, (b)−(c) the FP-caching saving.
//! CNNs should gain more from FP caching than language models, and the
//! caching slice should stay under ~10% (the paper's observation).

use egeria_bench::experiments::{default_egeria, run_workload, trace_of};
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::Kind;
use egeria_simsys::device::ClusterSpec;
use egeria_simsys::iteration::CommPolicy;
use egeria_simsys::tta::epoch_times;

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let cluster = ClusterSpec::v100_cluster(1);
    let mut rows = Vec::new();
    // Representative subset: two CNNs (front-heavy FLOPs → FP caching
    // matters) and two language models (balanced blocks → BP dominates).
    for kind in [Kind::ResNet50, Kind::ResNet56, Kind::TransformerBase, Kind::BertQa] {
        eprintln!("== {kind:?}");
        let out = run_workload(kind, 42, Some(default_egeria(kind)), None).expect("egeria run");
        let trace = trace_of(&out.report);
        // (a) Baseline: same epoch count, never frozen.
        let base_trace: Vec<_> = trace
            .iter()
            .map(|t| egeria_simsys::tta::IterTrace {
                epoch: t.epoch,
                frozen_prefix: 0,
                fp_cached: false,
            })
            .collect();
        // (b) Freezing only: drop the cached-FP flag.
        let freeze_trace: Vec<_> = trace
            .iter()
            .map(|t| egeria_simsys::tta::IterTrace {
                fp_cached: false,
                ..*t
            })
            .collect();
        let total = |tr: &[egeria_simsys::tta::IterTrace]| {
            *epoch_times(&out.arch, &cluster, tr, out.batch_size, CommPolicy::Vanilla)
                .last()
                .unwrap()
        };
        let t_base = total(&base_trace);
        let t_freeze = total(&freeze_trace);
        let t_full = total(&trace);
        let bp_saving = (t_base - t_freeze) / t_base * 100.0;
        let fp_saving = (t_freeze - t_full) / t_base * 100.0;
        rows.push(format!(
            "{:?},{t_base:.1},{t_freeze:.1},{t_full:.1},{bp_saving:.2},{fp_saving:.2}",
            kind
        ));
    }
    write_csv(
        &results.path("fig10_breakdown.csv"),
        "model,baseline_s,freeze_only_s,freeze_plus_cache_s,bp_saving_pct,fp_caching_saving_pct",
        &rows,
    )
    .expect("write fig 10");
}
