//! Debug helper: dump the plasticity trace of an Egeria run.
use egeria_bench::experiments::{default_egeria, run_workload};
use egeria_bench::workloads::Kind;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("transformer") => Kind::TransformerBase,
        Some("deeplab") => Kind::DeepLabV3,
        Some("mobilenet") => Kind::MobileNetV2,
        _ => Kind::ResNet56,
    };
    let epochs = std::env::args().nth(2).and_then(|s| s.parse().ok());
    let out = run_workload(kind, 42, Some(default_egeria(kind)), epochs).expect("run");
    for p in out.report.plasticity.iter().step_by(3) {
        println!("iter {:5} module {} raw {:.6} smoothed {:.6}", p.iteration, p.module, p.raw, p.smoothed);
    }
    println!("events {:?}", out.report.events);
}
