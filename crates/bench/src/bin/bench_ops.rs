//! Machine-readable kernel perf report: `BENCH_ops.json`.
//!
//! Times the three training hot paths — a 512³ matmul, a conv2d
//! forward+backward, and a full ResNet train step — under both compute
//! backends:
//!
//! - `serial`: the seed repo's naive serial kernels
//!   (`EGERIA_COMPUTE_BACKEND=reference` path), and
//! - `parallel`: the blocked, register-tiled GEMM backend on the worker
//!   pool at the default thread count.
//!
//! Also asserts the determinism contract (blocked output at the default
//! thread count is bit-identical to a 1-thread pool) and records the
//! verdict in the report. Pass `--smoke` for a fast low-iteration run with
//! the same report shape.

use egeria_bench::write_json;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Model, Targets};
use egeria_obs::Telemetry;
use egeria_tensor::backend::{set_backend, Backend};
use egeria_tensor::gemm::{gemm, Layout};
use egeria_tensor::{pool, Rng, Tensor, ThreadPool};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct OpReport {
    op: String,
    serial_ns_per_iter: u64,
    parallel_ns_per_iter: u64,
    speedup: f64,
    iters: u32,
}

/// Telemetry cost on the train-step hot path: the same step loop run
/// bare (no instrumentation), with a disabled `Telemetry` handle driving
/// the trainer's per-iteration probe sequence, and with an enabled one.
#[derive(Serialize)]
struct TelemetryOverheadReport {
    bare_ns_per_iter: u64,
    disabled_ns_per_iter: u64,
    enabled_ns_per_iter: u64,
    /// `(disabled - bare) / bare`, clamped at 0 — the zero-cost-when-off
    /// contract (DESIGN §5d caps this at 2%).
    disabled_overhead_pct: f64,
    /// `(enabled - bare) / bare`, clamped at 0.
    enabled_overhead_pct: f64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    bit_identical_to_serial: bool,
    ops: Vec<OpReport>,
    telemetry: TelemetryOverheadReport,
}

/// Median-of-runs timer: one warmup call, then `iters` timed calls.
fn time_ns(iters: u32, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_pair(
    op: &str,
    iters: u32,
    mut f: impl FnMut(),
) -> OpReport {
    set_backend(Backend::Reference);
    let serial = time_ns(iters, &mut f);
    set_backend(Backend::Blocked);
    let parallel = time_ns(iters, &mut f);
    let r = OpReport {
        op: op.into(),
        serial_ns_per_iter: serial,
        parallel_ns_per_iter: parallel,
        speedup: serial as f64 / parallel.max(1) as f64,
        iters,
    };
    println!(
        "{:<12} serial {:>12} ns/iter   parallel {:>12} ns/iter   speedup {:.2}x",
        r.op, r.serial_ns_per_iter, r.parallel_ns_per_iter, r.speedup
    );
    r
}

/// Blocked GEMM at the default thread count vs a 1-thread pool must agree
/// bit-for-bit — the determinism contract the report certifies.
fn check_bit_identical() -> bool {
    let mut rng = Rng::new(9);
    let (m, n, k) = (130, 67, 129);
    let a = Tensor::randn(&[m, k], &mut rng);
    let b = Tensor::randn(&[k, n], &mut rng);
    let mut c1 = vec![0.0f32; m * n];
    let p1 = ThreadPool::new(1);
    gemm(&p1, a.data(), Layout::RowMajor, b.data(), Layout::RowMajor, m, n, k, &mut c1);
    let mut cd = vec![0.0f32; m * n];
    gemm(
        ThreadPool::global(),
        a.data(),
        Layout::RowMajor,
        b.data(),
        Layout::RowMajor,
        m,
        n,
        k,
        &mut cd,
    );
    c1.iter().zip(cd.iter()).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters: u32 = if smoke { 2 } else { 5 };
    let threads = ThreadPool::global().threads().max(pool::default_threads());
    println!(
        "bench_ops: {} threads, {} iters/op{}",
        threads,
        iters,
        if smoke { " (smoke)" } else { "" }
    );

    let mut ops = Vec::new();

    // 512³ matmul (the acceptance benchmark's canonical GEMM shape).
    {
        let dim = if smoke { 192 } else { 512 };
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[dim, dim], &mut rng);
        let b = Tensor::randn(&[dim, dim], &mut rng);
        ops.push(bench_pair(&format!("matmul_{dim}"), iters, || {
            let c = a.matmul(&b).unwrap();
            std::hint::black_box(c.data()[0]);
        }));
    }

    // conv2d forward + both gradients (the CNN layer hot path).
    {
        use egeria_tensor::conv::{conv2d, conv2d_grad_input, conv2d_grad_weight, Conv2dSpec};
        let (n, ci, co, hw) = if smoke { (2, 8, 8, 12) } else { (4, 16, 32, 16) };
        let spec = Conv2dSpec::new(1, 1).unwrap();
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[n, ci, hw, hw], &mut rng);
        let w = Tensor::randn(&[co, ci, 3, 3], &mut rng);
        let g = Tensor::randn(&[n, co, hw, hw], &mut rng);
        ops.push(bench_pair("conv2d", iters, || {
            let y = conv2d(&x, &w, None, spec).unwrap();
            let gx = conv2d_grad_input(&g, &w, x.dims(), spec).unwrap();
            let gw = conv2d_grad_weight(&g, &x, w.dims(), spec).unwrap();
            std::hint::black_box((y.data()[0], gx.data()[0], gw.data()[0]));
        }));
    }

    // Full ResNet train step (forward + backward through every layer).
    {
        let n = if smoke { 2 } else { 3 };
        let mut model = resnet_cifar(
            ResNetCifarConfig {
                n,
                width: 4,
                classes: 8,
                ..Default::default()
            },
            1,
        );
        let mut rng = Rng::new(3);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[16, 3, 10, 10], &mut rng)),
            targets: Targets::Classes((0..16).map(|i| i % 8).collect()),
            sample_ids: (0..16).collect(),
        };
        ops.push(bench_pair("train_step", iters, || {
            let r = model.train_step(&batch, None).unwrap();
            model.zero_grad();
            std::hint::black_box(r.loss);
        }));
    }

    set_backend(Backend::Blocked);
    let telemetry = bench_telemetry_overhead(if smoke { 5 } else { 9 });
    let report = Report {
        threads,
        bit_identical_to_serial: check_bit_identical(),
        ops,
        telemetry,
    };
    assert!(
        report.bit_identical_to_serial,
        "determinism contract violated: blocked GEMM differs across thread counts"
    );
    assert!(
        report.telemetry.disabled_overhead_pct < 2.0,
        "disabled telemetry costs {:.3}% on the train step (contract: < 2%)",
        report.telemetry.disabled_overhead_pct
    );
    write_json(std::path::Path::new("BENCH_ops.json"), &report).expect("write BENCH_ops.json");
}

/// Times the ResNet train step bare and under the trainer's per-iteration
/// telemetry probe sequence with a disabled and an enabled handle.
fn bench_telemetry_overhead(iters: u32) -> TelemetryOverheadReport {
    const STEPS_PER_SAMPLE: u64 = 4;
    let mut model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        5,
    );
    let mut rng = Rng::new(6);
    let batch = Batch {
        input: Input::Image(Tensor::randn(&[16, 3, 10, 10], &mut rng)),
        targets: Targets::Classes((0..16).map(|i| i % 8).collect()),
        sample_ids: (0..16).collect(),
    };
    // Mirror EgeriaTrainer's per-iteration instrumentation.
    fn probed_steps(model: &mut dyn Model, batch: &Batch, tel: &Telemetry, steps: u64) {
        for i in 0..steps {
            let step = tel.span("train_step");
            let r = model.train_step(batch, None).unwrap();
            {
                let _opt = tel.span("opt_step").iteration(i);
                model.zero_grad();
            }
            drop(
                step.iteration(i)
                    .arg("frozen_prefix", 0u64)
                    .arg("fp_cached", false),
            );
            tel.counter("freezer.evaluations").inc();
            std::hint::black_box(r.loss);
        }
    }
    // Interleave the three variants round-robin and keep each one's
    // minimum round: sequential blocks let clock/thermal drift between
    // sections masquerade as overhead (the disabled path measured
    // *slower* than the enabled one on a loaded single-core box), while
    // per-round minima of interleaved samples cancel shared drift.
    let off = Telemetry::disabled();
    let on = Telemetry::enabled();
    let run_bare = |m: &mut dyn Model| {
        for i in 0..STEPS_PER_SAMPLE {
            let r = m.train_step(&batch, None).unwrap();
            m.zero_grad();
            std::hint::black_box((i, r.loss));
        }
    };
    let once = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_nanos() as u64
    };
    let (mut bare, mut disabled, mut enabled) = (u64::MAX, u64::MAX, u64::MAX);
    for round in 0..=iters {
        let b = once(&mut || run_bare(&mut model));
        let d = once(&mut || probed_steps(&mut model, &batch, &off, STEPS_PER_SAMPLE));
        let e = once(&mut || probed_steps(&mut model, &batch, &on, STEPS_PER_SAMPLE));
        if round > 0 {
            // Round 0 is warmup.
            bare = bare.min(b);
            disabled = disabled.min(d);
            enabled = enabled.min(e);
        }
    }
    let (bare, disabled, enabled) = (
        bare / STEPS_PER_SAMPLE,
        disabled / STEPS_PER_SAMPLE,
        enabled / STEPS_PER_SAMPLE,
    );
    let pct = |t: u64| ((t as f64 - bare as f64) / bare.max(1) as f64 * 100.0).max(0.0);
    let r = TelemetryOverheadReport {
        bare_ns_per_iter: bare,
        disabled_ns_per_iter: disabled,
        enabled_ns_per_iter: enabled,
        disabled_overhead_pct: pct(disabled),
        enabled_overhead_pct: pct(enabled),
    };
    println!(
        "telemetry     bare {:>12} ns/step   disabled {:>12} ns/step ({:+.3}%)   enabled {:>12} ns/step ({:+.3}%)",
        r.bare_ns_per_iter,
        r.disabled_ns_per_iter,
        r.disabled_overhead_pct,
        r.enabled_ns_per_iter,
        r.enabled_overhead_pct
    );
    r
}
