//! Machine-readable kernel perf report: `BENCH_ops.json`.
//!
//! Times the tensor hot paths — a 512³ matmul, a conv2d forward+backward,
//! an int8 qmatmul, a batched softmax, a fused Adam update, and a full
//! ResNet train step — under up to three variants:
//!
//! - `serial`: the seed repo's naive serial kernels
//!   (`EGERIA_COMPUTE_BACKEND=reference` path) — only for the ops the
//!   reference backend implements (matmul/conv2d/train_step),
//! - `parallel`: the blocked, register-tiled backend on the worker pool
//!   with the SIMD layer pinned to `Isa::Scalar`, and
//! - `simd`: the same blocked backend on this machine's best vector ISA
//!   (reported in the top-level `simd_isa` field; equal to `parallel`
//!   when the CPU has no vector unit).
//!
//! Variants are interleaved round-robin and each keeps its per-round
//! minimum, so clock/thermal drift on a loaded box cancels instead of
//! masquerading as speedup (same discipline as the telemetry section).
//! Also asserts the determinism contract (blocked output at the default
//! thread count is bit-identical to a 1-thread pool) and records the
//! verdict in the report. Pass `--smoke` for a fast low-iteration run with
//! the same report shape.

use egeria_bench::write_json;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Model, Targets};
use egeria_nn::activation::softmax_last;
use egeria_obs::Telemetry;
use egeria_quant::qtensor::{qmatmul, Granularity, QTensor};
use egeria_tensor::backend::{set_backend, Backend};
use egeria_tensor::gemm::{gemm, Layout};
use egeria_tensor::simd::{self, Isa};
use egeria_tensor::{pool, Rng, Tensor, ThreadPool};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct OpReport {
    op: String,
    iters: u32,
    /// Reference-backend time; `null` for the ops the seed's serial
    /// backend does not implement (qmatmul/softmax/adam_update).
    serial_ns_per_iter: Option<u64>,
    /// Blocked backend, SIMD layer pinned to `Isa::Scalar`.
    parallel_ns_per_iter: u64,
    /// Blocked backend on the detected vector ISA.
    simd_ns_per_iter: u64,
    /// `serial / parallel` (the PR-2 blocked-backend win), when measured.
    speedup: Option<f64>,
    /// `parallel / simd`: the additional win from the vector microkernels.
    simd_speedup: f64,
}

/// Telemetry cost on the train-step hot path: the same step loop run
/// bare (no instrumentation), with a disabled `Telemetry` handle driving
/// the trainer's per-iteration probe sequence, and with an enabled one.
#[derive(Serialize)]
struct TelemetryOverheadReport {
    bare_ns_per_iter: u64,
    disabled_ns_per_iter: u64,
    enabled_ns_per_iter: u64,
    /// `(disabled - bare) / bare`, clamped at 0 — the zero-cost-when-off
    /// contract (DESIGN §5d caps this at 2%).
    disabled_overhead_pct: f64,
    /// `(enabled - bare) / bare`, clamped at 0.
    enabled_overhead_pct: f64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    /// The vector ISA the `simd` variant ran on (`"scalar"` when the CPU
    /// has no supported vector unit).
    simd_isa: String,
    bit_identical_to_serial: bool,
    ops: Vec<OpReport>,
    telemetry: TelemetryOverheadReport,
}

fn once(f: &mut dyn FnMut()) -> u64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as u64
}

/// Times one op under its variants, interleaved per round with round 0 as
/// warmup, keeping each variant's minimum round.
fn bench_op(op: &str, iters: u32, with_serial: bool, mut f: impl FnMut()) -> OpReport {
    let vector = simd::detect();
    let (mut serial, mut parallel, mut simd_t) = (u64::MAX, u64::MAX, u64::MAX);
    for round in 0..=iters {
        let s = if with_serial {
            set_backend(Backend::Reference);
            simd::set_isa(Isa::Scalar);
            once(&mut f)
        } else {
            0
        };
        set_backend(Backend::Blocked);
        simd::set_isa(Isa::Scalar);
        let p = once(&mut f);
        simd::set_isa(vector);
        let v = once(&mut f);
        if round > 0 {
            serial = serial.min(s);
            parallel = parallel.min(p);
            simd_t = simd_t.min(v);
        }
    }
    set_backend(Backend::Blocked);
    simd::set_isa(vector);
    let r = OpReport {
        op: op.into(),
        iters,
        serial_ns_per_iter: with_serial.then_some(serial),
        parallel_ns_per_iter: parallel,
        simd_ns_per_iter: simd_t,
        speedup: with_serial.then(|| serial as f64 / parallel.max(1) as f64),
        simd_speedup: parallel as f64 / simd_t.max(1) as f64,
    };
    println!(
        "{:<12} serial {:>12} ns/iter   parallel {:>12} ns/iter   simd {:>12} ns/iter   blocked {}   simd {:.2}x",
        r.op,
        r.serial_ns_per_iter.map_or_else(|| "-".into(), |v| v.to_string()),
        r.parallel_ns_per_iter,
        r.simd_ns_per_iter,
        r.speedup.map_or_else(|| "    -".into(), |v| format!("{v:.2}x")),
        r.simd_speedup
    );
    r
}

/// Blocked GEMM at the default thread count vs a 1-thread pool must agree
/// bit-for-bit — the determinism contract the report certifies.
fn check_bit_identical() -> bool {
    let mut rng = Rng::new(9);
    let (m, n, k) = (130, 67, 129);
    let a = Tensor::randn(&[m, k], &mut rng);
    let b = Tensor::randn(&[k, n], &mut rng);
    let mut c1 = vec![0.0f32; m * n];
    let p1 = ThreadPool::new(1);
    gemm(
        &p1,
        a.data(),
        Layout::RowMajor,
        b.data(),
        Layout::RowMajor,
        m,
        n,
        k,
        &mut c1,
    );
    let mut cd = vec![0.0f32; m * n];
    gemm(
        ThreadPool::global(),
        a.data(),
        Layout::RowMajor,
        b.data(),
        Layout::RowMajor,
        m,
        n,
        k,
        &mut cd,
    );
    c1.iter()
        .zip(cd.iter())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters: u32 = if smoke { 3 } else { 7 };
    let threads = ThreadPool::global().threads().max(pool::default_threads());
    let simd_isa = simd::detect();
    println!(
        "bench_ops: {} threads, {} iters/op, simd isa {}{}",
        threads,
        iters,
        simd_isa.name(),
        if smoke { " (smoke)" } else { "" }
    );

    let mut ops = Vec::new();

    // 512³ matmul (the acceptance benchmark's canonical GEMM shape).
    {
        let dim = if smoke { 192 } else { 512 };
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[dim, dim], &mut rng);
        let b = Tensor::randn(&[dim, dim], &mut rng);
        ops.push(bench_op(&format!("matmul_{dim}"), iters, true, || {
            let c = a.matmul(&b).unwrap();
            std::hint::black_box(c.data()[0]);
        }));
    }

    // conv2d forward + both gradients (the CNN layer hot path).
    {
        use egeria_tensor::conv::{conv2d, conv2d_grad_input, conv2d_grad_weight, Conv2dSpec};
        let (n, ci, co, hw) = if smoke {
            (2, 8, 8, 12)
        } else {
            (4, 16, 32, 16)
        };
        let spec = Conv2dSpec::new(1, 1).unwrap();
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[n, ci, hw, hw], &mut rng);
        let w = Tensor::randn(&[co, ci, 3, 3], &mut rng);
        let g = Tensor::randn(&[n, co, hw, hw], &mut rng);
        ops.push(bench_op("conv2d", iters, true, || {
            let y = conv2d(&x, &w, None, spec).unwrap();
            let gx = conv2d_grad_input(&g, &w, x.dims(), spec).unwrap();
            let gw = conv2d_grad_weight(&g, &x, w.dims(), spec).unwrap();
            std::hint::black_box((y.data()[0], gx.data()[0], gw.data()[0]));
        }));
    }

    // Int8 qmatmul (the reference-model inference kernel; no serial
    // reference — the seed backend has no int8 path).
    {
        let dim = if smoke { 128 } else { 256 };
        let mut rng = Rng::new(4);
        let a = Tensor::randn(&[dim, dim], &mut rng);
        let b = Tensor::randn(&[dim, dim], &mut rng);
        let qa = QTensor::quantize(&a, Granularity::PerTensor).unwrap();
        let qb = QTensor::quantize(&b, Granularity::PerTensor).unwrap();
        ops.push(bench_op("qmatmul", iters, false, || {
            let c = qmatmul(&qa, &qb).unwrap();
            std::hint::black_box(c.data()[0]);
        }));
    }

    // Batched softmax over the class axis (loss layer / attention shape).
    {
        let (rows, k) = if smoke { (128, 512) } else { (512, 1024) };
        let mut rng = Rng::new(5);
        let x = Tensor::randn(&[rows, k], &mut rng);
        ops.push(bench_op("softmax", iters, false, || {
            let p = softmax_last(&x).unwrap();
            std::hint::black_box(p.data()[0]);
        }));
    }

    // Fused Adam parameter update (the optimizer hot loop).
    {
        let len = if smoke { 1 << 18 } else { 1 << 20 };
        let mut rng = Rng::new(7);
        let p0 = Tensor::randn(&[len], &mut rng);
        let g = Tensor::randn(&[len], &mut rng);
        let m = Tensor::randn(&[len], &mut rng);
        let v = g.map(|x| x * x + 1e-3);
        let mut p = p0.clone();
        ops.push(bench_op("adam_update", iters, false, || {
            p.adam_update_inplace(1e-3, 1e-8, 0.9, 0.99, &m, &v)
                .unwrap();
            std::hint::black_box(p.data()[0]);
        }));
    }

    // Full ResNet train step (forward + backward through every layer).
    {
        let n = if smoke { 2 } else { 3 };
        let mut model = resnet_cifar(
            ResNetCifarConfig {
                n,
                width: 4,
                classes: 8,
                ..Default::default()
            },
            1,
        );
        let mut rng = Rng::new(3);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[16, 3, 10, 10], &mut rng)),
            targets: Targets::Classes((0..16).map(|i| i % 8).collect()),
            sample_ids: (0..16).collect(),
        };
        ops.push(bench_op("train_step", iters, true, || {
            let r = model.train_step(&batch, None).unwrap();
            model.zero_grad();
            std::hint::black_box(r.loss);
        }));
    }

    set_backend(Backend::Blocked);
    simd::set_isa(simd_isa);
    let telemetry = bench_telemetry_overhead(if smoke { 5 } else { 9 });
    let report = Report {
        threads,
        simd_isa: simd_isa.name().to_string(),
        bit_identical_to_serial: check_bit_identical(),
        ops,
        telemetry,
    };
    assert!(
        report.bit_identical_to_serial,
        "determinism contract violated: blocked GEMM differs across thread counts"
    );
    assert!(
        report.telemetry.disabled_overhead_pct < 2.0,
        "disabled telemetry costs {:.3}% on the train step (contract: < 2%)",
        report.telemetry.disabled_overhead_pct
    );
    write_json(std::path::Path::new("BENCH_ops.json"), &report).expect("write BENCH_ops.json");
}

/// Times the ResNet train step bare and under the trainer's per-iteration
/// telemetry probe sequence with a disabled and an enabled handle.
fn bench_telemetry_overhead(iters: u32) -> TelemetryOverheadReport {
    const STEPS_PER_SAMPLE: u64 = 4;
    let mut model = resnet_cifar(
        ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        5,
    );
    let mut rng = Rng::new(6);
    let batch = Batch {
        input: Input::Image(Tensor::randn(&[16, 3, 10, 10], &mut rng)),
        targets: Targets::Classes((0..16).map(|i| i % 8).collect()),
        sample_ids: (0..16).collect(),
    };
    // Mirror EgeriaTrainer's per-iteration instrumentation.
    fn probed_steps(model: &mut dyn Model, batch: &Batch, tel: &Telemetry, steps: u64) {
        for i in 0..steps {
            let step = tel.span("train_step");
            let r = model.train_step(batch, None).unwrap();
            {
                let _opt = tel.span("opt_step").iteration(i);
                model.zero_grad();
            }
            drop(
                step.iteration(i)
                    .arg("frozen_prefix", 0u64)
                    .arg("fp_cached", false),
            );
            tel.counter("freezer.evaluations").inc();
            std::hint::black_box(r.loss);
        }
    }
    // Interleave the three variants round-robin and keep each one's
    // minimum round: sequential blocks let clock/thermal drift between
    // sections masquerade as overhead (the disabled path measured
    // *slower* than the enabled one on a loaded single-core box), while
    // per-round minima of interleaved samples cancel shared drift.
    let off = Telemetry::disabled();
    let on = Telemetry::enabled();
    let run_bare = |m: &mut dyn Model| {
        for i in 0..STEPS_PER_SAMPLE {
            let r = m.train_step(&batch, None).unwrap();
            m.zero_grad();
            std::hint::black_box((i, r.loss));
        }
    };
    let (mut bare, mut disabled, mut enabled) = (u64::MAX, u64::MAX, u64::MAX);
    for round in 0..=iters {
        let b = once(&mut || run_bare(&mut model));
        let d = once(&mut || probed_steps(&mut model, &batch, &off, STEPS_PER_SAMPLE));
        let e = once(&mut || probed_steps(&mut model, &batch, &on, STEPS_PER_SAMPLE));
        if round > 0 {
            // Round 0 is warmup.
            bare = bare.min(b);
            disabled = disabled.min(d);
            enabled = enabled.min(e);
        }
    }
    let (bare, disabled, enabled) = (
        bare / STEPS_PER_SAMPLE,
        disabled / STEPS_PER_SAMPLE,
        enabled / STEPS_PER_SAMPLE,
    );
    let pct = |t: u64| ((t as f64 - bare as f64) / bare.max(1) as f64 * 100.0).max(0.0);
    let r = TelemetryOverheadReport {
        bare_ns_per_iter: bare,
        disabled_ns_per_iter: disabled,
        enabled_ns_per_iter: enabled,
        disabled_overhead_pct: pct(disabled),
        enabled_overhead_pct: pct(enabled),
    };
    println!(
        "telemetry     bare {:>12} ns/step   disabled {:>12} ns/step ({:+.3}%)   enabled {:>12} ns/step ({:+.3}%)",
        r.bare_ns_per_iter,
        r.disabled_ns_per_iter,
        r.disabled_overhead_pct,
        r.enabled_ns_per_iter,
        r.enabled_overhead_pct
    );
    r
}
