//! §6.5 system-overhead report.
//!
//! Measures, on real components: reference generation/update latency (the
//! paper: 0.5–1.5 s at paper scale — ours is smaller, same plumbing),
//! the training-thread cost of submitting an async plasticity evaluation
//! (must be far under an iteration), and the activation cache's
//! storage-to-input ratio (the paper: 1.5×–5.3× for ResNet-50).

use egeria_bench::experiments::{default_egeria, run_workload};
use egeria_bench::runner::{write_csv, ResultsDir};
use egeria_bench::workloads::{Kind, Workload};
use egeria_core::controller::AsyncController;
use egeria_core::reference::ReferenceManager;
use egeria_core::EgeriaConfig;
use egeria_quant::{quantize_reference, Precision};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let results = ResultsDir::resolve().expect("results dir");
    let mut rows = Vec::new();

    // 1. Reference generation latency (static int8 quantization of a
    //    ResNet snapshot + dynamic-style for the Transformer).
    for kind in [Kind::ResNet56, Kind::TransformerBase] {
        let w = Workload::make(kind, 42);
        let t0 = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            let _ = quantize_reference(w.model.as_ref(), Precision::Int8).expect("quantize");
        }
        let per = t0.elapsed().as_secs_f64() / reps as f64;
        rows.push(format!("reference_generation_s,{},{per:.4}", w.name));
    }

    // 2. Async submission overhead on the training thread.
    {
        let w = Workload::make(Kind::ResNet56, 42);
        let mut model = w.model;
        let probe = w
            .train
            .materialize(&(0..16).collect::<Vec<_>>())
            .expect("probe");
        let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
        refmgr.generate(model.as_ref()).expect("generate");
        let mut ctrl = AsyncController::spawn(refmgr, 10.0, Arc::new(|| 0.0));
        let act = model.capture_activation(&probe, 0).expect("capture");
        let t0 = Instant::now();
        let reps = 50;
        let mut last = 0;
        for _ in 0..reps {
            if let Some(id) = ctrl.submit(probe.clone(), 0, act.clone()) {
                last = id;
            }
        }
        let submit_per = t0.elapsed().as_secs_f64() / reps as f64;
        let _ = ctrl.wait_for(last);
        // One full training iteration for comparison.
        let t1 = Instant::now();
        let _ = model.train_step(&probe, None).expect("step");
        let iter_s = t1.elapsed().as_secs_f64();
        rows.push(format!("async_submit_s,resnet56,{submit_per:.6}"));
        rows.push(format!("train_iteration_s,resnet56,{iter_s:.4}"));
        rows.push(format!(
            "submit_overhead_pct,resnet56,{:.3}",
            submit_per / iter_s * 100.0
        ));
    }

    // 3. Cache storage ratio from a real Egeria run.
    {
        let out = run_workload(Kind::ResNet56, 42, Some(default_egeria(Kind::ResNet56)), Some(30))
            .expect("egeria run");
        let ratio = out.report.cache_stats.disk_bytes_written as f64
            / out.report.input_bytes.max(1) as f64
            // Normalize per epoch: disk stores one copy per sample, input
            // bytes accumulate over all epochs.
            * out.report.epochs.len() as f64;
        rows.push(format!(
            "cache_bytes,resnet56,{}",
            out.report.cache_stats.disk_bytes_written
        ));
        rows.push(format!("cache_to_input_ratio,resnet56,{ratio:.2}"));
        rows.push(format!(
            "reference_generations,resnet56,{}",
            out.report.reference_stats.generations
        ));
        rows.push(format!(
            "reference_generation_total_s,resnet56,{:.4}",
            out.report.reference_stats.total_generation_time.as_secs_f64()
        ));
    }

    write_csv(
        &results.path("overhead_report.csv"),
        "quantity,model,value",
        &rows,
    )
    .expect("write overhead report");
}
