//! Result emission helpers shared by every experiment binary.

use serde::Serialize;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The directory experiment outputs land in (`results/` at the repo root,
/// overridable with `EGERIA_RESULTS_DIR`).
pub struct ResultsDir(PathBuf);

impl ResultsDir {
    /// Resolves (and creates) the results directory.
    pub fn resolve() -> std::io::Result<Self> {
        let dir = std::env::var("EGERIA_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        fs::create_dir_all(&dir)?;
        Ok(ResultsDir(dir))
    }

    /// A path inside the results directory.
    pub fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

/// Writes rows as CSV with a header line; also echoes the table to stdout
/// so a bare `cargo run` shows the figure's data.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "{header}")?;
    println!("{header}");
    for r in rows {
        writeln!(f, "{r}")?;
        println!("{r}");
    }
    println!("-> wrote {}", path.display());
    Ok(())
}

/// Writes a serializable value as pretty JSON.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)?;
    println!("-> wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join(format!("egeria_runner_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        write_csv(&p, "a,b", &["1,2".into(), "3,4".into()]).unwrap();
        let s = fs::read_to_string(&p).unwrap();
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("a,b"));
    }

    #[test]
    fn json_writes_serializable() {
        let dir = std::env::temp_dir().join(format!("egeria_runner_j_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.json");
        write_json(&p, &vec![1, 2, 3]).unwrap();
        assert!(fs::read_to_string(&p).unwrap().contains('2'));
    }
}
