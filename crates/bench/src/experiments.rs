//! Shared experiment runners built on the workload definitions.

use crate::workloads::{Kind, Workload};
use egeria_core::trainer::{EgeriaTrainer, TrainReport, TrainerOptions};
use egeria_core::EgeriaConfig;
use egeria_simsys::tta::IterTrace;
use egeria_simsys::ArchSpec;
use egeria_tensor::Result;

/// The output of one training run plus its paper-scale cost spec.
pub struct RunOutput {
    /// Training report (metrics, traces, events).
    pub report: TrainReport,
    /// Paper-scale architecture spec matching the trace's module indices.
    pub arch: ArchSpec,
    /// Batch size used.
    pub batch_size: usize,
    /// Whether the validation metric improves upward.
    pub higher_is_better: bool,
}

/// The Egeria hyperparameters used for a workload family.
///
/// The paper's guidance (§4.2.2): the four knobs are coupled and robust.
/// These defaults were picked once per family on the reproduction scale and
/// shared across all experiments (the W-sensitivity figure sweeps W
/// explicitly).
pub fn default_egeria(kind: Kind) -> EgeriaConfig {
    let base = EgeriaConfig {
        n: 5,
        w: 12,
        s: 12,
        t: 1.0, // Trend-to-variation ratio (see PlasticityTracker).
        bootstrap_rate: 0.10,
        reference_update_every: 8,
        ..Default::default()
    };
    match kind {
        // Fine-tuning converges fast: shorter windows.
        Kind::BertQa => EgeriaConfig {
            w: 8,
            s: 8,
            ..base
        },
        _ => base,
    }
}

/// Trains a workload end to end and returns the report + cost spec.
pub fn run_workload(
    kind: Kind,
    seed: u64,
    egeria: Option<EgeriaConfig>,
    epochs_override: Option<usize>,
) -> Result<RunOutput> {
    let w = Workload::make(kind, seed);
    let arch = w.arch_spec();
    let batch_size = w.batch_size;
    let higher = w.higher_is_better;
    let loader = w.loader(seed.wrapping_add(1000));
    let val_loader = w.val_loader();
    let epochs = epochs_override.unwrap_or(w.epochs);
    let optimizer = w.optimizer();
    let schedule = w.schedule();
    let Workload {
        model, train, val, lr_per_iteration, ..
    } = w;
    let mut trainer = EgeriaTrainer::new(
        model,
        optimizer,
        schedule,
        TrainerOptions {
            epochs,
            egeria,
            lr_per_iteration,
            ..Default::default()
        },
    );
    let report = trainer.train(train.as_ref(), &loader, Some((val.as_ref(), &val_loader)))?;
    Ok(RunOutput {
        report,
        arch,
        batch_size,
        higher_is_better: higher,
    })
}

/// Converts a report's iteration records into the simulator's trace type.
pub fn trace_of(report: &TrainReport) -> Vec<IterTrace> {
    report
        .iterations
        .iter()
        .map(|i| IterTrace {
            epoch: i.epoch,
            frozen_prefix: i.frozen_prefix,
            fp_cached: i.fp_cached,
        })
        .collect()
}

/// The per-epoch validation metric series (None where not evaluated).
pub fn metric_series(report: &TrainReport) -> Vec<Option<f32>> {
    report.epochs.iter().map(|e| e.val_metric).collect()
}

/// Running-best transform of a metric series: epoch `e` carries the best
/// value seen up to `e`. Time-to-accuracy on small validation sets is
/// jittery; the paper's convergence targets are effectively monotone, so
/// TTA is extracted from the running best.
pub fn running_best(series: &[Option<f32>], higher_is_better: bool) -> Vec<Option<f32>> {
    let mut best: Option<f32> = None;
    series
        .iter()
        .map(|m| {
            if let Some(v) = m {
                best = Some(match best {
                    Some(b) if higher_is_better => b.max(*v),
                    Some(b) => b.min(*v),
                    None => *v,
                });
            }
            best
        })
        .collect()
}

/// Epoch-tagged model snapshots, the final model, and the shared probe batch
/// returned by [`train_with_snapshots`].
pub type SnapshotRun = (
    Vec<(usize, Box<dyn egeria_models::Model>)>,
    Box<dyn egeria_models::Model>,
    egeria_models::Batch,
);

/// Manually trains a workload (no Egeria), returning model snapshots at the
/// requested epoch boundaries plus the final model and a fixed probe batch
/// for activation analysis. Used by the post hoc PWCCA / SP-loss figures.
pub fn train_with_snapshots(
    kind: Kind,
    seed: u64,
    epochs: usize,
    snap_epochs: &[usize],
    probe_batch: usize,
) -> Result<SnapshotRun> {
    let mut w = Workload::make(kind, seed);
    let loader = w.loader(seed.wrapping_add(77));
    let mut opt = w.optimizer();
    let schedule = w.schedule();
    let probe = w
        .train
        .materialize(&(0..probe_batch.min(w.train.len())).collect::<Vec<_>>())?;
    let mut snaps = Vec::new();
    for epoch in 0..epochs {
        if snap_epochs.contains(&epoch) {
            snaps.push((epoch, w.model.clone_boxed()));
        }
        opt.set_lr(schedule.lr(epoch));
        for plan in loader.epoch_plan(epoch) {
            let batch = w.train.materialize(&plan.indices)?;
            let _ = w.model.train_step(&batch, None)?;
            opt.step(&mut w.model.params_mut())?;
            w.model.zero_grad();
        }
        if snap_epochs.contains(&(epoch + 1)) && epoch + 1 == epochs {
            snaps.push((epochs, w.model.clone_boxed()));
        }
    }
    Ok((snaps, w.model, probe))
}

/// The best (final-plateau) metric of a run: the median of the last three
/// evaluated epochs, robust to single-epoch noise.
pub fn converged_metric(report: &TrainReport, higher_is_better: bool) -> f32 {
    let mut vals: Vec<f32> = report
        .epochs
        .iter()
        .rev()
        .filter_map(|e| e.val_metric)
        .take(3)
        .collect();
    if vals.is_empty() {
        return if higher_is_better { 0.0 } else { f32::INFINITY };
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    vals[vals.len() / 2]
}
