//! Criterion bench: int8 vs f32 inference kernels (Table 2 row 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use egeria_quant::fake::fake_f16;
use egeria_quant::qtensor::{qmatmul, Granularity, QTensor};
use egeria_tensor::{Rng, Tensor};

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_inference");
    for &n in &[64usize, 128] {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        let qa = QTensor::quantize(&a, Granularity::PerTensor).unwrap();
        let qb = QTensor::quantize(&b, Granularity::PerTensor).unwrap();
        group.bench_with_input(BenchmarkId::new("matmul_f32", n), &(), |bench, _| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("matmul_int8", n), &(), |bench, _| {
            bench.iter(|| qmatmul(&qa, &qb).unwrap())
        });
        // Quantization overhead itself (per reference refresh).
        group.bench_with_input(BenchmarkId::new("quantize_int8", n), &(), |bench, _| {
            bench.iter(|| QTensor::quantize(&a, Granularity::PerTensor).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fake_f16", n), &(), |bench, _| {
            bench.iter(|| fake_f16(&a))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
