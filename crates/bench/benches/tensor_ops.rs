//! Criterion bench: the tensor hot paths under both compute backends —
//! blocked+parallel GEMM vs the seed's serial reference kernels. The
//! machine-readable counterpart is `cargo run --release -p egeria-bench
//! --bin bench_ops` (emits BENCH_ops.json).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egeria_tensor::backend::{set_backend, Backend};
use egeria_tensor::conv::{conv2d, Conv2dSpec};
use egeria_tensor::{Rng, Tensor};
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let mut rng = Rng::new(1);
    for &dim in &[64usize, 192] {
        let a = Tensor::randn(&[dim, dim], &mut rng);
        let b = Tensor::randn(&[dim, dim], &mut rng);
        for (backend, tag) in [(Backend::Blocked, "blocked"), (Backend::Reference, "reference")] {
            set_backend(backend);
            group.bench_with_input(BenchmarkId::new(tag, dim), &dim, |bch, _| {
                bch.iter(|| a.matmul(&b).unwrap().data()[0])
            });
        }
    }
    set_backend(Backend::Blocked);
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let mut rng = Rng::new(2);
    let x = Tensor::randn(&[2, 8, 12, 12], &mut rng);
    let w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    let spec = Conv2dSpec::new(1, 1).unwrap();
    for (backend, tag) in [(Backend::Blocked, "blocked"), (Backend::Reference, "reference")] {
        set_backend(backend);
        group.bench_function(tag, |bch| {
            bch.iter(|| conv2d(&x, &w, None, spec).unwrap().data()[0])
        });
    }
    set_backend(Backend::Blocked);
    group.finish();
}

fn bench_bmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmm");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let mut rng = Rng::new(3);
    let a = Tensor::randn(&[8, 32, 48], &mut rng);
    let b = Tensor::randn(&[8, 48, 32], &mut rng);
    group.bench_function("batched_8x32x48", |bch| {
        bch.iter(|| a.bmm(&b).unwrap().data()[0])
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv, bench_bmm);
criterion_main!(benches);
