//! Criterion bench: real training iterations — unfrozen vs frozen vs
//! frozen-with-cached-FP (the host-machine counterpart of Figure 10).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Model, Targets};
use egeria_tensor::{Rng, Tensor};

fn setup() -> (impl Model, Batch) {
    let model = resnet_cifar(
        ResNetCifarConfig {
            n: 3,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        1,
    );
    let mut rng = Rng::new(2);
    let batch = Batch {
        input: Input::Image(Tensor::randn(&[16, 3, 10, 10], &mut rng)),
        targets: Targets::Classes((0..16).map(|i| i % 8).collect()),
        sample_ids: (0..16).collect(),
    };
    (model, batch)
}

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_step");
    group.sample_size(20);
    {
        let (mut m, batch) = setup();
        group.bench_function("unfrozen", |b| {
            b.iter(|| {
                let r = m.train_step(&batch, None).unwrap();
                m.zero_grad();
                r.loss
            })
        });
    }
    {
        let (mut m, batch) = setup();
        m.freeze_prefix(2).unwrap();
        group.bench_function("frozen_prefix_2", |b| {
            b.iter(|| {
                let r = m.train_step(&batch, None).unwrap();
                m.zero_grad();
                r.loss
            })
        });
    }
    {
        let (mut m, batch) = setup();
        m.freeze_prefix(2).unwrap();
        let boundary = m.train_step(&batch, Some(1)).unwrap().captured.unwrap();
        m.zero_grad();
        group.bench_function("frozen_prefix_2_cached_fp", |b| {
            b.iter(|| {
                let r = m.train_step_from(&batch, 2, &boundary, None).unwrap();
                m.zero_grad();
                r.loss
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_steps
}
criterion_main!(benches);
