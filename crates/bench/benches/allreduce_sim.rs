//! Criterion bench: cost of the event-driven iteration simulator itself
//! (it must stay negligible next to the training it models — a 10⁴-
//! iteration trace should cost well under a second).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use egeria_simsys::arch::{ArchSpec, FlopsModel, PaperScale};
use egeria_simsys::device::ClusterSpec;
use egeria_simsys::iteration::{iteration_time, CommPolicy, IterationSetting};
use egeria_simsys::tta::{epoch_times, IterTrace};

fn bench_sim(c: &mut Criterion) {
    let spec = ArchSpec::scaled(
        "resnet50",
        &[50_000, 120_000, 300_000, 500_000],
        Some(&[3, 4, 6, 3]),
        FlopsModel::PerBlockUniform,
        PaperScale::resnet50_imagenet(),
    );
    let cluster = ClusterSpec::v100_cluster(5);
    c.bench_function("iteration_time_vanilla", |b| {
        b.iter(|| {
            iteration_time(
                &spec,
                &cluster,
                IterationSetting {
                    frozen_prefix: 1,
                    fp_cached: true,
                    batch_size: 32,
                },
                CommPolicy::Vanilla,
            )
        })
    });
    c.bench_function("iteration_time_bytescheduler", |b| {
        b.iter(|| {
            iteration_time(
                &spec,
                &cluster,
                IterationSetting {
                    frozen_prefix: 0,
                    fp_cached: false,
                    batch_size: 32,
                },
                CommPolicy::ByteScheduler,
            )
        })
    });
    let trace: Vec<IterTrace> = (0..100u32)
        .flat_map(|e| {
            (0..100).map(move |i| IterTrace {
                epoch: e,
                frozen_prefix: (i % 4) as u16,
                fp_cached: i % 2 == 0,
            })
        })
        .collect();
    c.bench_function("epoch_times_10k_iters", |b| {
        b.iter(|| epoch_times(&spec, &cluster, &trace, 32, CommPolicy::Vanilla))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_sim
}
criterion_main!(benches);
