//! Criterion bench: SP loss vs PWCCA compute cost.
//!
//! Appendix D of the paper claims PWCCA takes ~10× more computation than SP
//! loss at equal inputs; this bench measures both on identically-shaped
//! activation pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use egeria_analysis::cka::cka;
use egeria_analysis::pwcca::{activation_matrix, pwcca_distance};
use egeria_analysis::sp_loss;
use egeria_tensor::{Rng, Tensor};

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("activation_similarity");
    for &(b, ch, hw) in &[(16usize, 16usize, 8usize), (32, 32, 8)] {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[b, ch, hw, hw], &mut rng);
        let r = Tensor::randn(&[b, ch, hw, hw], &mut rng);
        let am = activation_matrix(&a).unwrap();
        let rm = activation_matrix(&r).unwrap();
        // Production cost: SP consumes the raw feature map (b × c·h·w).
        group.bench_with_input(BenchmarkId::new("sp_loss", format!("{b}x{ch}x{hw}")), &(), |bench, _| {
            bench.iter(|| sp_loss(&a, &r).unwrap())
        });
        // Like-for-like with PWCCA: both on the channel-pooled (b × c)
        // matrices — the setting of the paper's ~10× compute-gap claim.
        group.bench_with_input(BenchmarkId::new("sp_loss_pooled", format!("{b}x{ch}x{hw}")), &(), |bench, _| {
            bench.iter(|| sp_loss(&am, &rm).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pwcca", format!("{b}x{ch}x{hw}")), &(), |bench, _| {
            bench.iter(|| pwcca_distance(&am, &rm).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cka", format!("{b}x{ch}x{hw}")), &(), |bench, _| {
            bench.iter(|| cka(&am, &rm).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_metrics
}
criterion_main!(benches);
