//! Criterion bench: reference-model generation latency (§6.5: the paper
//! measures 0.5–1.5 s for paper-scale models; this measures our scale).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::transformer::{Seq2SeqTransformer, TransformerConfig};
use egeria_models::Model;
use egeria_quant::{quantize_reference, Precision};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_generation");
    let resnet = resnet_cifar(
        ResNetCifarConfig {
            n: 9,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        1,
    );
    let transformer = Seq2SeqTransformer::new("t", TransformerConfig::base(16), 2).unwrap();
    let models: Vec<(&str, &dyn Model)> = vec![("resnet56", &resnet), ("transformer_base", &transformer)];
    for (name, model) in models {
        group.bench_function(format!("int8_static/{name}"), |b| {
            b.iter(|| quantize_reference(model, Precision::Int8).unwrap())
        });
        group.bench_function(format!("f32_snapshot/{name}"), |b| {
            b.iter(|| quantize_reference(model, Precision::F32).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_generation
}
criterion_main!(benches);
