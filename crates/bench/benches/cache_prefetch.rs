//! Criterion bench: activation-cache hit path vs recomputing the frozen
//! forward pass (§4.3's trade-off on real components).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use egeria_core::cache::ActivationCache;
use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
use egeria_models::{Batch, Input, Model, Targets};
use egeria_tensor::{Rng, Tensor};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_vs_recompute");
    group.sample_size(30);
    let mut model = resnet_cifar(
        ResNetCifarConfig {
            n: 3,
            width: 4,
            classes: 8,
            ..Default::default()
        },
        1,
    );
    model.freeze_prefix(2).unwrap();
    let mut rng = Rng::new(2);
    let batch = Batch {
        input: Input::Image(Tensor::randn(&[16, 3, 10, 10], &mut rng)),
        targets: Targets::Classes((0..16).map(|i| i % 8).collect()),
        sample_ids: (0..16).collect(),
    };
    let dir = std::env::temp_dir().join(format!("egeria_bench_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cache = ActivationCache::new(&dir, 5).unwrap();
    let boundary = model.capture_activation(&batch, 1).unwrap();
    cache.put_batch(&batch.sample_ids, &boundary, 2).unwrap();

    group.bench_function("recompute_frozen_fp", |b| {
        b.iter(|| model.capture_activation(&batch, 1).unwrap())
    });
    group.bench_function("cache_hit_memory", |b| {
        b.iter(|| cache.get_batch(&batch.sample_ids, 2).unwrap().unwrap())
    });
    group.bench_function("cache_prefetch_from_disk", |b| {
        b.iter(|| {
            // Force the disk path by invalidating the memory window.
            cache.prefetch(&batch.sample_ids).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    targets = bench_cache
}
criterion_main!(benches);
