//! Data-parallel distributed training (in-process).
//!
//! The paper evaluates Egeria under data-parallel training with all-reduce
//! gradient synchronization (§6.1). This module implements the *semantics*
//! of that setup — `k` model replicas, sharded batches, gradient averaging,
//! identical updates — with replicas living in one process. Wall-clock
//! behaviour of the cluster comes from `egeria-simsys`; this module
//! guarantees the algorithmic part: replicas stay bit-identical, frozen
//! modules are excluded from synchronization, and `k`-worker training
//! equals single-worker training on the concatenated batch.

use egeria_data::loader::BatchPlan;
use egeria_data::{DataLoader, Dataset};
use egeria_models::Model;
use egeria_nn::optim::Sgd;
use egeria_tensor::{Result, Tensor, TensorError};

/// A data-parallel worker group over identical model replicas.
pub struct DataParallel {
    replicas: Vec<Box<dyn Model>>,
    /// Gradient bytes that crossed the (emulated) network so far.
    sync_bytes: u64,
    /// Gradient bytes *skipped* thanks to frozen modules.
    skipped_bytes: u64,
}

impl DataParallel {
    /// Replicates a model `workers` times (weights copied exactly).
    pub fn new(model: &dyn Model, workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(TensorError::Numerical("need at least one worker".into()));
        }
        let replicas = (0..workers).map(|_| model.clone_boxed()).collect();
        Ok(DataParallel {
            replicas,
            sync_bytes: 0,
            skipped_bytes: 0,
        })
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// The rank-0 replica (reference for evaluation/snapshotting).
    pub fn primary(&self) -> &dyn Model {
        self.replicas[0].as_ref()
    }

    /// Mutable rank-0 replica.
    pub fn primary_mut(&mut self) -> &mut dyn Model {
        self.replicas[0].as_mut()
    }

    /// Applies a freeze decision to every replica (the controller's
    /// broadcast in Figure 5).
    pub fn freeze_prefix(&mut self, k: usize) -> Result<()> {
        for r in &mut self.replicas {
            r.freeze_prefix(k)?;
        }
        Ok(())
    }

    /// Unfreezes every replica.
    pub fn unfreeze_all(&mut self) {
        for r in &mut self.replicas {
            r.unfreeze_all();
        }
    }

    /// Bytes synchronized / skipped so far.
    pub fn traffic(&self) -> (u64, u64) {
        (self.sync_bytes, self.skipped_bytes)
    }

    /// Runs one data-parallel iteration: each worker computes gradients on
    /// its shard, gradients are all-reduced (averaged), and the shared
    /// optimizer updates every replica identically. Frozen parameters are
    /// excluded from synchronization (their would-be traffic is counted as
    /// skipped). Returns the mean loss over workers.
    pub fn step(
        &mut self,
        shards: &[egeria_models::Batch],
        optimizer: &mut Sgd,
    ) -> Result<f32> {
        if shards.len() != self.replicas.len() {
            return Err(TensorError::ShapeMismatch {
                op: "data_parallel step",
                lhs: vec![self.replicas.len()],
                rhs: vec![shards.len()],
            });
        }
        let mut loss = 0.0f32;
        for (r, shard) in self.replicas.iter_mut().zip(shards.iter()) {
            loss += r.train_step(shard, None)?.loss;
        }
        loss /= self.replicas.len() as f32;
        // All-reduce: average gradients parameter-by-parameter across
        // replicas. Parameter lists are index-aligned because every replica
        // is a clone of the same architecture.
        let workers = self.replicas.len();
        let n_params = self.replicas[0].params().len();
        for p_idx in 0..n_params {
            // Skip frozen parameters entirely (the paper's reduced sync
            // traffic).
            let (requires_grad, numel) = {
                let p = self.replicas[0].params()[p_idx];
                (p.requires_grad, p.numel())
            };
            if !requires_grad {
                self.skipped_bytes += (numel * 4 * 2 * (workers - 1) / workers.max(1)) as u64;
                continue;
            }
            let mut sum: Option<Tensor> = None;
            for r in &self.replicas {
                if let Some(g) = &r.params()[p_idx].grad {
                    match &mut sum {
                        Some(acc) => acc.axpy_inplace(1.0, g)?,
                        None => sum = Some(g.clone()),
                    }
                }
            }
            if let Some(mut avg) = sum {
                avg.scale_inplace(1.0 / workers as f32);
                self.sync_bytes += (avg.numel() * 4 * 2 * (workers - 1) / workers.max(1)) as u64;
                for r in &mut self.replicas {
                    let mut params = r.params_mut();
                    params[p_idx].grad = Some(avg.clone());
                }
            }
        }
        // Identical update on every replica (same averaged gradients, same
        // optimizer hyperparameters; per-replica momentum state is keyed by
        // parameter id so each replica keeps its own — but since gradients
        // are identical, states stay in lockstep).
        for r in &mut self.replicas {
            optimizer.step(&mut r.params_mut())?;
            r.zero_grad();
        }
        Ok(loss)
    }

    /// Trains for `epochs` over a sharded loader; returns per-epoch mean
    /// losses.
    pub fn train_epochs(
        &mut self,
        data: &dyn Dataset,
        loader: &DataLoader,
        optimizer: &mut Sgd,
        epochs: usize,
    ) -> Result<Vec<f32>> {
        let workers = self.workers();
        let mut losses = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            let plans = loader.epoch_plan(epoch);
            let mut epoch_loss = 0.0f32;
            let mut steps = 0;
            // Workers take consecutive batches as their shards of one
            // global step.
            for group in plans.chunks(workers) {
                if group.len() < workers {
                    break;
                }
                let shards: Vec<egeria_models::Batch> = group
                    .iter()
                    .map(|p: &BatchPlan| data.materialize(&p.indices))
                    .collect::<Result<_>>()?;
                epoch_loss += self.step(&shards, optimizer)?;
                steps += 1;
            }
            losses.push(epoch_loss / steps.max(1) as f32);
        }
        Ok(losses)
    }

    /// Checks that all replicas hold bit-identical parameters (a
    /// correctness invariant of data-parallel training).
    pub fn replicas_in_sync(&self) -> bool {
        let reference = self.replicas[0].params();
        self.replicas[1..].iter().all(|r| {
            r.params()
                .iter()
                .zip(reference.iter())
                .all(|(a, b)| a.value == b.value)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_models::{Batch, Input, Targets};
    use egeria_tensor::Rng;

    fn model() -> impl Model {
        resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            77,
        )
    }

    fn batch(seed: u64, b: usize) -> Batch {
        let mut rng = Rng::new(seed);
        Batch {
            input: Input::Image(Tensor::randn(&[b, 3, 8, 8], &mut rng)),
            targets: Targets::Classes((0..b).map(|i| i % 4).collect()),
            sample_ids: (0..b as u64).collect(),
        }
    }

    #[test]
    fn replicas_stay_in_sync_across_steps() {
        let m = model();
        let mut dp = DataParallel::new(&m, 3).unwrap();
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        for step in 0..4 {
            let shards = vec![batch(step * 3, 4), batch(step * 3 + 1, 4), batch(step * 3 + 2, 4)];
            let loss = dp.step(&shards, &mut opt).unwrap();
            assert!(loss.is_finite());
            assert!(dp.replicas_in_sync(), "replicas diverged at step {step}");
        }
        assert!(dp.traffic().0 > 0);
    }

    #[test]
    fn two_workers_equal_one_worker_on_concatenated_batch() {
        // Gradient averaging over equal shards == gradient of the mean loss
        // on the concatenated batch, so parameters must match (momentum-free
        // SGD keeps the comparison exact).
        let m = model();
        let mut dp = DataParallel::new(&m, 2).unwrap();
        let mut single = m.clone_boxed();
        let mut opt_dp = Sgd::new(0.05, 0.0, 0.0);
        let mut opt_single = Sgd::new(0.05, 0.0, 0.0);
        // BatchNorm sees different per-shard statistics than the full
        // batch, so use shards drawn identically — shard stats equal full
        // stats only when the shards are the same batch. Use identical
        // shard contents for an exact check.
        let shard = batch(9, 4);
        for _ in 0..3 {
            let _ = dp.step(&[shard.clone(), shard.clone()], &mut opt_dp).unwrap();
            let _ = single.train_step(&shard, None).unwrap();
            opt_single.step(&mut single.params_mut()).unwrap();
            single.zero_grad();
        }
        for (a, b) in dp.primary().params().iter().zip(single.params().iter()) {
            assert!(
                a.value.allclose(&b.value, 1e-5),
                "parameter {} diverged from single-worker training",
                a.name
            );
        }
    }

    #[test]
    fn frozen_modules_skip_synchronization() {
        let m = model();
        let mut dp = DataParallel::new(&m, 2).unwrap();
        let mut opt = Sgd::new(0.05, 0.0, 0.0);
        let shard = batch(5, 4);
        let _ = dp.step(&[shard.clone(), shard.clone()], &mut opt).unwrap();
        let (sync_full, skipped_before) = dp.traffic();
        assert_eq!(skipped_before, 0);
        dp.freeze_prefix(1).unwrap();
        let _ = dp.step(&[shard.clone(), shard], &mut opt).unwrap();
        let (sync_after, skipped_after) = dp.traffic();
        assert!(skipped_after > 0, "frozen prefix produced no skipped traffic");
        assert!(sync_after - sync_full < sync_full, "sync traffic did not shrink");
        assert!(dp.replicas_in_sync());
    }

    #[test]
    fn train_epochs_reduces_loss_with_sharded_loader() {
        use egeria_data::images::{ImageDataConfig, SyntheticImages};
        let data = SyntheticImages::new(
            ImageDataConfig {
                samples: 64,
                classes: 4,
                size: 8,
                noise: 0.3,
                augment: true,
            },
            3,
        );
        let loader = DataLoader::new(64, 8, 1, true);
        let m = model();
        let mut dp = DataParallel::new(&m, 2).unwrap();
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        let losses = dp.train_epochs(&data, &loader, &mut opt, 6).unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap());
        assert!(dp.replicas_in_sync());
    }

    #[test]
    fn zero_workers_rejected() {
        let m = model();
        assert!(DataParallel::new(&m, 0).is_err());
    }
}
