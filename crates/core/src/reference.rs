//! Reference-model lifecycle (§4.1.3).
//!
//! The reference is an int8-quantized snapshot of the training model,
//! regenerated periodically from the latest weights so stale references do
//! not amplify SGD fluctuations (Figure 7). Generation is timed so the
//! overhead report can check the paper's 0.5–1.5 s claim at paper scale
//! (ours is smaller, but the measurement plumbing is identical).

use crate::config::EgeriaConfig;
use egeria_models::{Batch, Model};
use egeria_obs::Telemetry;
use egeria_quant::{quantize_reference, Precision};
use egeria_resil::breaker::CircuitBreaker;
use egeria_resil::fault::{FaultInjector, FaultSite};
use egeria_resil::health::HealthMonitor;
use egeria_resil::retry::RetryPolicy;
use egeria_serve::{Clock, ProbeRequest, RealClock, ServeConfig, ServeEngine};
use egeria_tensor::{Result, Tensor, TensorError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consecutive serve failures before the probe breaker trips open.
const BREAKER_TRIP_AFTER: u32 = 3;
/// How long a tripped breaker stays open before a recovery probe (µs).
const BREAKER_COOLDOWN_US: u64 = 200_000;
/// Snapshot publishes: attempts and first-retry backoff (µs).
const PUBLISH_ATTEMPTS: u32 = 2;
const PUBLISH_BACKOFF_US: u64 = 200;

/// Statistics about reference-model maintenance.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceStats {
    /// How many times a reference was (re)generated.
    pub generations: usize,
    /// Total wall-clock time spent quantizing snapshots.
    pub total_generation_time: Duration,
    /// How many reference forward passes ran.
    pub forwards: usize,
}

/// Owns and refreshes the reference model.
///
/// When serving is enabled (`EGERIA_SERVE`, on by default), probe
/// captures route through an [`ServeEngine`]: each [`capture`](Self::capture)
/// becomes a submitted request executed against the latest published
/// snapshot, and [`generate`](Self::generate) publishes a new snapshot
/// version. Batched execution is bit-identical to the inline path
/// (DESIGN.md §5e), and any serve-side failure (overload, shutdown, no
/// snapshot) degrades gracefully to the inline forward, so training is
/// unaffected either way.
pub struct ReferenceManager {
    precision: Precision,
    update_every: usize,
    reference: Option<Box<dyn Model>>,
    evals_since_update: usize,
    stats: ReferenceStats,
    telemetry: Telemetry,
    serve_requested: bool,
    serve: Option<Arc<ServeEngine>>,
    clock: Arc<dyn Clock>,
    faults: Option<Arc<FaultInjector>>,
    health: Option<Arc<HealthMonitor>>,
    breaker: Option<Arc<CircuitBreaker>>,
    // A publish failed and the registry still serves the previous
    // version. Probing stale weights risks exactly the mistimed freeze
    // the paper warns about, so serve routing is suspended (inline
    // fallback, bit-identical) until a publish succeeds.
    snapshot_stale: bool,
}

impl ReferenceManager {
    /// Creates a manager from the Egeria config. The serving path is
    /// decided by `EGERIA_SERVE` at construction; the engine itself is
    /// built lazily on first [`generate`](Self::generate) so it picks up
    /// the telemetry handle attached via
    /// [`set_telemetry`](Self::set_telemetry).
    pub fn new(cfg: &EgeriaConfig) -> Self {
        ReferenceManager {
            precision: cfg.reference_precision,
            update_every: cfg.reference_update_every,
            reference: None,
            evals_since_update: 0,
            stats: ReferenceStats::default(),
            telemetry: Telemetry::disabled(),
            serve_requested: egeria_serve::serve_enabled(),
            serve: None,
            clock: RealClock::shared(),
            faults: None,
            health: None,
            breaker: None,
            snapshot_stale: false,
        }
    }

    /// Attaches a fault injector, consulted at the
    /// [`FaultSite::SnapshotPublish`] and [`FaultSite::ReferenceCapture`]
    /// sites and handed to the lazily built serve engine for its own
    /// sites. Call before the first [`generate`](Self::generate).
    pub fn set_faults(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// Attaches a health monitor: breaker trips and stale snapshots
    /// degrade it, recoveries resolve it.
    pub fn set_health(&mut self, health: Arc<HealthMonitor>) {
        self.health = Some(health);
    }

    /// Replaces the clock driving the probe breaker and publish retries
    /// (tests pin breaker behavior on a `VirtualClock` this way). Call
    /// before the serve path is first exercised.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// The circuit breaker guarding serve-routed probes, building it on
    /// first use so it picks up the attached clock/telemetry/health.
    fn breaker(&mut self) -> Arc<CircuitBreaker> {
        if self.breaker.is_none() {
            let mut b = CircuitBreaker::new(
                BREAKER_TRIP_AFTER,
                BREAKER_COOLDOWN_US,
                Arc::clone(&self.clock),
                self.telemetry.clone(),
            );
            if let Some(h) = &self.health {
                b = b.with_health(Arc::clone(h), "serve-breaker-open");
            }
            self.breaker = Some(Arc::new(b));
        }
        Arc::clone(self.breaker.as_ref().expect("just built"))
    }

    /// Replaces the serving engine (tests inject engines with virtual
    /// clocks or custom configs this way; it also force-enables the
    /// serving path regardless of `EGERIA_SERVE`). The current reference,
    /// if any, is published into the new engine.
    pub fn set_serve_engine(&mut self, engine: Arc<ServeEngine>) {
        self.serve_requested = true;
        self.serve = Some(engine);
        if self.reference.is_some() {
            self.publish_snapshot();
        }
    }

    /// The serving engine, if the serving path is active.
    pub fn serve_engine(&self) -> Option<&Arc<ServeEngine>> {
        self.serve.as_ref()
    }

    fn ensure_serve_engine(&mut self) -> Option<&Arc<ServeEngine>> {
        if !self.serve_requested {
            return None;
        }
        if self.serve.is_none() {
            self.serve = Some(Arc::new(ServeEngine::with_faults(
                ServeConfig::from_env(),
                Arc::clone(&self.clock),
                self.telemetry.clone(),
                self.faults.clone(),
                self.health.clone(),
            )));
        }
        self.serve.as_ref()
    }

    /// Publishes the current reference (already fake-quantized to serving
    /// precision) as the next snapshot version. A failed publish (after a
    /// bounded retry) marks the snapshot stale: the registry would answer
    /// probes with the *previous* reference's weights, so serve routing is
    /// suspended until a later publish succeeds.
    fn publish_snapshot(&mut self) {
        let precision = self.precision;
        let Some(model) = self.reference.as_ref().map(|r| r.clone_boxed()) else {
            return;
        };
        let faults = self.faults.clone();
        let clock = Arc::clone(&self.clock);
        let Some(engine) = self.ensure_serve_engine().map(Arc::clone) else {
            return;
        };
        let policy = RetryPolicy::new(PUBLISH_ATTEMPTS, PUBLISH_BACKOFF_US);
        let published: std::result::Result<u64, ()> = policy.run(clock.as_ref(), |_attempt| {
            if let Some(f) = &faults {
                if f.should_fail(FaultSite::SnapshotPublish) {
                    return Err(());
                }
            }
            Ok(engine.publish_prequantized(model.clone_boxed(), precision))
        });
        match published {
            Ok(_) => {
                if self.snapshot_stale {
                    self.snapshot_stale = false;
                    self.telemetry.counter("serve.snapshot_recoveries").inc();
                    if let Some(h) = &self.health {
                        h.resolve("serve-snapshot-stale");
                    }
                }
            }
            Err(()) => {
                self.snapshot_stale = true;
                self.telemetry.counter("serve.snapshot_publish_failures").inc();
                if let Some(h) = &self.health {
                    h.degrade("serve-snapshot-stale");
                }
            }
        }
    }

    /// Attaches a telemetry handle: refreshes become `reference_refresh`
    /// spans and `reference.generations` / `reference.forwards` counters
    /// mirror [`ReferenceStats`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether a reference exists.
    pub fn is_ready(&self) -> bool {
        self.reference.is_some()
    }

    /// Generates (or regenerates) the reference from a snapshot of `model`.
    pub fn generate(&mut self, model: &dyn Model) -> Result<()> {
        let span = self.telemetry.span("reference_refresh");
        let start = Instant::now();
        self.reference = Some(quantize_reference(model, self.precision)?);
        self.stats.generations += 1;
        self.stats.total_generation_time += start.elapsed();
        self.evals_since_update = 0;
        self.telemetry.counter("reference.generations").inc();
        drop(span);
        self.publish_snapshot();
        Ok(())
    }

    /// Counts one plasticity evaluation and refreshes the reference when
    /// the update interval elapses (0 = never update, Figure 7a's
    /// ablation).
    pub fn after_evaluation(&mut self, model: &dyn Model) -> Result<bool> {
        self.evals_since_update += 1;
        if self.update_every > 0 && self.evals_since_update >= self.update_every {
            self.generate(model)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Runs the reference forward to capture module `module`'s activation.
    ///
    /// With serving active this submits a probe to the engine (which may
    /// coalesce it with concurrent probes — bit-identical either way) and
    /// falls back to the inline forward on any serve-side failure.
    pub fn capture(&mut self, batch: &Batch, module: usize) -> Result<Tensor> {
        if self.reference.is_none() {
            return Err(TensorError::Numerical(
                "reference model not generated yet".into(),
            ));
        }
        self.stats.forwards += 1;
        self.telemetry.counter("reference.forwards").inc();
        if let Some(engine) = self.serve.clone() {
            if self.snapshot_stale {
                // The registry is serving the previous reference's
                // weights; probing it would risk a mistimed freeze.
                self.telemetry.counter("serve.stale_skips").inc();
                self.telemetry.counter("serve.fallbacks").inc();
            } else {
                let breaker = self.breaker();
                if breaker.allow() {
                    match engine.probe_blocking(batch, module) {
                        Ok(resp) => {
                            breaker.record_success();
                            return Ok(resp.activation);
                        }
                        Err(_) => {
                            breaker.record_failure();
                            self.telemetry.counter("serve.fallbacks").inc();
                            // A panicked worker respawns itself; this
                            // only reaps the finished thread in passing.
                            engine.supervise();
                        }
                    }
                } else {
                    self.telemetry.counter("serve.breaker_rejected").inc();
                    self.telemetry.counter("serve.fallbacks").inc();
                }
            }
        }
        self.inline_capture(batch, module)
    }

    /// The inline (non-serve) reference forward, with its injection site.
    fn inline_capture(&mut self, batch: &Batch, module: usize) -> Result<Tensor> {
        if let Some(f) = &self.faults {
            if f.should_fail(FaultSite::ReferenceCapture) {
                self.telemetry.counter("reference.capture_errors").inc();
                return Err(TensorError::Io(
                    "injected reference capture failure".into(),
                ));
            }
        }
        let r = self.reference.as_mut().expect("caller checked readiness");
        r.capture_activation(batch, module)
    }

    /// Captures several modules' activations for one batch, submitting all
    /// probes before waiting so the engine can pipeline them across its
    /// worker pool (and coalesce any that share a group). Falls back to
    /// inline forwards, preserving order, when serving is off or degraded.
    pub fn capture_many(&mut self, batch: &Batch, modules: &[usize]) -> Result<Vec<Tensor>> {
        if self.reference.is_none() {
            return Err(TensorError::Numerical(
                "reference model not generated yet".into(),
            ));
        }
        self.stats.forwards += modules.len();
        self.telemetry.counter("reference.forwards").add(modules.len() as u64);
        let mut out: Vec<Option<Tensor>> = vec![None; modules.len()];
        if let Some(engine) = self.serve.clone() {
            let route = if self.snapshot_stale {
                self.telemetry.counter("serve.stale_skips").inc();
                self.telemetry
                    .counter("serve.fallbacks")
                    .add(modules.len() as u64);
                false
            } else if !self.breaker().allow() {
                self.telemetry.counter("serve.breaker_rejected").inc();
                self.telemetry
                    .counter("serve.fallbacks")
                    .add(modules.len() as u64);
                false
            } else {
                true
            };
            if route {
                let tickets: Vec<_> = modules
                    .iter()
                    .map(|&m| {
                        engine.submit(ProbeRequest {
                            batch: batch.clone(),
                            module: m,
                            deadline: None,
                        })
                    })
                    .collect();
                engine.flush();
                let mut failures = 0usize;
                for (slot, ticket) in out.iter_mut().zip(tickets) {
                    if let Ok(t) = ticket {
                        match t.wait() {
                            Ok(resp) => *slot = Some(resp.activation),
                            Err(_) => failures += 1,
                        }
                    } else {
                        failures += 1;
                    }
                }
                let breaker = self.breaker();
                if failures == 0 {
                    breaker.record_success();
                } else {
                    breaker.record_failure();
                    self.telemetry.counter("serve.fallbacks").add(failures as u64);
                    engine.supervise();
                }
            }
        }
        let mut result = Vec::with_capacity(modules.len());
        for (&m, slot) in modules.iter().zip(out) {
            match slot {
                Some(t) => result.push(t),
                None => result.push(self.inline_capture(batch, m)?),
            }
        }
        Ok(result)
    }

    /// Maintenance statistics.
    pub fn stats(&self) -> ReferenceStats {
        self.stats
    }

    /// Exports the reference model's weights for checkpointing: parameter
    /// values keyed by name plus the positional non-parameter state
    /// buffers. `None` when no reference has been generated yet.
    ///
    /// The reference produced by [`quantize_reference`] is fake-quantized
    /// (f32 storage carrying the rounding error), so these tensors capture
    /// it exactly.
    pub fn export_reference(&self) -> Option<ReferenceSnapshot> {
        let r = self.reference.as_deref()?;
        Some(ReferenceSnapshot {
            params: r
                .params()
                .iter()
                .map(|p| (p.name.clone(), p.value.clone()))
                .collect(),
            state_buffers: r.state_buffers().iter().map(|t| (*t).clone()).collect(),
        })
    }

    /// Rebuilds the reference from an exported snapshot, using `template`
    /// (the training model) only for its architecture.
    ///
    /// This restores the *exact* reference that was active when the
    /// checkpoint was taken, which is what makes sync-mode resume
    /// trajectories match uninterrupted runs.
    pub fn restore_reference(
        &mut self,
        template: &dyn Model,
        snapshot: &ReferenceSnapshot,
    ) -> Result<()> {
        let mut r = template.clone_boxed();
        {
            let mut params = r.params_mut();
            if params.len() != snapshot.params.len() {
                return Err(TensorError::Corrupt(format!(
                    "reference snapshot has {} params, model has {}",
                    snapshot.params.len(),
                    params.len()
                )));
            }
            for p in params.iter_mut() {
                let value = snapshot
                    .params
                    .iter()
                    .find(|(n, _)| *n == p.name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| {
                        TensorError::Corrupt(format!(
                            "reference snapshot is missing parameter {:?}",
                            p.name
                        ))
                    })?;
                if value.dims() != p.value.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "restore_reference",
                        lhs: p.value.dims().to_vec(),
                        rhs: value.dims().to_vec(),
                    });
                }
                p.value = value.clone();
            }
        }
        {
            let mut bufs = r.state_buffers_mut();
            if bufs.len() != snapshot.state_buffers.len() {
                return Err(TensorError::Corrupt(format!(
                    "reference snapshot has {} state buffers, model has {}",
                    snapshot.state_buffers.len(),
                    bufs.len()
                )));
            }
            for (dst, src) in bufs.iter_mut().zip(snapshot.state_buffers.iter()) {
                if src.dims() != dst.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "restore_reference",
                        lhs: dst.dims().to_vec(),
                        rhs: src.dims().to_vec(),
                    });
                }
                **dst = src.clone();
            }
        }
        r.unfreeze_all();
        self.reference = Some(r);
        // Serving must answer with the restored bits, not a stale version.
        self.publish_snapshot();
        Ok(())
    }
}

/// An exported reference model: parameter values by name plus positional
/// state buffers (BatchNorm running statistics).
#[derive(Debug, Clone)]
pub struct ReferenceSnapshot {
    /// Parameter values keyed by parameter name.
    pub params: Vec<(String, Tensor)>,
    /// Non-parameter state buffers in architecture order.
    pub state_buffers: Vec<Tensor>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_models::{Input, Targets};
    use egeria_tensor::Rng;

    fn setup() -> (Box<dyn Model>, Batch) {
        let m = resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            1,
        );
        let mut rng = Rng::new(2);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[2, 3, 8, 8], &mut rng)),
            targets: Targets::Classes(vec![0, 1]),
            sample_ids: vec![0, 1],
        };
        (Box::new(m), batch)
    }

    #[test]
    fn capture_before_generate_errors() {
        let (_, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        assert!(!r.is_ready());
        assert!(r.capture(&batch, 0).is_err());
    }

    #[test]
    fn generate_then_capture_works() {
        let (m, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.generate(m.as_ref()).unwrap();
        assert!(r.is_ready());
        let a = r.capture(&batch, 0).unwrap();
        assert!(a.numel() > 0);
        assert_eq!(r.stats().generations, 1);
        assert_eq!(r.stats().forwards, 1);
    }

    #[test]
    fn updates_every_interval() {
        let (m, _) = setup();
        let cfg = EgeriaConfig {
            reference_update_every: 3,
            ..Default::default()
        };
        let mut r = ReferenceManager::new(&cfg);
        r.generate(m.as_ref()).unwrap();
        assert!(!r.after_evaluation(m.as_ref()).unwrap());
        assert!(!r.after_evaluation(m.as_ref()).unwrap());
        assert!(r.after_evaluation(m.as_ref()).unwrap());
        assert_eq!(r.stats().generations, 2);
    }

    #[test]
    fn zero_interval_never_updates() {
        let (m, _) = setup();
        let cfg = EgeriaConfig {
            reference_update_every: 0,
            ..Default::default()
        };
        let mut r = ReferenceManager::new(&cfg);
        r.generate(m.as_ref()).unwrap();
        for _ in 0..10 {
            assert!(!r.after_evaluation(m.as_ref()).unwrap());
        }
        assert_eq!(r.stats().generations, 1);
    }

    #[test]
    fn serve_routed_capture_is_bit_identical_to_inline() {
        let (m, batch) = setup();
        for precision in [Precision::F32, Precision::Int8] {
            let cfg = EgeriaConfig { reference_precision: precision, ..Default::default() };
            // Inline baseline: a manager with no engine attached.
            let mut inline = ReferenceManager::new(&cfg);
            inline.serve_requested = false;
            inline.generate(m.as_ref()).unwrap();
            // Served: same reference, explicit engine.
            let mut served = ReferenceManager::new(&cfg);
            served.serve_requested = false;
            served.generate(m.as_ref()).unwrap();
            served.set_serve_engine(Arc::new(ServeEngine::new(
                ServeConfig::default(),
                RealClock::shared(),
                Telemetry::disabled(),
            )));
            for module in 0..3 {
                let a = inline.capture(&batch, module).unwrap();
                let b = served.capture(&batch, module).unwrap();
                assert_eq!(a.data(), b.data(), "{precision:?} module {module}");
            }
            assert_eq!(served.serve_engine().unwrap().registry().version(), 1);
        }
    }

    #[test]
    fn generate_publishes_a_new_snapshot_version() {
        let (m, _) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.serve_requested = false;
        r.set_serve_engine(Arc::new(ServeEngine::new(
            ServeConfig::default(),
            RealClock::shared(),
            Telemetry::disabled(),
        )));
        r.generate(m.as_ref()).unwrap();
        r.generate(m.as_ref()).unwrap();
        assert_eq!(r.serve_engine().unwrap().registry().version(), 2);
    }

    #[test]
    fn capture_many_matches_sequential_captures() {
        let (m, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.serve_requested = false;
        r.generate(m.as_ref()).unwrap();
        r.set_serve_engine(Arc::new(ServeEngine::new(
            ServeConfig { workers: 2, ..ServeConfig::default() },
            RealClock::shared(),
            Telemetry::disabled(),
        )));
        let many = r.capture_many(&batch, &[0, 1, 2]).unwrap();
        let mut solo = ReferenceManager::new(&EgeriaConfig::default());
        solo.serve_requested = false;
        solo.generate(m.as_ref()).unwrap();
        for (module, act) in many.iter().enumerate() {
            let want = solo.capture(&batch, module).unwrap();
            assert_eq!(act.data(), want.data());
        }
        assert_eq!(r.stats().forwards, 3);
    }

    #[test]
    fn dead_engine_degrades_to_inline_capture() {
        let (m, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.serve_requested = false;
        r.generate(m.as_ref()).unwrap();
        // An engine with no snapshot published: every probe fails with
        // NoSnapshot and capture must fall back inline.
        let engine = Arc::new(ServeEngine::new(
            ServeConfig::default(),
            RealClock::shared(),
            Telemetry::disabled(),
        ));
        r.serve = Some(engine); // bypass set_serve_engine's publish
        let a = r.capture(&batch, 0).unwrap();
        assert!(a.numel() > 0);
    }

    #[test]
    fn breaker_trips_on_consecutive_serve_failures_then_recovers() {
        use egeria_serve::VirtualClock;
        let (m, batch) = setup();
        let t = Telemetry::enabled();
        let clock = VirtualClock::shared();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.serve_requested = false;
        r.set_telemetry(t.clone());
        r.set_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        r.generate(m.as_ref()).unwrap();
        // An engine with no snapshot: every probe fails with NoSnapshot.
        // Bypass set_serve_engine so nothing gets published.
        r.serve = Some(Arc::new(ServeEngine::new(
            ServeConfig::default(),
            RealClock::shared(),
            t.clone(),
        )));
        // Three consecutive failures trip the breaker; every capture
        // still succeeds via the inline fallback.
        for _ in 0..3 {
            assert!(r.capture(&batch, 0).is_ok());
        }
        // Tripped: the next capture skips serve entirely.
        assert!(r.capture(&batch, 0).is_ok());
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("resil.breaker.trips"), Some(1));
        assert_eq!(snap.counter("serve.breaker_rejected"), Some(1));
        assert_eq!(snap.counter("serve.fallbacks"), Some(4));
        // Fix the engine (publish the reference), let the cooldown pass:
        // the half-open recovery probe succeeds and the breaker closes.
        r.serve_requested = true; // publish_snapshot is gated on the flag
        r.publish_snapshot();
        clock.advance_us(BREAKER_COOLDOWN_US);
        assert!(r.capture(&batch, 0).is_ok());
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("resil.breaker.recoveries"), Some(1));
        // Closed again: serve routing resumed (no new fallbacks).
        assert!(r.capture(&batch, 0).is_ok());
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("serve.fallbacks"), Some(4));
    }

    #[test]
    fn publish_retry_recovers_from_single_injected_failure() {
        use egeria_resil::FaultAction;
        let (m, _) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.serve_requested = false;
        let faults = FaultInjector::new();
        r.set_faults(Arc::clone(&faults));
        r.set_serve_engine(Arc::new(ServeEngine::new(
            ServeConfig::default(),
            RealClock::shared(),
            Telemetry::disabled(),
        )));
        faults.arm(FaultSite::SnapshotPublish, 0, 1, FaultAction::Fail);
        r.generate(m.as_ref()).unwrap();
        assert!(!r.snapshot_stale, "one failure is absorbed by the retry");
        assert_eq!(r.serve_engine().unwrap().registry().version(), 1);
    }

    #[test]
    fn exhausted_publish_marks_stale_until_next_generate() {
        use egeria_resil::FaultAction;
        let (m, batch) = setup();
        let t = Telemetry::enabled();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.serve_requested = false;
        r.set_telemetry(t.clone());
        let faults = FaultInjector::new();
        r.set_faults(Arc::clone(&faults));
        r.generate(m.as_ref()).unwrap();
        r.set_serve_engine(Arc::new(ServeEngine::new(
            ServeConfig::default(),
            RealClock::shared(),
            t.clone(),
        )));
        assert_eq!(r.serve_engine().unwrap().registry().version(), 1);
        // Both attempts of the next publish fail: stale.
        faults.arm(FaultSite::SnapshotPublish, 0, 2, FaultAction::Fail);
        r.generate(m.as_ref()).unwrap();
        assert!(r.snapshot_stale);
        assert_eq!(r.serve_engine().unwrap().registry().version(), 1);
        // Stale: captures skip serve (would answer with version-1 bits).
        assert!(r.capture(&batch, 0).is_ok());
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("serve.stale_skips"), Some(1));
        assert_eq!(snap.counter("serve.snapshot_publish_failures"), Some(1));
        // The next generate publishes cleanly and routing resumes.
        r.generate(m.as_ref()).unwrap();
        assert!(!r.snapshot_stale);
        assert_eq!(r.serve_engine().unwrap().registry().version(), 2);
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("serve.snapshot_recoveries"), Some(1));
    }

    #[test]
    fn injected_capture_fault_surfaces_typed_error_then_clears() {
        use egeria_resil::FaultAction;
        let (m, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.serve_requested = false;
        let faults = FaultInjector::new();
        r.set_faults(Arc::clone(&faults));
        r.generate(m.as_ref()).unwrap();
        faults.arm(FaultSite::ReferenceCapture, 0, 1, FaultAction::Fail);
        assert!(r.capture(&batch, 0).is_err());
        assert!(r.capture(&batch, 0).is_ok(), "plan exhausted: capture heals");
    }

    #[test]
    fn updated_reference_tracks_training_model() {
        // After the training model changes, an updated reference must match
        // the new weights rather than the old snapshot.
        let (mut m, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig {
            reference_precision: Precision::F32,
            ..Default::default()
        });
        r.generate(m.as_ref()).unwrap();
        let before = r.capture(&batch, 1).unwrap();
        // Perturb the model.
        for p in m.params_mut() {
            p.value = p.value.add_scalar(0.05);
        }
        r.generate(m.as_ref()).unwrap();
        let after = r.capture(&batch, 1).unwrap();
        assert!(!before.allclose(&after, 1e-6));
        let live = m.capture_activation(&batch, 1).unwrap();
        assert!(live.allclose(&after, 1e-5));
    }
}
