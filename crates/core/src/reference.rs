//! Reference-model lifecycle (§4.1.3).
//!
//! The reference is an int8-quantized snapshot of the training model,
//! regenerated periodically from the latest weights so stale references do
//! not amplify SGD fluctuations (Figure 7). Generation is timed so the
//! overhead report can check the paper's 0.5–1.5 s claim at paper scale
//! (ours is smaller, but the measurement plumbing is identical).

use crate::config::EgeriaConfig;
use egeria_models::{Batch, Model};
use egeria_obs::Telemetry;
use egeria_quant::{quantize_reference, Precision};
use egeria_tensor::{Result, Tensor, TensorError};
use std::time::{Duration, Instant};

/// Statistics about reference-model maintenance.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceStats {
    /// How many times a reference was (re)generated.
    pub generations: usize,
    /// Total wall-clock time spent quantizing snapshots.
    pub total_generation_time: Duration,
    /// How many reference forward passes ran.
    pub forwards: usize,
}

/// Owns and refreshes the reference model.
pub struct ReferenceManager {
    precision: Precision,
    update_every: usize,
    reference: Option<Box<dyn Model>>,
    evals_since_update: usize,
    stats: ReferenceStats,
    telemetry: Telemetry,
}

impl ReferenceManager {
    /// Creates a manager from the Egeria config.
    pub fn new(cfg: &EgeriaConfig) -> Self {
        ReferenceManager {
            precision: cfg.reference_precision,
            update_every: cfg.reference_update_every,
            reference: None,
            evals_since_update: 0,
            stats: ReferenceStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: refreshes become `reference_refresh`
    /// spans and `reference.generations` / `reference.forwards` counters
    /// mirror [`ReferenceStats`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether a reference exists.
    pub fn is_ready(&self) -> bool {
        self.reference.is_some()
    }

    /// Generates (or regenerates) the reference from a snapshot of `model`.
    pub fn generate(&mut self, model: &dyn Model) -> Result<()> {
        let span = self.telemetry.span("reference_refresh");
        let start = Instant::now();
        self.reference = Some(quantize_reference(model, self.precision)?);
        self.stats.generations += 1;
        self.stats.total_generation_time += start.elapsed();
        self.evals_since_update = 0;
        self.telemetry.counter("reference.generations").inc();
        drop(span);
        Ok(())
    }

    /// Counts one plasticity evaluation and refreshes the reference when
    /// the update interval elapses (0 = never update, Figure 7a's
    /// ablation).
    pub fn after_evaluation(&mut self, model: &dyn Model) -> Result<bool> {
        self.evals_since_update += 1;
        if self.update_every > 0 && self.evals_since_update >= self.update_every {
            self.generate(model)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Runs the reference forward to capture module `module`'s activation.
    pub fn capture(&mut self, batch: &Batch, module: usize) -> Result<Tensor> {
        let r = self.reference.as_mut().ok_or_else(|| {
            TensorError::Numerical("reference model not generated yet".into())
        })?;
        self.stats.forwards += 1;
        self.telemetry.counter("reference.forwards").inc();
        r.capture_activation(batch, module)
    }

    /// Maintenance statistics.
    pub fn stats(&self) -> ReferenceStats {
        self.stats
    }

    /// Exports the reference model's weights for checkpointing: parameter
    /// values keyed by name plus the positional non-parameter state
    /// buffers. `None` when no reference has been generated yet.
    ///
    /// The reference produced by [`quantize_reference`] is fake-quantized
    /// (f32 storage carrying the rounding error), so these tensors capture
    /// it exactly.
    pub fn export_reference(&self) -> Option<ReferenceSnapshot> {
        let r = self.reference.as_deref()?;
        Some(ReferenceSnapshot {
            params: r
                .params()
                .iter()
                .map(|p| (p.name.clone(), p.value.clone()))
                .collect(),
            state_buffers: r.state_buffers().iter().map(|t| (*t).clone()).collect(),
        })
    }

    /// Rebuilds the reference from an exported snapshot, using `template`
    /// (the training model) only for its architecture.
    ///
    /// This restores the *exact* reference that was active when the
    /// checkpoint was taken, which is what makes sync-mode resume
    /// trajectories match uninterrupted runs.
    pub fn restore_reference(
        &mut self,
        template: &dyn Model,
        snapshot: &ReferenceSnapshot,
    ) -> Result<()> {
        let mut r = template.clone_boxed();
        {
            let mut params = r.params_mut();
            if params.len() != snapshot.params.len() {
                return Err(TensorError::Corrupt(format!(
                    "reference snapshot has {} params, model has {}",
                    snapshot.params.len(),
                    params.len()
                )));
            }
            for p in params.iter_mut() {
                let value = snapshot
                    .params
                    .iter()
                    .find(|(n, _)| *n == p.name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| {
                        TensorError::Corrupt(format!(
                            "reference snapshot is missing parameter {:?}",
                            p.name
                        ))
                    })?;
                if value.dims() != p.value.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "restore_reference",
                        lhs: p.value.dims().to_vec(),
                        rhs: value.dims().to_vec(),
                    });
                }
                p.value = value.clone();
            }
        }
        {
            let mut bufs = r.state_buffers_mut();
            if bufs.len() != snapshot.state_buffers.len() {
                return Err(TensorError::Corrupt(format!(
                    "reference snapshot has {} state buffers, model has {}",
                    snapshot.state_buffers.len(),
                    bufs.len()
                )));
            }
            for (dst, src) in bufs.iter_mut().zip(snapshot.state_buffers.iter()) {
                if src.dims() != dst.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "restore_reference",
                        lhs: dst.dims().to_vec(),
                        rhs: src.dims().to_vec(),
                    });
                }
                **dst = src.clone();
            }
        }
        r.unfreeze_all();
        self.reference = Some(r);
        Ok(())
    }
}

/// An exported reference model: parameter values by name plus positional
/// state buffers (BatchNorm running statistics).
#[derive(Debug, Clone)]
pub struct ReferenceSnapshot {
    /// Parameter values keyed by parameter name.
    pub params: Vec<(String, Tensor)>,
    /// Non-parameter state buffers in architecture order.
    pub state_buffers: Vec<Tensor>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_models::{Input, Targets};
    use egeria_tensor::Rng;

    fn setup() -> (Box<dyn Model>, Batch) {
        let m = resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            1,
        );
        let mut rng = Rng::new(2);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[2, 3, 8, 8], &mut rng)),
            targets: Targets::Classes(vec![0, 1]),
            sample_ids: vec![0, 1],
        };
        (Box::new(m), batch)
    }

    #[test]
    fn capture_before_generate_errors() {
        let (_, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        assert!(!r.is_ready());
        assert!(r.capture(&batch, 0).is_err());
    }

    #[test]
    fn generate_then_capture_works() {
        let (m, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig::default());
        r.generate(m.as_ref()).unwrap();
        assert!(r.is_ready());
        let a = r.capture(&batch, 0).unwrap();
        assert!(a.numel() > 0);
        assert_eq!(r.stats().generations, 1);
        assert_eq!(r.stats().forwards, 1);
    }

    #[test]
    fn updates_every_interval() {
        let (m, _) = setup();
        let cfg = EgeriaConfig {
            reference_update_every: 3,
            ..Default::default()
        };
        let mut r = ReferenceManager::new(&cfg);
        r.generate(m.as_ref()).unwrap();
        assert!(!r.after_evaluation(m.as_ref()).unwrap());
        assert!(!r.after_evaluation(m.as_ref()).unwrap());
        assert!(r.after_evaluation(m.as_ref()).unwrap());
        assert_eq!(r.stats().generations, 2);
    }

    #[test]
    fn zero_interval_never_updates() {
        let (m, _) = setup();
        let cfg = EgeriaConfig {
            reference_update_every: 0,
            ..Default::default()
        };
        let mut r = ReferenceManager::new(&cfg);
        r.generate(m.as_ref()).unwrap();
        for _ in 0..10 {
            assert!(!r.after_evaluation(m.as_ref()).unwrap());
        }
        assert_eq!(r.stats().generations, 1);
    }

    #[test]
    fn updated_reference_tracks_training_model() {
        // After the training model changes, an updated reference must match
        // the new weights rather than the old snapshot.
        let (mut m, batch) = setup();
        let mut r = ReferenceManager::new(&EgeriaConfig {
            reference_precision: Precision::F32,
            ..Default::default()
        });
        r.generate(m.as_ref()).unwrap();
        let before = r.capture(&batch, 1).unwrap();
        // Perturb the model.
        for p in m.params_mut() {
            p.value = p.value.add_scalar(0.05);
        }
        r.generate(m.as_ref()).unwrap();
        let after = r.capture(&batch, 1).unwrap();
        assert!(!before.allclose(&after, 1e-6));
        let live = m.capture_activation(&batch, 1).unwrap();
        assert!(live.allclose(&after, 1e-5));
    }
}
