//! The paper's minimal-code-change facade (§4.1.1):
//!
//! ```text
//! from egeria import EgeriaController, EgeriaModule
//! controller = EgeriaController(args, ...)
//! model = EgeriaModule(arch, args, ...)   # replaces nn.Module
//! ```
//!
//! In Rust:
//!
//! ```
//! use egeria_core::{EgeriaController, EgeriaModule, EgeriaConfig};
//! use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
//!
//! let controller = EgeriaController::new(EgeriaConfig::default());
//! let module = EgeriaModule::wrap(Box::new(resnet_cifar(
//!     ResNetCifarConfig { n: 2, width: 4, classes: 10, ..Default::default() },
//!     42,
//! )));
//! assert!(module.modules().len() > 1);
//! let _ = controller; // Handed to the trainer together with the module.
//! ```

use crate::config::EgeriaConfig;
use crate::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_models::{Model, ModuleMeta};
use egeria_nn::sched::LrSchedule;
use egeria_obs::Telemetry;

/// A model wrapped for Egeria training — the `nn.Module` replacement.
///
/// The wrapper exposes the freeze/unfreeze interface the controller calls
/// and otherwise defers to the wrapped [`Model`].
pub struct EgeriaModule {
    model: Box<dyn Model>,
}

impl EgeriaModule {
    /// Wraps an existing model.
    pub fn wrap(model: Box<dyn Model>) -> Self {
        EgeriaModule { model }
    }

    /// The wrapped model's layer modules (what the controller freezes
    /// over).
    pub fn modules(&self) -> Vec<ModuleMeta> {
        self.model.modules()
    }

    /// Freezes the first `k` modules (the controller's `freeze()` call).
    pub fn freeze(&mut self, k: usize) -> egeria_tensor::Result<()> {
        self.model.freeze_prefix(k)
    }

    /// Unfreezes everything (the controller's `unfreeze()` call).
    pub fn unfreeze(&mut self) {
        self.model.unfreeze_all()
    }

    /// Unwraps into the inner model.
    pub fn into_inner(self) -> Box<dyn Model> {
        self.model
    }
}

/// The controller handle: configuration plus trainer construction.
pub struct EgeriaController {
    config: EgeriaConfig,
    telemetry: Telemetry,
}

impl EgeriaController {
    /// Creates a controller with the given configuration.
    pub fn new(config: EgeriaConfig) -> Self {
        EgeriaController {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; the trainer built by
    /// [`into_trainer`](Self::into_trainer) records spans, instants, and
    /// counters into it. Without this call telemetry stays disabled and
    /// costs one branch per probe.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &EgeriaConfig {
        &self.config
    }

    /// Builds the knowledge-guided trainer for a wrapped module.
    pub fn into_trainer(
        self,
        module: EgeriaModule,
        optimizer: Optimizer,
        schedule: Box<dyn LrSchedule>,
        epochs: usize,
        lr_per_iteration: bool,
    ) -> EgeriaTrainer {
        EgeriaTrainer::new(
            module.into_inner(),
            optimizer,
            schedule,
            TrainerOptions {
                epochs,
                egeria: Some(self.config),
                lr_per_iteration,
                telemetry: self.telemetry,
                ..Default::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_data::images::{ImageDataConfig, SyntheticImages};
    use egeria_data::DataLoader;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_nn::optim::Sgd;
    use egeria_nn::sched::StepDecay;

    #[test]
    fn facade_matches_paper_workflow() {
        let controller = EgeriaController::new(EgeriaConfig {
            n: 2,
            w: 3,
            s: 2,
            t: 5.0,
            bootstrap_rate: 0.9,
            ..Default::default()
        });
        let module = EgeriaModule::wrap(Box::new(resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            1,
        )));
        assert!(module.modules().len() >= 3);
        let mut trainer = controller.into_trainer(
            module,
            Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
            Box::new(StepDecay::new(0.05, 0.1, 100)),
            4,
            false,
        );
        let data = SyntheticImages::new(
            ImageDataConfig {
                samples: 32,
                classes: 4,
                size: 8,
                noise: 0.3,
                augment: true,
            },
            2,
        );
        let loader = DataLoader::new(32, 16, 3, true);
        let report = trainer.train(&data, &loader, None).unwrap();
        assert!(report.egeria);
        assert_eq!(report.epochs.len(), 4);
    }

    #[test]
    fn facade_telemetry_records_train_steps() {
        let telemetry = Telemetry::enabled();
        let controller = EgeriaController::new(EgeriaConfig {
            n: 2,
            w: 3,
            s: 2,
            t: 5.0,
            bootstrap_rate: 0.9,
            ..Default::default()
        })
        .with_telemetry(telemetry.clone());
        let module = EgeriaModule::wrap(Box::new(resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            1,
        )));
        let mut trainer = controller.into_trainer(
            module,
            Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
            Box::new(StepDecay::new(0.05, 0.1, 100)),
            2,
            false,
        );
        let data = SyntheticImages::new(
            ImageDataConfig {
                samples: 32,
                classes: 4,
                size: 8,
                noise: 0.3,
                augment: true,
            },
            2,
        );
        let loader = DataLoader::new(32, 16, 3, true);
        trainer.train(&data, &loader, None).unwrap();
        let (events, dropped) = telemetry.trace_events();
        assert_eq!(dropped, 0);
        let steps = events.iter().filter(|e| e.kind == "train_step").count();
        assert_eq!(steps, 4, "2 epochs x 2 batches of train_step spans");
        assert!(events.iter().any(|e| e.kind == "opt_step"));
        let step = events.iter().find(|e| e.kind == "train_step").unwrap();
        assert!(step.dur_us.is_some());
        assert!(step.iteration.is_some());
        assert!(step.args.iter().any(|(k, _)| *k == "frozen_prefix"));
        assert!(step.args.iter().any(|(k, _)| *k == "fp_cached"));
    }

    #[test]
    fn module_freeze_interface_works() {
        let mut module = EgeriaModule::wrap(Box::new(resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            2,
        )));
        module.freeze(1).unwrap();
        module.unfreeze();
        assert!(module.freeze(module.modules().len()).is_err());
    }
}
