//! The paper's minimal-code-change facade (§4.1.1):
//!
//! ```text
//! from egeria import EgeriaController, EgeriaModule
//! controller = EgeriaController(args, ...)
//! model = EgeriaModule(arch, args, ...)   # replaces nn.Module
//! ```
//!
//! In Rust:
//!
//! ```
//! use egeria_core::{EgeriaController, EgeriaModule, EgeriaConfig};
//! use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
//!
//! let controller = EgeriaController::new(EgeriaConfig::default());
//! let module = EgeriaModule::wrap(Box::new(resnet_cifar(
//!     ResNetCifarConfig { n: 2, width: 4, classes: 10, ..Default::default() },
//!     42,
//! )));
//! assert!(module.modules().len() > 1);
//! let _ = controller; // Handed to the trainer together with the module.
//! ```

use crate::config::EgeriaConfig;
use crate::trainer::{EgeriaTrainer, Optimizer, TrainerOptions};
use egeria_models::{Model, ModuleMeta};
use egeria_nn::sched::LrSchedule;

/// A model wrapped for Egeria training — the `nn.Module` replacement.
///
/// The wrapper exposes the freeze/unfreeze interface the controller calls
/// and otherwise defers to the wrapped [`Model`].
pub struct EgeriaModule {
    model: Box<dyn Model>,
}

impl EgeriaModule {
    /// Wraps an existing model.
    pub fn wrap(model: Box<dyn Model>) -> Self {
        EgeriaModule { model }
    }

    /// The wrapped model's layer modules (what the controller freezes
    /// over).
    pub fn modules(&self) -> Vec<ModuleMeta> {
        self.model.modules()
    }

    /// Freezes the first `k` modules (the controller's `freeze()` call).
    pub fn freeze(&mut self, k: usize) -> egeria_tensor::Result<()> {
        self.model.freeze_prefix(k)
    }

    /// Unfreezes everything (the controller's `unfreeze()` call).
    pub fn unfreeze(&mut self) {
        self.model.unfreeze_all()
    }

    /// Unwraps into the inner model.
    pub fn into_inner(self) -> Box<dyn Model> {
        self.model
    }
}

/// The controller handle: configuration plus trainer construction.
pub struct EgeriaController {
    config: EgeriaConfig,
}

impl EgeriaController {
    /// Creates a controller with the given configuration.
    pub fn new(config: EgeriaConfig) -> Self {
        EgeriaController { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EgeriaConfig {
        &self.config
    }

    /// Builds the knowledge-guided trainer for a wrapped module.
    pub fn into_trainer(
        self,
        module: EgeriaModule,
        optimizer: Optimizer,
        schedule: Box<dyn LrSchedule>,
        epochs: usize,
        lr_per_iteration: bool,
    ) -> EgeriaTrainer {
        EgeriaTrainer::new(
            module.into_inner(),
            optimizer,
            schedule,
            TrainerOptions {
                epochs,
                egeria: Some(self.config),
                lr_per_iteration,
                ..Default::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_data::images::{ImageDataConfig, SyntheticImages};
    use egeria_data::DataLoader;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_nn::optim::Sgd;
    use egeria_nn::sched::StepDecay;

    #[test]
    fn facade_matches_paper_workflow() {
        let controller = EgeriaController::new(EgeriaConfig {
            n: 2,
            w: 3,
            s: 2,
            t: 5.0,
            bootstrap_rate: 0.9,
            ..Default::default()
        });
        let module = EgeriaModule::wrap(Box::new(resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            1,
        )));
        assert!(module.modules().len() >= 3);
        let mut trainer = controller.into_trainer(
            module,
            Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0)),
            Box::new(StepDecay::new(0.05, 0.1, 100)),
            4,
            false,
        );
        let data = SyntheticImages::new(
            ImageDataConfig {
                samples: 32,
                classes: 4,
                size: 8,
                noise: 0.3,
                augment: true,
            },
            2,
        );
        let loader = DataLoader::new(32, 16, 3, true);
        let report = trainer.train(&data, &loader, None).unwrap();
        assert!(report.egeria);
        assert_eq!(report.epochs.len(), 4);
    }

    #[test]
    fn module_freeze_interface_works() {
        let mut module = EgeriaModule::wrap(Box::new(resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            2,
        )));
        module.freeze(1).unwrap();
        module.unfreeze();
        assert!(module.freeze(module.modules().len()).is_err());
    }
}
