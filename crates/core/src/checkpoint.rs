//! Crash-consistent checkpoint/resume for the Egeria training pipeline.
//!
//! A checkpoint captures *everything* the trainer needs to continue a run
//! as if it had never stopped: model parameters (by name) and BatchNorm
//! running statistics, optimizer slots, the freezing state machine
//! (frozen prefix, per-module plasticity histories, event log), the
//! bootstrap monitor, the active reference-model snapshot, and the report
//! accumulators. The LR schedule and data order need no cursor state —
//! both are pure functions of `(seed, epoch/step)`.
//!
//! On-disk container (little-endian), format version 3:
//!
//! ```text
//! magic        u32  = 0x4B434745 ("EGCK")
//! version      u8   = 3
//! payload_len  u64
//! crc32        u32  (IEEE CRC-32 of the payload)
//! payload      (the encoded TrainerCheckpoint)
//! ```
//!
//! Version history: v2 added the freeze-policy state block
//! ([`crate::policy::PolicyState`]) to the freezer section. v3 appended
//! the activation-cache backend kind (`cache_store`) so a resumed run can
//! detect a backend switch and wipe the incompatible cache layout instead
//! of silently recomputing against garbage files. Older files are still
//! decodable — v1 freezer state upgrades with [`PolicyState::legacy`]
//! (those runs were always paper-policy driven), and v≤2 upgrades with
//! `cache_store = "flat"` (the only backend that existed).
//!
//! Atomicity protocol: the file is written to `<name>.tmp`, fsynced, then
//! renamed over the final name — a crash mid-save leaves at most a stale
//! `.tmp`, never a half-written checkpoint under the real name. Loading
//! scans the directory newest-first and falls back past any file whose
//! magic, version, length, or checksum fails, so a corrupted latest
//! checkpoint silently yields the previous one.

use crate::bootstrap::BootstrapSnapshot;
use crate::faults::{FaultAction, FaultInjector, FaultSite};
use crate::freezer::{FreezeEvent, FreezerSnapshot};
use crate::plasticity::TrackerSnapshot;
use crate::policy::PolicyState;
use crate::reference::ReferenceSnapshot;
use crate::trainer::{EpochRecord, EventRecord, IterationRecord, PlasticityPoint};
use bytes::BufMut;
use egeria_nn::optim::OptimizerState;
use egeria_tensor::{serialize, Result, Tensor, TensorError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic number of checkpoint files ("EGCK").
pub const MAGIC: u32 = 0x4B43_4745;

/// Current checkpoint container version.
pub const FORMAT_VERSION: u8 = 3;

/// Oldest container version this binary still decodes.
pub const MIN_FORMAT_VERSION: u8 = 1;

const HEADER_LEN: usize = 4 + 1 + 8 + 4;

/// Checkpointing options for the trainer.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory the checkpoints live in (created if missing).
    pub dir: PathBuf,
    /// Save every this many epochs (1 = every epoch).
    pub every: usize,
    /// How many checkpoint files to retain (older ones are deleted).
    pub keep: usize,
}

impl CheckpointOptions {
    /// Checkpoint into `dir` every epoch, keeping the 3 most recent files.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            every: 1,
            keep: 3,
        }
    }
}

/// The complete persistent trainer state.
#[derive(Debug, Clone)]
pub struct TrainerCheckpoint {
    /// Model name, validated on resume.
    pub model_name: String,
    /// First epoch the resumed run should execute.
    pub next_epoch: u64,
    /// Global iteration counter at the epoch boundary.
    pub global_step: u64,
    /// Evaluations since the last reference refresh.
    pub evals_since_ref_update: u64,
    /// Frozen-prefix length.
    pub frozen_prefix: u64,
    /// Model parameters keyed by name.
    pub params: Vec<(String, Tensor)>,
    /// Non-parameter model state (BatchNorm running statistics), in
    /// architecture order.
    pub state_buffers: Vec<Tensor>,
    /// Optimizer state (kind, LR, step count, name-keyed slots).
    pub optimizer: OptimizerState,
    /// Freezing-engine state (`None` when Egeria is off).
    pub freezer: Option<FreezerSnapshot>,
    /// Bootstrap-monitor state (`None` when Egeria is off).
    pub bootstrap: Option<BootstrapSnapshot>,
    /// The active reference model (`None` before bootstrap completes, and
    /// in async mode, where the controller thread owns the reference — the
    /// resumed run regenerates it from the restored weights).
    pub reference: Option<ReferenceSnapshot>,
    /// Per-epoch report records accumulated so far.
    pub epochs: Vec<EpochRecord>,
    /// Per-iteration report records accumulated so far.
    pub iterations: Vec<IterationRecord>,
    /// Plasticity trace accumulated so far.
    pub plasticity: Vec<PlasticityPoint>,
    /// Freeze/unfreeze events accumulated so far.
    pub events: Vec<EventRecord>,
    /// Input bytes accumulated so far.
    pub input_bytes: u64,
    /// Activation-cache backend name (`"flat"` / `"chunked"`) the run was
    /// using; a resumed run on a different backend wipes the cache dir
    /// instead of reading a foreign layout. v≤2 files decode as `"flat"`.
    pub cache_store: String,
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.put_u8(v as u8);
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    let bytes = serialize::to_bytes(t);
    out.put_u64_le(bytes.len() as u64);
    out.put_slice(&bytes);
}

fn put_f32_vec(out: &mut Vec<u8>, v: &[f32]) {
    out.put_u64_le(v.len() as u64);
    for &x in v {
        out.put_f32_le(x);
    }
}

fn put_opt_f32(out: &mut Vec<u8>, v: Option<f32>) {
    match v {
        Some(x) => {
            out.put_u8(1);
            out.put_f32_le(x);
        }
        None => out.put_u8(0),
    }
}

fn put_named_tensors(out: &mut Vec<u8>, v: &[(String, Tensor)]) {
    out.put_u64_le(v.len() as u64);
    for (name, t) in v {
        put_string(out, name);
        put_tensor(out, t);
    }
}

fn put_tracker(out: &mut Vec<u8>, t: &TrackerSnapshot) {
    put_f32_vec(out, &t.raw);
    put_f32_vec(out, &t.smoothed);
    out.put_u64_le(t.stale as u64);
    out.put_u64_le(t.w as u64);
    out.put_u64_le(t.s as u64);
    out.put_f32_le(t.t);
}

fn put_policy_state(out: &mut Vec<u8>, p: &PolicyState) {
    put_string(out, &p.kind);
    out.put_u32_le(p.version);
    put_f32_vec(out, &p.scalars);
    out.put_u64_le(p.counters.len() as u64);
    for &c in &p.counters {
        out.put_u64_le(c);
    }
}

fn encode_payload(ckpt: &TrainerCheckpoint, version: u8) -> Vec<u8> {
    let mut out = Vec::new();
    put_string(&mut out, &ckpt.model_name);
    out.put_u64_le(ckpt.next_epoch);
    out.put_u64_le(ckpt.global_step);
    out.put_u64_le(ckpt.evals_since_ref_update);
    out.put_u64_le(ckpt.frozen_prefix);
    put_named_tensors(&mut out, &ckpt.params);
    out.put_u64_le(ckpt.state_buffers.len() as u64);
    for t in &ckpt.state_buffers {
        put_tensor(&mut out, t);
    }
    // Optimizer.
    put_string(&mut out, &ckpt.optimizer.kind);
    out.put_f32_le(ckpt.optimizer.lr);
    out.put_u64_le(ckpt.optimizer.step_count);
    out.put_u64_le(ckpt.optimizer.slots.len() as u64);
    for (slot, tensors) in &ckpt.optimizer.slots {
        put_string(&mut out, slot);
        put_named_tensors(&mut out, tensors);
    }
    // Freezer.
    match &ckpt.freezer {
        None => out.put_u8(0),
        Some(f) => {
            out.put_u8(1);
            out.put_u64_le(f.front as u64);
            put_opt_f32(&mut out, f.lr_at_first_freeze);
            put_bool(&mut out, f.relaxed);
            out.put_u64_le(f.evaluations as u64);
            out.put_u64_le(f.events.len() as u64);
            for (at, ev) in &f.events {
                out.put_u64_le(*at as u64);
                match ev {
                    FreezeEvent::None => out.put_u8(0),
                    FreezeEvent::Froze(k) => {
                        out.put_u8(1);
                        out.put_u64_le(*k as u64);
                    }
                    FreezeEvent::Unfroze => out.put_u8(2),
                }
            }
            out.put_u64_le(f.trackers.len() as u64);
            for t in &f.trackers {
                put_tracker(&mut out, t);
            }
            if version >= 2 {
                put_policy_state(&mut out, &f.policy);
            }
        }
    }
    // Bootstrap.
    match &ckpt.bootstrap {
        None => out.put_u8(0),
        Some(b) => {
            out.put_u8(1);
            put_f32_vec(&mut out, &b.losses);
            put_bool(&mut out, b.done);
        }
    }
    // Reference.
    match &ckpt.reference {
        None => out.put_u8(0),
        Some(r) => {
            out.put_u8(1);
            put_named_tensors(&mut out, &r.params);
            out.put_u64_le(r.state_buffers.len() as u64);
            for t in &r.state_buffers {
                put_tensor(&mut out, t);
            }
        }
    }
    // Report accumulators.
    out.put_u64_le(ckpt.epochs.len() as u64);
    for e in &ckpt.epochs {
        out.put_u64_le(e.epoch as u64);
        out.put_f32_le(e.train_loss);
        put_opt_f32(&mut out, e.val_loss);
        put_opt_f32(&mut out, e.val_metric);
        out.put_f32_le(e.lr);
        out.put_u64_le(e.frozen_prefix as u64);
        out.put_f32_le(e.active_param_fraction);
    }
    out.put_u64_le(ckpt.iterations.len() as u64);
    for i in &ckpt.iterations {
        out.put_u32_le(i.epoch);
        out.put_u32_le(i.frozen_prefix as u32);
        put_bool(&mut out, i.fp_cached);
    }
    out.put_u64_le(ckpt.plasticity.len() as u64);
    for p in &ckpt.plasticity {
        out.put_u64_le(p.iteration as u64);
        out.put_u64_le(p.module as u64);
        out.put_f32_le(p.raw);
        out.put_f32_le(p.smoothed);
    }
    out.put_u64_le(ckpt.events.len() as u64);
    for e in &ckpt.events {
        out.put_u64_le(e.iteration as u64);
        put_string(&mut out, &e.kind);
        out.put_u64_le(e.prefix as u64);
    }
    out.put_u64_le(ckpt.input_bytes);
    if version >= 3 {
        put_string(&mut out, &ckpt.cache_store);
    }
    out
}

// ---------------------------------------------------------------------------
// Payload decoding (bounds-checked; corruption surfaces as Err, never panic)
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn corrupt(what: &str) -> TensorError {
        TensorError::Corrupt(format!("checkpoint payload truncated at {what}"))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Self::corrupt(what));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn bool(&mut self, what: &str) -> Result<bool> {
        Ok(self.u8(what)? != 0)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self, what: &str) -> Result<f32> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A length field used to pre-allocate: capped by the bytes actually
    /// remaining so a corrupt length cannot trigger a huge allocation.
    fn len(&mut self, what: &str) -> Result<usize> {
        let n = self.u64(what)? as usize;
        if n > self.buf.len() {
            return Err(Self::corrupt(what));
        }
        Ok(n)
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TensorError::Corrupt(format!("invalid utf-8 in {what}")))
    }

    fn opt_f32(&mut self, what: &str) -> Result<Option<f32>> {
        Ok(match self.u8(what)? {
            0 => None,
            _ => Some(self.f32(what)?),
        })
    }

    fn f32_vec(&mut self, what: &str) -> Result<Vec<f32>> {
        let n = self.len(what)?;
        let mut v = Vec::with_capacity(n.min(self.buf.len() / 4 + 1));
        for _ in 0..n {
            v.push(self.f32(what)?);
        }
        Ok(v)
    }

    fn tensor(&mut self, what: &str) -> Result<Tensor> {
        let n = self.u64(what)? as usize;
        let bytes = self.take(n, what)?;
        serialize::from_bytes(bytes)
    }

    fn named_tensors(&mut self, what: &str) -> Result<Vec<(String, Tensor)>> {
        let n = self.len(what)?;
        let mut v = Vec::new();
        for _ in 0..n {
            let name = self.string(what)?;
            let t = self.tensor(what)?;
            v.push((name, t));
        }
        Ok(v)
    }

    fn tracker(&mut self) -> Result<TrackerSnapshot> {
        Ok(TrackerSnapshot {
            raw: self.f32_vec("tracker.raw")?,
            smoothed: self.f32_vec("tracker.smoothed")?,
            stale: self.u64("tracker.stale")? as usize,
            w: self.u64("tracker.w")? as usize,
            s: self.u64("tracker.s")? as usize,
            t: self.f32("tracker.t")?,
        })
    }

    fn policy_state(&mut self) -> Result<PolicyState> {
        let kind = self.string("policy.kind")?;
        let version = self.u32("policy.version")?;
        let scalars = self.f32_vec("policy.scalars")?;
        let n = self.len("policy.counters")?;
        let mut counters = Vec::new();
        for _ in 0..n {
            counters.push(self.u64("policy.counter")?);
        }
        Ok(PolicyState {
            kind,
            version,
            scalars,
            counters,
        })
    }
}

fn decode_payload(payload: &[u8], version: u8) -> Result<TrainerCheckpoint> {
    let mut r = Reader { buf: payload };
    let model_name = r.string("model_name")?;
    let next_epoch = r.u64("next_epoch")?;
    let global_step = r.u64("global_step")?;
    let evals_since_ref_update = r.u64("evals_since_ref_update")?;
    let frozen_prefix = r.u64("frozen_prefix")?;
    let params = r.named_tensors("params")?;
    let n_bufs = r.len("state_buffers")?;
    let mut state_buffers = Vec::new();
    for _ in 0..n_bufs {
        state_buffers.push(r.tensor("state_buffer")?);
    }
    let kind = r.string("optimizer.kind")?;
    let lr = r.f32("optimizer.lr")?;
    let step_count = r.u64("optimizer.step_count")?;
    let n_slots = r.len("optimizer.slots")?;
    let mut slots = Vec::new();
    for _ in 0..n_slots {
        let slot = r.string("optimizer.slot")?;
        let tensors = r.named_tensors("optimizer.slot_tensors")?;
        slots.push((slot, tensors));
    }
    let optimizer = OptimizerState {
        kind,
        lr,
        step_count,
        slots,
    };
    let freezer = match r.u8("freezer.tag")? {
        0 => None,
        _ => {
            let front = r.u64("freezer.front")? as usize;
            let lr_at_first_freeze = r.opt_f32("freezer.lr_at_first_freeze")?;
            let relaxed = r.bool("freezer.relaxed")?;
            let evaluations = r.u64("freezer.evaluations")? as usize;
            let n_events = r.len("freezer.events")?;
            let mut events = Vec::new();
            for _ in 0..n_events {
                let at = r.u64("freezer.event.at")? as usize;
                let ev = match r.u8("freezer.event.kind")? {
                    0 => FreezeEvent::None,
                    1 => FreezeEvent::Froze(r.u64("freezer.event.k")? as usize),
                    2 => FreezeEvent::Unfroze,
                    other => {
                        return Err(TensorError::Corrupt(format!(
                            "unknown freeze event tag {other}"
                        )))
                    }
                };
                events.push((at, ev));
            }
            let n_trackers = r.len("freezer.trackers")?;
            let mut trackers = Vec::new();
            for _ in 0..n_trackers {
                trackers.push(r.tracker()?);
            }
            // v1 predates the policy framework; those runs were always
            // paper-policy driven, so the upgrade is lossless.
            let policy = if version >= 2 {
                r.policy_state()?
            } else {
                PolicyState::legacy()
            };
            Some(FreezerSnapshot {
                front,
                lr_at_first_freeze,
                relaxed,
                evaluations,
                events,
                trackers,
                policy,
            })
        }
    };
    let bootstrap = match r.u8("bootstrap.tag")? {
        0 => None,
        _ => Some(BootstrapSnapshot {
            losses: r.f32_vec("bootstrap.losses")?,
            done: r.bool("bootstrap.done")?,
        }),
    };
    let reference = match r.u8("reference.tag")? {
        0 => None,
        _ => {
            let params = r.named_tensors("reference.params")?;
            let n = r.len("reference.state_buffers")?;
            let mut state_buffers = Vec::new();
            for _ in 0..n {
                state_buffers.push(r.tensor("reference.state_buffer")?);
            }
            Some(ReferenceSnapshot {
                params,
                state_buffers,
            })
        }
    };
    let n_epochs = r.len("epochs")?;
    let mut epochs = Vec::new();
    for _ in 0..n_epochs {
        epochs.push(EpochRecord {
            epoch: r.u64("epoch.epoch")? as usize,
            train_loss: r.f32("epoch.train_loss")?,
            val_loss: r.opt_f32("epoch.val_loss")?,
            val_metric: r.opt_f32("epoch.val_metric")?,
            lr: r.f32("epoch.lr")?,
            frozen_prefix: r.u64("epoch.frozen_prefix")? as usize,
            active_param_fraction: r.f32("epoch.active_param_fraction")?,
        });
    }
    let n_iters = r.len("iterations")?;
    let mut iterations = Vec::new();
    for _ in 0..n_iters {
        iterations.push(IterationRecord {
            epoch: r.u32("iter.epoch")?,
            frozen_prefix: r.u32("iter.frozen_prefix")? as u16,
            fp_cached: r.bool("iter.fp_cached")?,
        });
    }
    let n_plast = r.len("plasticity")?;
    let mut plasticity = Vec::new();
    for _ in 0..n_plast {
        plasticity.push(PlasticityPoint {
            iteration: r.u64("plast.iteration")? as usize,
            module: r.u64("plast.module")? as usize,
            raw: r.f32("plast.raw")?,
            smoothed: r.f32("plast.smoothed")?,
        });
    }
    let n_events = r.len("events")?;
    let mut events = Vec::new();
    for _ in 0..n_events {
        events.push(EventRecord {
            iteration: r.u64("event.iteration")? as usize,
            kind: r.string("event.kind")?,
            prefix: r.u64("event.prefix")? as usize,
        });
    }
    let input_bytes = r.u64("input_bytes")?;
    // v≤2 predates the chunked backend; those runs were always flat.
    let cache_store = if version >= 3 {
        r.string("cache_store")?
    } else {
        "flat".to_string()
    };
    if !r.buf.is_empty() {
        return Err(TensorError::Corrupt(format!(
            "{} trailing bytes after checkpoint payload",
            r.buf.len()
        )));
    }
    Ok(TrainerCheckpoint {
        model_name,
        next_epoch,
        global_step,
        evals_since_ref_update,
        frozen_prefix,
        params,
        state_buffers,
        optimizer,
        freezer,
        bootstrap,
        reference,
        epochs,
        iterations,
        plasticity,
        events,
        input_bytes,
        cache_store,
    })
}

/// Serializes a checkpoint into the versioned, checksummed container.
pub fn to_bytes(ckpt: &TrainerCheckpoint) -> Vec<u8> {
    to_bytes_versioned(ckpt, FORMAT_VERSION)
}

/// Serializes with an explicit container version (old versions drop the
/// fields they predate). Only the current version is written in production;
/// this exists so backward-compat decoding stays testable.
fn to_bytes_versioned(ckpt: &TrainerCheckpoint, version: u8) -> Vec<u8> {
    let payload = encode_payload(ckpt, version);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.put_u32_le(MAGIC);
    out.put_u8(version);
    out.put_u64_le(payload.len() as u64);
    out.put_u32_le(serialize::crc32(&payload));
    out.put_slice(&payload);
    out
}

/// Deserializes a checkpoint, validating magic, version, length, and CRC
/// before interpreting any payload byte.
pub fn from_bytes(buf: &[u8]) -> Result<TrainerCheckpoint> {
    let mut r = Reader { buf };
    if buf.len() < HEADER_LEN {
        return Err(TensorError::Corrupt(
            "checkpoint shorter than header".into(),
        ));
    }
    let magic = r.u32("magic")?;
    if magic != MAGIC {
        return Err(TensorError::Corrupt(format!(
            "bad checkpoint magic {magic:#x}"
        )));
    }
    let version = r.u8("version")?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(TensorError::Corrupt(format!(
            "unsupported checkpoint version {version} \
             (expected {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
        )));
    }
    let payload_len = r.u64("payload_len")?;
    let expected_crc = r.u32("crc32")?;
    if r.buf.len() as u64 != payload_len {
        return Err(TensorError::Corrupt(format!(
            "checkpoint payload is {} bytes, header declares {}",
            r.buf.len(),
            payload_len
        )));
    }
    let actual_crc = serialize::crc32(r.buf);
    if actual_crc != expected_crc {
        return Err(TensorError::Corrupt(format!(
            "checkpoint checksum mismatch: stored {expected_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    decode_payload(r.buf, version)
}

/// Manages a directory of rolling checkpoints.
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    faults: Option<Arc<FaultInjector>>,
    /// Save failures survived so far (degradation counter).
    pub save_errors: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            keep: keep.max(1),
            faults: None,
            save_errors: 0,
        })
    }

    /// Attaches a fault injector (testing).
    pub fn with_faults(mut self, faults: Option<Arc<FaultInjector>>) -> Self {
        self.faults = faults;
        self
    }

    fn path_of(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{epoch:08}.egck"))
    }

    /// Epochs that currently have a checkpoint file, ascending.
    pub fn saved_epochs(&self) -> Vec<u64> {
        let mut epochs: Vec<u64> = match fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .flatten()
                .filter_map(|e| parse_epoch(&e.path()))
                .collect(),
            Err(_) => Vec::new(),
        };
        epochs.sort_unstable();
        epochs
    }

    /// Atomically writes a checkpoint for the epoch it covers
    /// (`next_epoch − 1`), then prunes beyond the retention window.
    ///
    /// A *failed* save still leaves the directory invariants intact: its
    /// temp file is removed, stale `.egck.tmp` leftovers (a crashed
    /// earlier process) are swept, and keep-N retention is re-enforced —
    /// repeated failures must not grow the directory.
    pub fn save(&mut self, ckpt: &TrainerCheckpoint) -> Result<PathBuf> {
        let epoch = ckpt.next_epoch.saturating_sub(1);
        let mut bytes = to_bytes(ckpt);
        // The injected failure fires *after* the temp file exists (below),
        // so tests exercise the cleanup path a real mid-write error takes.
        let mut injected_fail = false;
        match self.faults.as_ref().and_then(|f| f.check(FaultSite::CheckpointWrite)) {
            Some(FaultAction::Fail) => injected_fail = true,
            Some(FaultAction::CorruptBytes) if bytes.len() > HEADER_LEN => {
                // Corrupt the payload region so the CRC check trips on load.
                let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
                bytes[mid] ^= 0x20;
            }
            _ => {}
        }
        let final_path = self.path_of(epoch);
        let tmp_path = final_path.with_extension("egck.tmp");
        let written = write_and_rename(&bytes, &tmp_path, &final_path, injected_fail);
        if written.is_err() {
            let _ = fs::remove_file(&tmp_path);
        }
        self.sweep_stale_tmp();
        self.prune();
        written?;
        Ok(final_path)
    }

    /// Removes leftover `.egck.tmp` files (a crash between create and
    /// rename, or an earlier process that died mid-save).
    fn sweep_stale_tmp(&self) {
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let path = e.path();
                let is_tmp = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.ends_with(".egck.tmp"))
                    .unwrap_or(false);
                if is_tmp {
                    let _ = fs::remove_file(&path);
                }
            }
        }
    }

    /// Retention: drop the oldest checkpoint files beyond `keep`.
    fn prune(&self) {
        let epochs = self.saved_epochs();
        if epochs.len() > self.keep {
            for &old in &epochs[..epochs.len() - self.keep] {
                let _ = fs::remove_file(self.path_of(old));
            }
        }
    }

    /// Loads the newest valid checkpoint, skipping (and reporting) corrupt
    /// or unreadable files. Returns `None` when no valid checkpoint exists.
    pub fn load_latest(&self) -> Option<TrainerCheckpoint> {
        let mut epochs = self.saved_epochs();
        epochs.reverse();
        for epoch in epochs {
            let path = self.path_of(epoch);
            match self.load_file(&path) {
                Ok(ckpt) => return Some(ckpt),
                Err(e) => {
                    eprintln!(
                        "egeria: skipping checkpoint {}: {e}",
                        path.display()
                    );
                }
            }
        }
        None
    }

    fn load_file(&self, path: &Path) -> Result<TrainerCheckpoint> {
        let mut bytes = fs::read(path)?;
        if let Some(FaultAction::CorruptBytes) = self
            .faults
            .as_ref()
            .and_then(|f| f.check(FaultSite::CheckpointRead))
        {
            FaultInjector::corrupt(&mut bytes);
        }
        from_bytes(&bytes)
    }
}

/// Create-write-fsync-rename, failing (after the temp file exists) when
/// the injected fault fired — so error handling covers the same states a
/// real mid-write failure leaves behind.
fn write_and_rename(
    bytes: &[u8],
    tmp_path: &Path,
    final_path: &Path,
    injected_fail: bool,
) -> Result<()> {
    let mut f = fs::File::create(tmp_path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if injected_fail {
        return Err(TensorError::Io("injected checkpoint write failure".into()));
    }
    fs::rename(tmp_path, final_path)?;
    Ok(())
}

fn parse_epoch(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".egck")?;
    rest.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_checkpoint() -> TrainerCheckpoint {
        TrainerCheckpoint {
            model_name: "toy".into(),
            next_epoch: 3,
            global_step: 12,
            evals_since_ref_update: 2,
            frozen_prefix: 1,
            params: vec![
                ("w".into(), Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap()),
                ("b".into(), Tensor::scalar(0.5)),
            ],
            state_buffers: vec![Tensor::ones(&[2])],
            optimizer: OptimizerState {
                kind: "sgd".into(),
                lr: 0.05,
                step_count: 12,
                slots: vec![(
                    "velocity".into(),
                    vec![("w".into(), Tensor::zeros(&[2]))],
                )],
            },
            freezer: Some(FreezerSnapshot {
                front: 1,
                lr_at_first_freeze: Some(0.05),
                relaxed: false,
                evaluations: 6,
                events: vec![(4, FreezeEvent::Froze(1)), (6, FreezeEvent::Unfroze)],
                trackers: vec![TrackerSnapshot {
                    raw: vec![0.5, 0.4],
                    smoothed: vec![0.5, 0.45],
                    stale: 1,
                    w: 3,
                    s: 2,
                    t: 1.0,
                }],
                policy: PolicyState {
                    kind: "regression".into(),
                    version: 1,
                    scalars: vec![0.4],
                    counters: vec![1, 7, 0],
                },
            }),
            bootstrap: Some(BootstrapSnapshot {
                losses: vec![2.0, 1.0, 0.9],
                done: true,
            }),
            reference: Some(ReferenceSnapshot {
                params: vec![("w".into(), Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap())],
                state_buffers: vec![],
            }),
            epochs: vec![EpochRecord {
                epoch: 0,
                train_loss: 1.5,
                val_loss: Some(1.6),
                val_metric: None,
                lr: 0.05,
                frozen_prefix: 0,
                active_param_fraction: 1.0,
            }],
            iterations: vec![IterationRecord {
                epoch: 0,
                frozen_prefix: 0,
                fp_cached: false,
            }],
            plasticity: vec![PlasticityPoint {
                iteration: 4,
                module: 0,
                raw: 0.5,
                smoothed: 0.5,
            }],
            events: vec![EventRecord {
                iteration: 4,
                kind: "freeze".into(),
                prefix: 1,
            }],
            input_bytes: 4096,
            cache_store: "chunked".into(),
        }
    }

    fn assert_round_trip(a: &TrainerCheckpoint, b: &TrainerCheckpoint) {
        assert_eq!(a.model_name, b.model_name);
        assert_eq!(a.next_epoch, b.next_epoch);
        assert_eq!(a.global_step, b.global_step);
        assert_eq!(a.frozen_prefix, b.frozen_prefix);
        assert_eq!(a.params.len(), b.params.len());
        for ((na, ta), (nb, tb)) in a.params.iter().zip(b.params.iter()) {
            assert_eq!(na, nb);
            assert_eq!(ta, tb);
        }
        assert_eq!(a.state_buffers, b.state_buffers);
        assert_eq!(a.optimizer.kind, b.optimizer.kind);
        assert_eq!(a.optimizer.step_count, b.optimizer.step_count);
        assert_eq!(a.freezer, b.freezer);
        assert_eq!(a.bootstrap, b.bootstrap);
        assert_eq!(
            a.reference.as_ref().map(|r| r.params.len()),
            b.reference.as_ref().map(|r| r.params.len())
        );
        assert_eq!(a.epochs.len(), b.epochs.len());
        assert_eq!(a.iterations.len(), b.iterations.len());
        assert_eq!(a.plasticity.len(), b.plasticity.len());
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.input_bytes, b.input_bytes);
        assert_eq!(a.cache_store, b.cache_store);
    }

    #[test]
    fn round_trip_is_exact() {
        let c = tiny_checkpoint();
        let back = from_bytes(&to_bytes(&c)).unwrap();
        assert_round_trip(&c, &back);
    }

    #[test]
    fn format_v1_checkpoints_decode_with_legacy_policy_state() {
        let c = tiny_checkpoint();
        let v1_bytes = to_bytes_versioned(&c, 1);
        let back = from_bytes(&v1_bytes).unwrap();
        // Everything except the policy block survives; the freezer state
        // upgrades with the legacy (paper, version-0) policy state.
        assert_eq!(back.model_name, c.model_name);
        let f = back.freezer.expect("freezer section survives");
        let orig = c.freezer.unwrap();
        assert_eq!(f.front, orig.front);
        assert_eq!(f.events, orig.events);
        assert_eq!(f.trackers, orig.trackers);
        assert_eq!(f.policy, PolicyState::legacy());
    }

    #[test]
    fn format_v2_checkpoints_decode_as_flat_cache_store() {
        let c = tiny_checkpoint();
        let v2_bytes = to_bytes_versioned(&c, 2);
        let back = from_bytes(&v2_bytes).unwrap();
        // Everything up to the v3 field survives; the backend kind
        // upgrades to the only one v2 runs could have used.
        assert_eq!(back.model_name, c.model_name);
        assert_eq!(back.freezer, c.freezer);
        assert_eq!(back.input_bytes, c.input_bytes);
        assert_eq!(back.cache_store, "flat");
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let bytes = to_bytes_versioned(&tiny_checkpoint(), FORMAT_VERSION + 1);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = to_bytes(&tiny_checkpoint());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x08;
            assert!(
                from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = to_bytes(&tiny_checkpoint());
        for keep in 0..bytes.len() {
            assert!(
                from_bytes(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "egeria_ckpt_test_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_saves_and_loads_latest() {
        let mut store = CheckpointStore::open(tmp_dir("latest"), 3).unwrap();
        let mut c = tiny_checkpoint();
        for epoch in 1..=4u64 {
            c.next_epoch = epoch;
            store.save(&c).unwrap();
        }
        let latest = store.load_latest().unwrap();
        assert_eq!(latest.next_epoch, 4);
    }

    #[test]
    fn retention_prunes_oldest() {
        let mut store = CheckpointStore::open(tmp_dir("prune"), 2).unwrap();
        let mut c = tiny_checkpoint();
        for epoch in 1..=5u64 {
            c.next_epoch = epoch;
            store.save(&c).unwrap();
        }
        assert_eq!(store.saved_epochs(), vec![3, 4]);
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        let mut c = tiny_checkpoint();
        c.next_epoch = 1;
        store.save(&c).unwrap();
        c.next_epoch = 2;
        let latest_path = store.save(&c).unwrap();
        // Flip a payload byte of the newest file on disk.
        let mut bytes = fs::read(&latest_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&latest_path, &bytes).unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.next_epoch, 1, "must fall back past the corrupt file");
    }

    #[test]
    fn truncated_latest_falls_back_to_previous() {
        let dir = tmp_dir("truncated");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        let mut c = tiny_checkpoint();
        c.next_epoch = 1;
        store.save(&c).unwrap();
        c.next_epoch = 2;
        let latest_path = store.save(&c).unwrap();
        let bytes = fs::read(&latest_path).unwrap();
        fs::write(&latest_path, &bytes[..bytes.len() / 3]).unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.next_epoch, 1);
    }

    #[test]
    fn injected_write_failure_surfaces_as_io_error() {
        let faults = FaultInjector::new();
        faults.arm(FaultSite::CheckpointWrite, 0, 1, FaultAction::Fail);
        let mut store = CheckpointStore::open(tmp_dir("wfail"), 3)
            .unwrap()
            .with_faults(Some(faults.clone()));
        let err = store.save(&tiny_checkpoint()).unwrap_err();
        assert!(matches!(err, TensorError::Io(_)));
        // The next save (fault window exhausted) succeeds.
        assert!(store.save(&tiny_checkpoint()).is_ok());
    }

    #[test]
    fn injected_corruption_is_caught_on_load() {
        let faults = FaultInjector::new();
        faults.arm(FaultSite::CheckpointWrite, 1, 1, FaultAction::CorruptBytes);
        let mut store = CheckpointStore::open(tmp_dir("wcorrupt"), 3)
            .unwrap()
            .with_faults(Some(faults.clone()));
        let mut c = tiny_checkpoint();
        c.next_epoch = 1;
        store.save(&c).unwrap(); // clean
        c.next_epoch = 2;
        store.save(&c).unwrap(); // corrupted on the way to disk
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.next_epoch, 1, "corrupt save must be skipped");
    }

    #[test]
    fn repeated_failed_saves_leak_no_temp_files_and_keep_retention() {
        let dir = tmp_dir("noleak");
        let faults = FaultInjector::new();
        let mut store = CheckpointStore::open(&dir, 2)
            .unwrap()
            .with_faults(Some(faults.clone()));
        let mut c = tiny_checkpoint();
        // Seed three good saves: keep=2 retains epochs 1 and 2.
        for epoch in 1..=3u64 {
            c.next_epoch = epoch;
            store.save(&c).unwrap();
        }
        assert_eq!(store.saved_epochs(), vec![1, 2]);
        // Four consecutive failed saves must not grow the directory: no
        // temp files leak and the retention window is unchanged.
        faults.arm(FaultSite::CheckpointWrite, 0, 4, FaultAction::Fail);
        for epoch in 4..=7u64 {
            c.next_epoch = epoch;
            assert!(store.save(&c).is_err());
        }
        let entries: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().into_string().unwrap())
            .collect();
        assert!(
            entries.iter().all(|n| !n.ends_with(".tmp")),
            "leaked temp files: {entries:?}"
        );
        assert_eq!(entries.len(), 2, "directory grew: {entries:?}");
        assert_eq!(store.saved_epochs(), vec![1, 2]);
        // A stale tmp from a crashed earlier process is swept by the next
        // save, which also succeeds (the fault window is exhausted).
        fs::write(dir.join("ckpt-99999999.egck.tmp"), b"junk").unwrap();
        c.next_epoch = 8;
        store.save(&c).unwrap();
        assert!(!dir.join("ckpt-99999999.egck.tmp").exists());
        assert_eq!(store.saved_epochs(), vec![2, 7]);
    }

    #[test]
    fn empty_store_loads_nothing() {
        let store = CheckpointStore::open(tmp_dir("empty"), 3).unwrap();
        assert!(store.load_latest().is_none());
    }
}
