//! Asynchronous controller/worker plasticity evaluation (§4.1.1–§4.1.2).
//!
//! The worker (training loop) puts the data batch in the **input queue
//! (IQ)** and the hooked training activation in the **training output queue
//! (TOQ)**, then continues training without blocking. The controller thread
//! polls IQ, runs the reference model forward (gated on CPU load), puts the
//! reference activation in the **reference output queue (ROQ)**, then pairs
//! ROQ with TOQ to compute the plasticity value, which flows back to the
//! worker on a decision channel. All three queues are
//! single-producer/single-consumer, exactly as in Figure 6.

use crate::faults::{FaultInjector, FaultSite};
use crate::reference::ReferenceManager;
use egeria_analysis::sp_loss;
use egeria_models::{Batch, Model};
use egeria_obs::Telemetry;
use egeria_tensor::Tensor;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A plasticity evaluation request (what goes into IQ).
struct EvalRequest {
    eval_id: u64,
    module: usize,
    batch: Batch,
}

/// A completed plasticity evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlasticityResult {
    /// Ticket from [`AsyncController::submit`].
    pub eval_id: u64,
    /// Module the evaluation covered.
    pub module: usize,
    /// The SP-loss plasticity value, or `None` if the evaluation was
    /// dropped (CPU gate or reference error).
    pub value: Option<f32>,
}

/// Controller commands multiplexed with IQ on the controller thread.
enum Command {
    Eval(EvalRequest),
    UpdateReference(Box<dyn Model>),
    Shutdown,
}

/// A function reporting current CPU load as a fraction of capacity.
pub type LoadProbe = Arc<dyn Fn() -> f32 + Send + Sync>;

/// Reads the 1-minute load average normalized by core count; 0.0 on
/// platforms without `/proc/loadavg`.
pub fn system_load_probe() -> LoadProbe {
    Arc::new(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as f32;
        std::fs::read_to_string("/proc/loadavg")
            .ok()
            .and_then(|s| s.split_whitespace().next().and_then(|v| v.parse::<f32>().ok()))
            .map(|load| load / cores)
            .unwrap_or(0.0)
    })
}

/// The worker-side handle to the controller thread.
///
/// The senders are `Option` so [`Drop`] can close the queues explicitly:
/// once both are dropped, every `recv` on the controller thread errors out
/// and the loop exits even if the command queue was full.
pub struct AsyncController {
    cmd_tx: Option<Sender<Command>>,
    toq_tx: Option<Sender<(u64, Tensor)>>,
    result_rx: Receiver<PlasticityResult>,
    handle: Option<JoinHandle<()>>,
    next_eval: u64,
}

impl AsyncController {
    /// Spawns the controller thread around a reference manager.
    ///
    /// `gate` is the CPU-load fraction above which reference execution is
    /// skipped (§4.1.2 uses 50%); `probe` supplies the load reading.
    pub fn spawn(reference: ReferenceManager, gate: f32, probe: LoadProbe) -> Self {
        Self::spawn_with_faults(reference, gate, probe, None)
    }

    /// [`AsyncController::spawn`] with an attached fault injector: an armed
    /// [`FaultSite::ControllerEval`] kills the controller thread mid-eval
    /// (before any result is sent), the way a panic in the reference
    /// forward would.
    pub fn spawn_with_faults(
        reference: ReferenceManager,
        gate: f32,
        probe: LoadProbe,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self {
        Self::spawn_with_telemetry(reference, gate, probe, faults, Telemetry::disabled())
    }

    /// [`AsyncController::spawn_with_faults`] with an attached telemetry
    /// handle: the controller thread counts `controller.evals`,
    /// `controller.gated`, `controller.errors`, and
    /// `controller.ref_updates` into the shared registry.
    pub fn spawn_with_telemetry(
        mut reference: ReferenceManager,
        gate: f32,
        probe: LoadProbe,
        faults: Option<Arc<FaultInjector>>,
        telemetry: Telemetry,
    ) -> Self {
        let c_evals = telemetry.counter("controller.evals");
        let c_gated = telemetry.counter("controller.gated");
        let c_errors = telemetry.counter("controller.errors");
        let c_updates = telemetry.counter("controller.ref_updates");
        reference.set_telemetry(telemetry);
        let (cmd_tx, cmd_rx) = bounded::<Command>(32);
        let (toq_tx, toq_rx) = bounded::<(u64, Tensor)>(32);
        // ROQ lives entirely on the controller thread but is a real queue
        // to keep the dataflow of Figure 6 explicit.
        let (roq_tx, roq_rx) = bounded::<(u64, usize, Tensor)>(32);
        let (result_tx, result_rx) = bounded::<PlasticityResult>(64);
        let handle = std::thread::spawn(move || {
            while let Ok(cmd) = cmd_rx.recv() {
                match cmd {
                    Command::Shutdown => break,
                    Command::UpdateReference(snapshot) => {
                        let _ = reference.generate(snapshot.as_ref());
                        c_updates.inc();
                    }
                    Command::Eval(req) => {
                        c_evals.inc();
                        if faults
                            .as_ref()
                            .map(|f| f.should_fail(FaultSite::ControllerEval))
                            .unwrap_or(false)
                        {
                            // Simulated controller crash: die mid-eval
                            // without replying. The worker-side watchdog
                            // must notice and respawn.
                            return;
                        }
                        // (2a) Reference forward, gated on CPU load.
                        if probe() > gate {
                            c_gated.inc();
                            let _ = result_tx.send(PlasticityResult {
                                eval_id: req.eval_id,
                                module: req.module,
                                value: None,
                            });
                            // Drain the matching TOQ entry so pairing stays
                            // aligned.
                            let _ = toq_rx.recv();
                            continue;
                        }
                        match reference.capture(&req.batch, req.module) {
                            Ok(act) => {
                                let _ = roq_tx.send((req.eval_id, req.module, act));
                            }
                            Err(_) => {
                                c_errors.inc();
                                let _ = result_tx.send(PlasticityResult {
                                    eval_id: req.eval_id,
                                    module: req.module,
                                    value: None,
                                });
                                let _ = toq_rx.recv();
                                continue;
                            }
                        }
                        // (3) Pair ROQ with TOQ and compute plasticity.
                        if let (Ok((rid, module, a_ref)), Ok((tid, a_train))) =
                            (roq_rx.recv(), toq_rx.recv())
                        {
                            debug_assert_eq!(rid, tid, "SPSC queues must stay aligned");
                            let value = sp_loss(&a_train, &a_ref).ok();
                            let _ = result_tx.send(PlasticityResult {
                                eval_id: rid,
                                module,
                                value,
                            });
                        }
                    }
                }
            }
        });
        AsyncController {
            cmd_tx: Some(cmd_tx),
            toq_tx: Some(toq_tx),
            result_rx,
            handle: Some(handle),
            next_eval: 0,
        }
    }

    /// Whether the controller thread is still running. `false` after the
    /// thread died (panic, injected fault) — the worker should respawn.
    pub fn is_alive(&self) -> bool {
        self.handle
            .as_ref()
            .map(|h| !h.is_finished())
            .unwrap_or(false)
    }

    /// Submits a plasticity evaluation: the batch goes to IQ, the hooked
    /// training activation to TOQ. Returns the ticket id, or `None` if the
    /// queues are full (the evaluation is skipped rather than blocking
    /// training).
    pub fn submit(&mut self, batch: Batch, module: usize, train_act: Tensor) -> Option<u64> {
        if !self.is_alive() {
            return None; // Dead thread: nothing will drain the queues.
        }
        let eval_id = self.next_eval;
        let req = Command::Eval(EvalRequest {
            eval_id,
            module,
            batch,
        });
        if self.cmd_tx.as_ref()?.try_send(req).is_err() {
            return None;
        }
        // TOQ capacity matches IQ, so this send succeeds whenever the IQ
        // send did; a full TOQ here would desynchronize pairing, so block.
        if let Some(toq) = &self.toq_tx {
            let _ = toq.send((eval_id, train_act));
        }
        self.next_eval += 1;
        Some(eval_id)
    }

    /// Ships a fresh training snapshot for reference regeneration.
    pub fn update_reference(&self, snapshot: Box<dyn Model>) {
        if let Some(tx) = &self.cmd_tx {
            let _ = tx.try_send(Command::UpdateReference(snapshot));
        }
    }

    /// Drains all completed plasticity results without blocking.
    pub fn poll_results(&self) -> Vec<PlasticityResult> {
        let mut out = Vec::new();
        while let Ok(r) = self.result_rx.try_recv() {
            out.push(r);
        }
        out
    }

    /// Blocks until a specific evaluation completes (test helper).
    pub fn wait_for(&self, eval_id: u64) -> Option<PlasticityResult> {
        loop {
            match self.result_rx.recv() {
                Ok(r) if r.eval_id == eval_id => return Some(r),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }
}

impl Drop for AsyncController {
    /// Bounded shutdown: never hangs, even if the controller thread is
    /// stuck or already dead with full queues.
    fn drop(&mut self) {
        if let Some(tx) = &self.cmd_tx {
            // Best effort; a full queue is fine because closing the
            // channels below also terminates the loop.
            let _ = tx.try_send(Command::Shutdown);
        }
        // Close IQ and TOQ so every blocked `recv` on the controller thread
        // errors out instead of waiting forever.
        self.cmd_tx = None;
        self.toq_tx = None;
        if let Some(h) = self.handle.take() {
            let deadline = Instant::now() + Duration::from_secs(2);
            while !h.is_finished() && Instant::now() < deadline {
                // Keep draining results: a controller blocked publishing
                // into a full result queue can only observe the closed
                // command channel once its pending send completes, so a
                // wait without a drain here turned every such drop into
                // the full timeout plus a leaked thread.
                while self.result_rx.try_recv().is_ok() {}
                std::thread::sleep(Duration::from_millis(2));
            }
            if h.is_finished() {
                let _ = h.join();
            } else {
                // Detach rather than deadlock the training process.
                eprintln!("egeria: controller thread unresponsive at shutdown; detaching");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EgeriaConfig;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_models::{Input, Targets};
    use egeria_tensor::Rng;

    fn setup() -> (Box<dyn Model>, Batch) {
        let m = resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            1,
        );
        let mut rng = Rng::new(2);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[2, 3, 8, 8], &mut rng)),
            targets: Targets::Classes(vec![0, 1]),
            sample_ids: vec![0, 1],
        };
        (Box::new(m), batch)
    }

    fn always_idle() -> LoadProbe {
        Arc::new(|| 0.0)
    }

    fn always_busy() -> LoadProbe {
        Arc::new(|| 1.0)
    }

    #[test]
    fn async_evaluation_returns_plasticity() {
        let (mut model, batch) = setup();
        let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
        refmgr.generate(model.as_ref()).unwrap();
        let mut ctrl = AsyncController::spawn(refmgr, 0.5, always_idle());
        let act = model.capture_activation(&batch, 0).unwrap();
        let id = ctrl.submit(batch, 0, act).unwrap();
        let r = ctrl.wait_for(id).unwrap();
        let v = r.value.expect("evaluation must succeed when idle");
        // Int8 reference on the same weights: small but positive SP loss.
        assert!((0.0..1.0).contains(&v), "plasticity {v}");
    }

    #[test]
    fn cpu_gate_skips_evaluation() {
        let (mut model, batch) = setup();
        let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
        refmgr.generate(model.as_ref()).unwrap();
        let mut ctrl = AsyncController::spawn(refmgr, 0.5, always_busy());
        let act = model.capture_activation(&batch, 0).unwrap();
        let id = ctrl.submit(batch, 0, act).unwrap();
        let r = ctrl.wait_for(id).unwrap();
        assert!(r.value.is_none(), "gated evaluation must be dropped");
    }

    #[test]
    fn reference_update_flows_through_the_queue() {
        let (mut model, batch) = setup();
        let mut refmgr = ReferenceManager::new(&EgeriaConfig {
            reference_precision: egeria_quant::Precision::F32,
            ..Default::default()
        });
        refmgr.generate(model.as_ref()).unwrap();
        let mut ctrl = AsyncController::spawn(refmgr, 0.5, always_idle());
        // Identical weights → plasticity ~ 0 with an f32 reference.
        let act = model.capture_activation(&batch, 0).unwrap();
        let id = ctrl.submit(batch.clone(), 0, act.clone()).unwrap();
        let before = ctrl.wait_for(id).unwrap().value.unwrap();
        assert!(before < 1e-8, "identical weights should give ~0, got {before}");
        // Perturb the model; the stale reference now disagrees.
        for p in model.params_mut() {
            p.value = p.value.add_scalar(0.1);
        }
        let act2 = model.capture_activation(&batch, 0).unwrap();
        let id2 = ctrl.submit(batch.clone(), 0, act2.clone()).unwrap();
        let stale = ctrl.wait_for(id2).unwrap().value.unwrap();
        assert!(stale > before);
        // Ship the new snapshot; plasticity returns to ~0.
        ctrl.update_reference(model.clone_boxed());
        let id3 = ctrl.submit(batch, 0, act2).unwrap();
        let fresh = ctrl.wait_for(id3).unwrap().value.unwrap();
        assert!(fresh < stale, "updated reference {fresh} vs stale {stale}");
    }

    #[test]
    fn poll_results_drains_without_blocking() {
        let (model, _) = setup();
        let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
        refmgr.generate(model.as_ref()).unwrap();
        let ctrl = AsyncController::spawn(refmgr, 0.5, always_idle());
        assert!(ctrl.poll_results().is_empty());
    }

    #[test]
    fn system_load_probe_reports_finite_fraction() {
        let probe = system_load_probe();
        let v = probe();
        assert!(v.is_finite() && v >= 0.0);
    }

    #[test]
    fn dropping_mid_eval_does_not_hang() {
        // Regression: the old Drop did a blocking send + unconditional
        // join, which could deadlock with in-flight evaluations. Queue up
        // work and drop immediately without draining any result.
        let (mut model, batch) = setup();
        let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
        refmgr.generate(model.as_ref()).unwrap();
        let mut ctrl = AsyncController::spawn(refmgr, 0.5, always_idle());
        let act = model.capture_activation(&batch, 0).unwrap();
        for _ in 0..8 {
            let _ = ctrl.submit(batch.clone(), 0, act.clone());
        }
        drop(ctrl); // Must return promptly (bounded wait, then detach).
    }

    #[test]
    fn injected_fault_kills_thread_and_is_detected() {
        let (mut model, batch) = setup();
        let mut refmgr = ReferenceManager::new(&EgeriaConfig::default());
        refmgr.generate(model.as_ref()).unwrap();
        let faults = FaultInjector::new();
        faults.arm(FaultSite::ControllerEval, 0, 1, crate::faults::FaultAction::Fail);
        let mut ctrl =
            AsyncController::spawn_with_faults(refmgr, 0.5, always_idle(), Some(faults.clone()));
        assert!(ctrl.is_alive());
        let act = model.capture_activation(&batch, 0).unwrap();
        ctrl.submit(batch.clone(), 0, act.clone()).unwrap();
        // The thread dies without replying; wait for it to wind down.
        let deadline = Instant::now() + Duration::from_secs(5);
        while ctrl.is_alive() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!ctrl.is_alive(), "controller must die on the injected fault");
        assert_eq!(faults.injected(FaultSite::ControllerEval), 1);
        // Submitting to a dead controller degrades to a skipped eval.
        assert!(ctrl.submit(batch, 0, act).is_none());
        drop(ctrl); // Still must not hang.
    }
}
