//! Bootstrapping-stage monitor (critical-period detection).
//!
//! "The bootstrapping stage is a critical period of training, during which
//! the DNN is sensitive and no parameter is eligible for freezing. KGT
//! monitors the changing rate of the training loss and moves to the next
//! stage as the DNN moves out of the critical period" (§3). The changing
//! rate threshold is permissively 10% (§4.2.2).

use egeria_analysis::series::relative_change;

/// The complete persistent state of a [`BootstrapMonitor`], exposed for
/// checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapSnapshot {
    /// Sampled loss history.
    pub losses: Vec<f32>,
    /// Whether the critical period already ended (latched).
    pub done: bool,
}

/// Monitors the loss changing rate over a window of sampled losses.
#[derive(Debug, Clone)]
pub struct BootstrapMonitor {
    losses: Vec<f32>,
    window: usize,
    rate: f32,
    min_samples: usize,
    done: bool,
}

impl BootstrapMonitor {
    /// Creates a monitor that exits bootstrap when the relative loss change
    /// over the last `window` samples drops below `rate`.
    pub fn new(window: usize, rate: f32) -> Self {
        BootstrapMonitor {
            losses: Vec::new(),
            window: window.max(4),
            rate,
            min_samples: window.max(4),
            done: false,
        }
    }

    /// Folds in one sampled training loss; returns `true` once the critical
    /// period is over (latched).
    pub fn observe(&mut self, loss: f32) -> bool {
        if self.done {
            return true;
        }
        self.losses.push(loss);
        if self.losses.len() < self.min_samples {
            return false;
        }
        if let Some(change) = relative_change(&self.losses, self.window) {
            if change < self.rate {
                self.done = true;
            }
        }
        self.done
    }

    /// Whether bootstrap has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Sampled loss history.
    pub fn history(&self) -> &[f32] {
        &self.losses
    }

    /// Serializable view for checkpointing (window/rate/min-samples come
    /// from the config, so only the history and latch need persisting).
    pub fn snapshot(&self) -> BootstrapSnapshot {
        BootstrapSnapshot {
            losses: self.losses.clone(),
            done: self.done,
        }
    }

    /// Restores a previously snapshotted state into this monitor.
    pub fn restore(&mut self, s: &BootstrapSnapshot) {
        self.losses = s.losses.clone();
        self.done = s.done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_bootstrap_while_loss_falls_fast() {
        let mut m = BootstrapMonitor::new(8, 0.10);
        for i in 0..8 {
            // Loss halves every sample: change rate far above 10%.
            assert!(!m.observe(10.0 / (1 << i) as f32), "exited at {i}");
        }
    }

    #[test]
    fn exits_when_loss_plateaus() {
        let mut m = BootstrapMonitor::new(8, 0.10);
        for i in 0..6 {
            m.observe(5.0 - i as f32 * 0.8);
        }
        let mut exited = false;
        for _ in 0..10 {
            exited = m.observe(1.0);
            if exited {
                break;
            }
        }
        assert!(exited, "never exited bootstrap on a plateau");
    }

    #[test]
    fn done_is_latched() {
        let mut m = BootstrapMonitor::new(4, 0.5);
        for _ in 0..8 {
            m.observe(1.0);
        }
        assert!(m.is_done());
        // A later loss spike does not re-enter bootstrap.
        assert!(m.observe(100.0));
        assert!(m.is_done());
    }

    #[test]
    fn requires_minimum_history() {
        let mut m = BootstrapMonitor::new(10, 0.99);
        for i in 0..9 {
            assert!(!m.observe(1.0), "exited with only {} samples", i + 1);
        }
    }
}
