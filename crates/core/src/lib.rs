//! Egeria: knowledge-guided DNN training with layer freezing (EuroSys 2023).
//!
//! This crate is the paper's contribution. The training life cycle (Figure
//! 3) is reproduced end to end:
//!
//! 1. **Bootstrapping stage** ([`bootstrap`]): monitor the training-loss
//!    changing rate; while the DNN is in its critical period nothing is
//!    eligible for freezing.
//! 2. **Knowledge-guided stage**: generate a *reference model* by int8
//!    post-training quantization of a training snapshot ([`reference`]),
//!    evaluate the *plasticity* of the frontmost active layer module — the
//!    SP loss between training and reference activations on the same batch
//!    ([`plasticity`]) — and freeze the module when its smoothed plasticity
//!    slope stays under tolerance for `S` consecutive evaluations
//!    ([`freezer`], Algorithm 1). Learning-rate annealing triggers
//!    unfreezing with relaxed refreeze criteria.
//! 3. **Forward-pass skipping** ([`cache`]): frozen-prefix activations are
//!    cached to disk keyed by sample id, prefetched ahead of the training
//!    loop (the loader knows the future batch order), and spliced into the
//!    forward pass so frozen modules skip computation entirely.
//!
//! The controller/worker split of §4.1 is in [`controller`]: the reference
//! model runs on a separate thread behind the paper's three
//! single-producer/single-consumer queues (IQ, ROQ, TOQ) with a CPU-load
//! gate. [`trainer::EgeriaTrainer`] ties everything together, and
//! [`api`] provides the `EgeriaModule`/`EgeriaController` facade matching
//! the paper's minimal-code-change interface.

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod api;
pub mod baselines;
pub mod bootstrap;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod distributed;
pub mod faults;
pub mod freezer;
pub mod plasticity;
pub mod policy;
pub mod reference;
pub mod trainer;

pub use api::{EgeriaController, EgeriaModule};
pub use checkpoint::{CheckpointOptions, CheckpointStore, TrainerCheckpoint};
pub use config::{EgeriaConfig, PolicyKind};
pub use policy::{build_policy, FreezePolicy, PolicyAction, PolicyState};
pub use egeria_obs::Telemetry;
pub use faults::{FaultAction, FaultInjector, FaultSite};
pub use trainer::{EgeriaTrainer, TrainReport};
