//! Freezing baselines the paper compares against.
//!
//! §6.2: "We also test freezing layers based on gradient norm on CIFAR-10
//! and find that achieving the same speedup will lose 2% of accuracy."
//! [`GradNormFreezer`] is that baseline: it applies the same
//! windowed-stationarity machinery as Egeria but to the *gradient norm* of
//! the frontmost active module (a hard-label signal) instead of the
//! reference-guided SP-loss plasticity (a semantic signal). The paper's
//! point — and the `gradnorm_baseline` experiment's — is that the naive
//! signal freezes on noisy evidence and costs accuracy.
//!
//! [`CyclicalUnfreezer`] implements Algorithm 1's `customizedUnfreeze`
//! hook for periodic schedules (cosine annealing / cyclical LR): unfreeze
//! at each cycle restart, refreeze with relaxed criteria inside the cycle.

use crate::config::EgeriaConfig;
use crate::freezer::FreezeEvent;
use crate::plasticity::PlasticityTracker;
use egeria_models::Model;
use egeria_tensor::Result;

/// Gradient-norm-guided freezing (the paper's accuracy-losing baseline).
pub struct GradNormFreezer {
    trackers: Vec<PlasticityTracker>,
    front: usize,
    num_modules: usize,
}

impl GradNormFreezer {
    /// Creates the baseline freezer with Egeria's window configuration.
    pub fn new(num_modules: usize, cfg: &EgeriaConfig) -> Self {
        GradNormFreezer {
            trackers: (0..num_modules)
                .map(|_| PlasticityTracker::new(cfg.w, cfg.s, cfg.t))
                .collect(),
            front: 0,
            num_modules,
        }
    }

    /// Current frozen-prefix length.
    pub fn front(&self) -> usize {
        self.front
    }

    /// The L2 norm of the gradients currently accumulated on module
    /// `module`'s parameters, normalized by the parameter count.
    ///
    /// Must be called after a backward pass and before `zero_grad`.
    pub fn module_grad_norm(model: &dyn Model, module: usize) -> f32 {
        // Parameters are not directly indexable per module, so walk the
        // module sizes to find the parameter span. Module param counts are
        // exact because `ModuleMeta::param_count` sums the same tensors.
        let metas = model.modules();
        let params = model.params();
        let mut acc = 0.0f64;
        let mut count = 0usize;
        let mut seen = 0usize;
        let start: usize = metas[..module].iter().map(|m| m.param_count).sum();
        let end = start + metas[module].param_count;
        for p in params {
            let span = p.numel();
            if seen + span > start && seen < end {
                if let Some(g) = &p.grad {
                    acc += g.sq_norm() as f64;
                }
                count += span;
            }
            seen += span;
        }
        if count == 0 {
            0.0
        } else {
            (acc.sqrt() / count as f64) as f32
        }
    }

    /// Folds one gradient-norm observation of the frontmost active module;
    /// returns a freeze event when its trend flattens.
    pub fn observe(&mut self, grad_norm: f32) -> Result<FreezeEvent> {
        if self.front + 1 >= self.num_modules {
            return Ok(FreezeEvent::None);
        }
        let obs = self.trackers[self.front].observe_value(grad_norm)?;
        if obs.converged {
            self.front += 1;
            return Ok(FreezeEvent::Froze(self.front));
        }
        Ok(FreezeEvent::None)
    }
}

/// Unfreeze policy for periodic LR schedules (§4.2.2's
/// `customizedUnfreeze`).
pub struct CyclicalUnfreezer {
    period: usize,
    last_cycle: usize,
}

impl CyclicalUnfreezer {
    /// Creates an unfreezer for a schedule with the given restart period
    /// (in the same step units the schedule is indexed by).
    pub fn new(period: usize) -> Self {
        CyclicalUnfreezer {
            period: period.max(1),
            last_cycle: 0,
        }
    }

    /// Returns `true` exactly once per cycle restart; the caller unfreezes
    /// (Algorithm 1 line 24) and lets refreezing proceed with relaxed
    /// criteria inside the new cycle.
    pub fn should_unfreeze(&mut self, step: usize) -> bool {
        let cycle = step / self.period;
        if cycle > self.last_cycle {
            self.last_cycle = cycle;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_models::{Batch, Input, Targets};
    use egeria_tensor::{Rng, Tensor};

    fn model() -> impl Model {
        resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            3,
        )
    }

    #[test]
    fn module_grad_norm_is_zero_before_backward_and_positive_after() {
        let mut m = model();
        assert_eq!(GradNormFreezer::module_grad_norm(&m, 0), 0.0);
        let mut rng = Rng::new(1);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[2, 3, 8, 8], &mut rng)),
            targets: Targets::Classes(vec![0, 1]),
            sample_ids: vec![0, 1],
        };
        let _ = m.train_step(&batch, None).unwrap();
        for module in 0..m.modules().len() {
            assert!(
                GradNormFreezer::module_grad_norm(&m, module) > 0.0,
                "module {module} has zero grad norm after backward"
            );
        }
    }

    #[test]
    fn frozen_module_grad_norm_is_zero() {
        let mut m = model();
        m.freeze_prefix(1).unwrap();
        let mut rng = Rng::new(2);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[2, 3, 8, 8], &mut rng)),
            targets: Targets::Classes(vec![0, 1]),
            sample_ids: vec![0, 1],
        };
        let _ = m.train_step(&batch, None).unwrap();
        assert_eq!(GradNormFreezer::module_grad_norm(&m, 0), 0.0);
        assert!(GradNormFreezer::module_grad_norm(&m, 1) > 0.0);
    }

    #[test]
    fn gradnorm_freezer_advances_on_flat_norms() {
        let cfg = EgeriaConfig {
            w: 4,
            s: 3,
            t: 5.0,
            ..Default::default()
        };
        let mut f = GradNormFreezer::new(3, &cfg);
        let mut froze = false;
        for _ in 0..12 {
            if let FreezeEvent::Froze(k) = f.observe(0.5).unwrap() {
                assert_eq!(k, 1);
                froze = true;
                break;
            }
        }
        assert!(froze);
        // The tail module never freezes.
        let mut f2 = GradNormFreezer::new(1, &cfg);
        for _ in 0..12 {
            assert_eq!(f2.observe(0.5).unwrap(), FreezeEvent::None);
        }
    }

    #[test]
    fn cyclical_unfreezer_fires_once_per_cycle() {
        let mut u = CyclicalUnfreezer::new(10);
        let fires: Vec<usize> = (0..35).filter(|&s| u.should_unfreeze(s)).collect();
        assert_eq!(fires, vec![10, 20, 30]);
    }
}
