//! Algorithm 1: the layer-freezing state machine.
//!
//! Tracks the frontmost active layer module, folds plasticity evaluations
//! into its history, advances the frozen prefix on a policy's decision, and
//! handles unfreezing with relaxed refreeze criteria. The decision rule
//! itself lives behind [`FreezePolicy`] (DESIGN §5i): the engine owns the
//! shared mechanics — trackers, front cursor, event log, telemetry, tail
//! guard — and delegates freeze/unfreeze/hold to the configured policy.

use crate::config::{EgeriaConfig, PolicyKind, UnfreezePolicy};
use crate::plasticity::{PlasticityObservation, PlasticityTracker, TrackerSnapshot};
use crate::policy::{build_policy, FreezePolicy, PolicyAction, PolicyState, PostCtx, PreCtx};
use egeria_obs::Telemetry;
use egeria_tensor::{Result, Tensor};

/// The complete persistent state of a [`FreezingEngine`], exposed for
/// checkpointing. Restoring it (against the same config) reproduces the
/// engine's future freeze/unfreeze decisions exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FreezerSnapshot {
    /// Frontmost active module (frozen-prefix length).
    pub front: usize,
    /// LR recorded when the current freeze run started.
    pub lr_at_first_freeze: Option<f32>,
    /// Whether refreeze criteria are relaxed.
    pub relaxed: bool,
    /// Total evaluations folded so far.
    pub evaluations: usize,
    /// Event history `(evaluation index, event)`.
    pub events: Vec<(usize, FreezeEvent)>,
    /// Per-module tracker states, in module order.
    pub trackers: Vec<TrackerSnapshot>,
    /// The decision policy's own state (versioned; DESIGN §5i). Legacy
    /// format-v1 checkpoints decode to [`PolicyState::legacy`].
    pub policy: PolicyState,
}

/// A freezing decision produced by one plasticity evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FreezeEvent {
    /// Nothing changed.
    None,
    /// The frontmost active module converged; the frozen prefix is now the
    /// contained value.
    Froze(usize),
    /// The LR-annealing rule fired; everything was unfrozen.
    Unfroze,
}

/// The per-model freezing engine.
pub struct FreezingEngine {
    trackers: Vec<PlasticityTracker>,
    front: usize,
    num_modules: usize,
    unfreeze: UnfreezePolicy,
    /// The freeze/unfreeze decision rule (DESIGN §5i).
    policy: Box<dyn FreezePolicy>,
    base: EgeriaConfig,
    /// LR recorded when the current freeze run started (first module
    /// frozen); cleared on unfreeze.
    lr_at_first_freeze: Option<f32>,
    /// Whether refreeze criteria are currently relaxed.
    relaxed: bool,
    /// History of events with the evaluation index they occurred at.
    events: Vec<(usize, FreezeEvent)>,
    evaluations: usize,
    /// Telemetry handle; excluded from snapshots (observability is not
    /// training state).
    telemetry: Telemetry,
}

impl FreezingEngine {
    /// Creates an engine for a model of `num_modules` layer modules,
    /// driven by the policy the config selects ([`EgeriaConfig::policy`]).
    pub fn new(num_modules: usize, cfg: &EgeriaConfig) -> Self {
        FreezingEngine::with_policy(num_modules, cfg, build_policy(cfg))
    }

    /// Creates an engine driven by an explicit policy instance (the A/B
    /// scenario harness injects policies directly).
    pub fn with_policy(
        num_modules: usize,
        cfg: &EgeriaConfig,
        policy: Box<dyn FreezePolicy>,
    ) -> Self {
        FreezingEngine {
            trackers: (0..num_modules)
                .map(|_| PlasticityTracker::new(cfg.w, cfg.s, cfg.t))
                .collect(),
            front: 0,
            num_modules,
            unfreeze: cfg.unfreeze,
            policy,
            base: *cfg,
            lr_at_first_freeze: None,
            relaxed: false,
            events: Vec::new(),
            evaluations: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The stable short name of the driving policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The kind of the driving policy.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Attaches a telemetry handle: every plasticity evaluation bumps
    /// `freezer.evaluations`, and freeze/unfreeze decisions are recorded
    /// as `freeze_decision` instants carrying the triggering smoothed
    /// plasticity value.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The frontmost active module (== current frozen prefix length).
    pub fn front(&self) -> usize {
        self.front
    }

    /// Whether any module can still be frozen (the last module always
    /// stays active, per Algorithm 1's assertion).
    pub fn can_freeze(&self) -> bool {
        self.front + 1 < self.num_modules
    }

    /// Recorded freeze/unfreeze events `(evaluation index, event)`.
    pub fn events(&self) -> &[(usize, FreezeEvent)] {
        &self.events
    }

    /// The plasticity tracker of a module (for trace export).
    pub fn tracker(&self, module: usize) -> Option<&PlasticityTracker> {
        self.trackers.get(module)
    }

    /// Folds one plasticity evaluation of the frontmost active module and
    /// returns the resulting event plus the observation.
    ///
    /// `lr` is the current learning rate, consulted for the unfreeze rule
    /// *before* the plasticity logic (a decayed LR reboots training, so
    /// freezing on this evaluation would act on stale history).
    pub fn observe(
        &mut self,
        a_train: &Tensor,
        a_ref: &Tensor,
        lr: f32,
    ) -> Result<(Option<PlasticityObservation>, FreezeEvent)> {
        let p = egeria_analysis::sp_loss(a_train, a_ref)?;
        self.observe_value(p, lr)
    }

    /// Folds a precomputed plasticity value (the async-controller path,
    /// where the SP loss was computed on the controller thread).
    ///
    /// Decision order is part of the determinism contract (pinned by the
    /// golden run): bump the evaluation counter, ask the policy's
    /// *pre-observe* hook whether to abort into an unfreeze (the LR-reboot
    /// guard — the value is *not* folded, training restarts from fresh
    /// history), otherwise fold into the front tracker and act on the
    /// policy's *post-observe* decision. The tail guard is enforced here,
    /// not in policies: a `Freeze` against the last module is a hold.
    pub fn observe_value(
        &mut self,
        p: f32,
        lr: f32,
    ) -> Result<(Option<PlasticityObservation>, FreezeEvent)> {
        self.evaluations += 1;
        self.telemetry.counter("freezer.evaluations").inc();
        let pre = PreCtx {
            front: self.front,
            num_modules: self.num_modules,
            evaluations: self.evaluations,
            lr,
            lr_at_first_freeze: self.lr_at_first_freeze,
            relaxed: self.relaxed,
            unfreeze: self.unfreeze,
        };
        if self.front > 0 && self.policy.pre_observe(&pre) == PolicyAction::UnfreezeAll {
            self.unfreeze_now();
            return Ok((None, FreezeEvent::Unfroze));
        }
        let obs = self.trackers[self.front].observe_value(p)?;
        let can_freeze = self.can_freeze();
        let action = {
            let tracker = &self.trackers[self.front];
            let ctx = PostCtx {
                pre,
                obs: &obs,
                can_freeze,
                raw_history: tracker.raw_history(),
                smoothed_history: tracker.smoothed_history(),
            };
            self.policy.post_observe(&ctx)
        };
        match action {
            PolicyAction::Freeze if can_freeze => {
                if self.lr_at_first_freeze.is_none() {
                    self.lr_at_first_freeze = Some(lr);
                }
                self.front += 1;
                let event = FreezeEvent::Froze(self.front);
                self.events.push((self.evaluations, event));
                self.telemetry.counter("freezer.freezes").inc();
                self.telemetry.gauge("freezer.front").set(self.front as f64);
                self.policy.on_freeze(self.front, &obs);
                Ok((Some(obs), event))
            }
            PolicyAction::UnfreezeAll if self.front > 0 => {
                self.unfreeze_now();
                Ok((Some(obs), FreezeEvent::Unfroze))
            }
            _ => Ok((Some(obs), FreezeEvent::None)),
        }
    }

    /// Unconditionally unfreezes everything (also the entry point for
    /// custom cyclical-LR policies).
    pub fn unfreeze_now(&mut self) {
        self.front = 0;
        self.lr_at_first_freeze = None;
        self.relaxed = true;
        let (w, s) = self.base.relaxed_for_refreeze();
        for t in &mut self.trackers {
            t.relax(w, s);
        }
        self.events.push((self.evaluations, FreezeEvent::Unfroze));
        self.telemetry.counter("freezer.unfreezes").inc();
        self.telemetry.gauge("freezer.front").set(0.0);
        self.policy.on_unfreeze();
    }

    /// Whether refreeze criteria are currently relaxed.
    pub fn is_relaxed(&self) -> bool {
        self.relaxed
    }

    /// Serializable view of the engine for checkpointing.
    pub fn snapshot(&self) -> FreezerSnapshot {
        FreezerSnapshot {
            front: self.front,
            lr_at_first_freeze: self.lr_at_first_freeze,
            relaxed: self.relaxed,
            evaluations: self.evaluations,
            events: self.events.clone(),
            trackers: self.trackers.iter().map(|t| t.snapshot()).collect(),
            policy: self.policy.snapshot(),
        }
    }

    /// Restores a previously snapshotted state into this engine.
    ///
    /// The engine must have been built for the same module count (and the
    /// same config, though only the tracker criteria embedded in the
    /// snapshot are actually consulted afterwards).
    pub fn restore(&mut self, s: &FreezerSnapshot) -> Result<()> {
        if s.trackers.len() != self.num_modules || s.front > self.num_modules {
            return Err(egeria_tensor::TensorError::Corrupt(format!(
                "freezer snapshot covers {} modules (front {}), engine has {}",
                s.trackers.len(),
                s.front,
                self.num_modules
            )));
        }
        // Validate the policy state before mutating anything so a rejected
        // restore leaves the engine untouched.
        self.policy.restore(&s.policy)?;
        self.front = s.front;
        self.lr_at_first_freeze = s.lr_at_first_freeze;
        self.relaxed = s.relaxed;
        self.evaluations = s.evaluations;
        self.events = s.events.clone();
        self.trackers = s.trackers.iter().map(PlasticityTracker::from_snapshot).collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    fn cfg() -> EgeriaConfig {
        EgeriaConfig {
            w: 4,
            s: 3,
            t: 1e-3,
            ..Default::default()
        }
    }

    fn stable_pair(rng: &mut Rng) -> (Tensor, Tensor) {
        let a = Tensor::randn(&[4, 8], rng);
        (a.clone(), a)
    }

    fn unstable_pair(rng: &mut Rng) -> (Tensor, Tensor) {
        (Tensor::randn(&[4, 8], rng), Tensor::randn(&[4, 8], rng))
    }

    #[test]
    fn stable_plasticity_freezes_front_module_first() {
        let mut e = FreezingEngine::new(4, &cfg());
        let mut rng = Rng::new(1);
        let mut first_freeze = None;
        for i in 0..20 {
            let (a, b) = stable_pair(&mut rng);
            let (_, ev) = e.observe(&a, &b, 0.1).unwrap();
            if let FreezeEvent::Froze(k) = ev {
                first_freeze.get_or_insert((i, k));
            }
        }
        let (_, k) = first_freeze.expect("stable plasticity must freeze");
        assert_eq!(k, 1, "front module must freeze first");
        assert!(e.front() >= 1);
    }

    #[test]
    fn unstable_plasticity_never_freezes() {
        let mut e = FreezingEngine::new(3, &cfg());
        let mut rng = Rng::new(2);
        for _ in 0..40 {
            let (a, b) = unstable_pair(&mut rng);
            let (_, ev) = e.observe(&a, &b, 0.1).unwrap();
            assert_eq!(ev, FreezeEvent::None);
        }
        assert_eq!(e.front(), 0);
    }

    #[test]
    fn last_module_is_never_frozen() {
        let mut e = FreezingEngine::new(2, &cfg());
        let mut rng = Rng::new(3);
        for _ in 0..30 {
            let (a, b) = stable_pair(&mut rng);
            let _ = e.observe(&a, &b, 0.1).unwrap();
        }
        assert_eq!(e.front(), 1, "prefix must stop before the last module");
        assert!(!e.can_freeze());
    }

    #[test]
    fn lr_decay_by_10x_unfreezes_everything() {
        let mut e = FreezingEngine::new(4, &cfg());
        let mut rng = Rng::new(4);
        // Freeze one module at lr=0.1.
        while e.front() == 0 {
            let (a, b) = stable_pair(&mut rng);
            let _ = e.observe(&a, &b, 0.1).unwrap();
        }
        // Mild decay: no unfreeze.
        let (a, b) = stable_pair(&mut rng);
        let (_, ev) = e.observe(&a, &b, 0.05).unwrap();
        assert_ne!(ev, FreezeEvent::Unfroze);
        // 10× decay: unfreeze fires.
        let (a, b) = stable_pair(&mut rng);
        let (_, ev) = e.observe(&a, &b, 0.01).unwrap();
        assert_eq!(ev, FreezeEvent::Unfroze);
        assert_eq!(e.front(), 0);
        assert!(e.is_relaxed());
    }

    #[test]
    fn refreeze_is_faster_after_relaxation() {
        let mut e = FreezingEngine::new(4, &cfg());
        let mut rng = Rng::new(5);
        let mut evals_to_first = 0;
        while e.front() == 0 {
            let (a, b) = stable_pair(&mut rng);
            let _ = e.observe(&a, &b, 0.1).unwrap();
            evals_to_first += 1;
        }
        // Trigger unfreeze.
        let (a, b) = stable_pair(&mut rng);
        let _ = e.observe(&a, &b, 0.001).unwrap();
        assert_eq!(e.front(), 0);
        let mut evals_to_refreeze = 0;
        while e.front() == 0 {
            let (a, b) = stable_pair(&mut rng);
            let _ = e.observe(&a, &b, 0.001).unwrap();
            evals_to_refreeze += 1;
        }
        assert!(
            evals_to_refreeze < evals_to_first,
            "refreeze ({evals_to_refreeze}) not faster than first freeze ({evals_to_first})"
        );
    }

    #[test]
    fn never_policy_ignores_lr() {
        let mut c = cfg();
        c.unfreeze = UnfreezePolicy::Never;
        let mut e = FreezingEngine::new(3, &c);
        let mut rng = Rng::new(6);
        while e.front() == 0 {
            let (a, b) = stable_pair(&mut rng);
            let _ = e.observe(&a, &b, 0.1).unwrap();
        }
        let (a, b) = stable_pair(&mut rng);
        let (_, ev) = e.observe(&a, &b, 1e-6).unwrap();
        assert_ne!(ev, FreezeEvent::Unfroze);
        assert!(e.front() >= 1);
    }

    #[test]
    fn events_are_recorded_in_order() {
        let mut e = FreezingEngine::new(4, &cfg());
        let mut rng = Rng::new(7);
        for _ in 0..40 {
            let (a, b) = stable_pair(&mut rng);
            let _ = e.observe(&a, &b, 0.1).unwrap();
        }
        let evs = e.events();
        assert!(!evs.is_empty());
        for w in evs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}
