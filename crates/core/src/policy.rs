//! Pluggable freeze/unfreeze decision policies (DESIGN §5i).
//!
//! [`crate::freezer::FreezingEngine`] owns the mechanics every policy
//! shares — per-module plasticity trackers, the frozen-front cursor, the
//! event log, telemetry, and the tail-module guard — while a
//! [`FreezePolicy`] owns only the *decision rule*. One evaluation is folded
//! in two phases, mirroring Algorithm 1's ordering exactly:
//!
//! 1. [`FreezePolicy::pre_observe`] runs *before* the value enters the
//!    front tracker. Returning [`PolicyAction::UnfreezeAll`] here aborts
//!    the fold (the paper's LR-reboot guard: a decayed LR reboots training,
//!    so folding this evaluation would act on stale history).
//! 2. The engine folds the value into the front module's tracker.
//! 3. [`FreezePolicy::post_observe`] sees the resulting
//!    [`PlasticityObservation`] plus the tracker histories and emits
//!    freeze/unfreeze/hold.
//!
//! The engine enforces the global invariants no policy may break: the tail
//! module never freezes, and unfreezing below an empty front is a no-op.
//!
//! Policy state is checkpointed through the versioned [`PolicyState`]
//! container; the versioning rules (kind must match, versions only
//! upgradable) are specified in DESIGN §5i.

use crate::config::{EgeriaConfig, PolicyKind, UnfreezePolicy, DEFAULT_INTERVAL_EVERY};
use crate::plasticity::PlasticityObservation;
use egeria_tensor::{Result, TensorError};

/// Decision emitted by a policy for one plasticity evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Keep the current frozen prefix.
    Hold,
    /// Advance the frozen front by one module (ignored when only the tail
    /// module remains active — the engine's tail guard).
    Freeze,
    /// Thaw every frozen module and relax the refreeze criteria (ignored
    /// when nothing is frozen).
    UnfreezeAll,
}

/// Engine state visible to a policy before the fold.
#[derive(Debug, Clone, Copy)]
pub struct PreCtx {
    /// Frontmost active module (current frozen-prefix length).
    pub front: usize,
    /// Total layer modules.
    pub num_modules: usize,
    /// 1-based index of this evaluation.
    pub evaluations: usize,
    /// Learning rate in effect for this evaluation.
    pub lr: f32,
    /// LR recorded when the current freeze run started.
    pub lr_at_first_freeze: Option<f32>,
    /// Whether refreeze criteria are currently relaxed.
    pub relaxed: bool,
    /// Configured unfreeze mode (§4.2.2) — policies honoring the built-in
    /// LR rule consult it; baselines ignore it.
    pub unfreeze: UnfreezePolicy,
}

/// Engine state visible to a policy after the fold.
pub struct PostCtx<'a> {
    /// The pre-fold engine state.
    pub pre: PreCtx,
    /// The observation the fold produced for the front module.
    pub obs: &'a PlasticityObservation,
    /// Whether a freeze is currently possible (tail guard).
    pub can_freeze: bool,
    /// The front module's raw SP-loss history, oldest first.
    pub raw_history: &'a [f32],
    /// The front module's smoothed (Equation 2) history, oldest first.
    pub smoothed_history: &'a [f32],
}

/// Serializable policy state for checkpointing.
///
/// The container is deliberately schema-free — two flat arrays plus a
/// `(kind, version)` header — so the checkpoint format does not change
/// shape when a policy gains state. Versioning rules (DESIGN §5i):
///
/// - `kind` must match the restoring policy's name exactly; resuming a
///   checkpoint under a different policy is a corruption error, not a
///   silent re-interpretation.
/// - a policy must accept every version `<=` its current one (upgrading in
///   place) and must reject newer versions (a checkpoint from a newer
///   binary is not downgradable).
/// - version 0 is the legacy pre-policy state: format-v1 checkpoints decode
///   to `PolicyState::legacy()` and only the paper policy accepts it.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyState {
    /// Policy kind name this state belongs to.
    pub kind: String,
    /// Per-kind state-layout version.
    pub version: u32,
    /// Float state, layout owned by the policy.
    pub scalars: Vec<f32>,
    /// Integer state, layout owned by the policy.
    pub counters: Vec<u64>,
}

impl PolicyState {
    /// Fresh state for a policy with no persistent fields.
    pub fn empty(kind: &str, version: u32) -> Self {
        PolicyState {
            kind: kind.to_string(),
            version,
            scalars: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// The state a format-v1 (pre-policy-framework) checkpoint decodes to:
    /// those runs were always driven by the paper policy, which is
    /// stateless, so the upgrade is lossless.
    pub fn legacy() -> Self {
        PolicyState::empty("paper", 0)
    }
}

/// Validates the `(kind, version)` header shared by every policy.
fn check_state(s: &PolicyState, kind: &str, current_version: u32) -> Result<()> {
    if s.kind != kind {
        return Err(TensorError::Corrupt(format!(
            "policy state is for {:?}, engine runs {kind:?} — resume must use \
             the checkpointed policy",
            s.kind
        )));
    }
    if s.version > current_version {
        return Err(TensorError::Corrupt(format!(
            "policy {kind:?} state version {} is newer than this binary \
             supports ({current_version})",
            s.version
        )));
    }
    Ok(())
}

/// The freeze/unfreeze decision rule driving a
/// [`crate::freezer::FreezingEngine`].
pub trait FreezePolicy: Send {
    /// The kind this policy was built from.
    fn kind(&self) -> PolicyKind;

    /// Stable short name (reports, fingerprints, checkpoints, telemetry).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Whether the policy never emits [`PolicyAction::UnfreezeAll`] — the
    /// monotone-front contract the property tests pin.
    fn is_one_way(&self) -> bool;

    /// Decision hook before the value is folded into the front tracker.
    /// The only meaningful return here is `UnfreezeAll` (the LR-reboot
    /// guard); `Freeze` is ignored by the engine at this phase because no
    /// observation exists yet.
    fn pre_observe(&mut self, _ctx: &PreCtx) -> PolicyAction {
        PolicyAction::Hold
    }

    /// Decision hook after the fold.
    fn post_observe(&mut self, ctx: &PostCtx) -> PolicyAction;

    /// Notification that the engine froze a module (`new_front` is the
    /// frozen-prefix length after the event, `obs` the triggering
    /// observation).
    fn on_freeze(&mut self, _new_front: usize, _obs: &PlasticityObservation) {}

    /// Notification that the engine unfroze everything (policy-driven or
    /// via the external `unfreeze_now` hook).
    fn on_unfreeze(&mut self) {}

    /// Serializable view of the policy for checkpointing.
    fn snapshot(&self) -> PolicyState;

    /// Restores a previously snapshotted state.
    fn restore(&mut self, s: &PolicyState) -> Result<()>;
}

/// Builds the policy a config asks for.
pub fn build_policy(cfg: &EgeriaConfig) -> Box<dyn FreezePolicy> {
    match cfg.policy {
        PolicyKind::Paper => Box::new(PaperPolicy::new(cfg.unfreeze)),
        PolicyKind::Learned => Box::new(LearnedPolicy::new(cfg.w, cfg.s)),
        PolicyKind::Interval { every } => Box::new(IntervalPolicy::new(every)),
        PolicyKind::NeverFreeze => Box::new(NeverFreezePolicy),
        PolicyKind::RegressionAware => {
            Box::new(RegressionAwarePolicy::new(cfg.unfreeze))
        }
    }
}

// ---------------------------------------------------------------------------
// (a) Paper policy — Algorithm 1, bit-identical to the pre-trait freezer
// ---------------------------------------------------------------------------

/// The paper's plasticity/CUSUM policy: freeze when the front tracker
/// reports convergence (`S` consecutive sub-tolerance slopes), unfreeze on
/// the LR-annealing rule (LR decayed ≥10× since the freeze run started).
///
/// Stateless beyond the config: the stale counter lives in the tracker and
/// `lr_at_first_freeze` in the engine, exactly as before the refactor.
#[derive(Debug, Clone)]
pub struct PaperPolicy {
    unfreeze: UnfreezePolicy,
}

/// Current [`PolicyState::version`] written by [`PaperPolicy`].
pub const PAPER_STATE_VERSION: u32 = 1;

impl PaperPolicy {
    /// Creates the paper policy with the configured unfreeze mode.
    pub fn new(unfreeze: UnfreezePolicy) -> Self {
        PaperPolicy { unfreeze }
    }

    /// The LR-annealing unfreeze rule (§4.2.2), shared with the
    /// regression-aware variant.
    fn lr_reboot(ctx: &PreCtx, unfreeze: UnfreezePolicy) -> bool {
        if unfreeze != UnfreezePolicy::LrAnnealing || ctx.front == 0 {
            return false;
        }
        match ctx.lr_at_first_freeze {
            Some(lr0) => ctx.lr <= lr0 * 0.1 + f32::EPSILON,
            None => false,
        }
    }
}

impl FreezePolicy for PaperPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Paper
    }

    fn is_one_way(&self) -> bool {
        self.unfreeze == UnfreezePolicy::Never
    }

    fn pre_observe(&mut self, ctx: &PreCtx) -> PolicyAction {
        if Self::lr_reboot(ctx, self.unfreeze) {
            PolicyAction::UnfreezeAll
        } else {
            PolicyAction::Hold
        }
    }

    fn post_observe(&mut self, ctx: &PostCtx) -> PolicyAction {
        if ctx.obs.converged {
            PolicyAction::Freeze
        } else {
            PolicyAction::Hold
        }
    }

    fn snapshot(&self) -> PolicyState {
        PolicyState::empty(self.name(), PAPER_STATE_VERSION)
    }

    fn restore(&mut self, s: &PolicyState) -> Result<()> {
        // Version 0 is the legacy pre-framework state (format-v1
        // checkpoints); the paper policy is stateless either way.
        check_state(s, self.name(), PAPER_STATE_VERSION)
    }
}

// ---------------------------------------------------------------------------
// (b) Learned policy — SmartFRZ-style predictor over history features
// ---------------------------------------------------------------------------

/// SmartFRZ-style learned freeze predictor (PAPERS.md).
///
/// A fixed-weight logistic scorer over five plasticity-history features,
/// with an attention-style recency pooling of the smoothed window standing
/// in for SmartFRZ's attention encoder. The weights are constants distilled
/// offline from paper-policy decision traces — at run time the predictor is
/// pure deterministic arithmetic, which is what the fingerprint contract
/// requires. It typically freezes *earlier* than the CUSUM rule because a
/// half-full stale streak with a saturated history already scores above
/// threshold (the SmartFRZ claim: the learned signal needs fewer
/// confirmations than the interval heuristic).
#[derive(Debug, Clone)]
pub struct LearnedPolicy {
    w: usize,
    s: usize,
    /// Consecutive evaluations scored above threshold.
    hot: usize,
}

/// Current [`PolicyState::version`] written by [`LearnedPolicy`].
pub const LEARNED_STATE_VERSION: u32 = 1;

/// Logistic weights of the five features, then the bias. Distilled from
/// paper-policy traces; see `score` for the feature order.
const LEARNED_WEIGHTS: [f32; 6] = [-1.2, 1.6, 1.0, -0.7, -0.5, -1.1];

/// Above-threshold evaluations required before freezing.
const LEARNED_CONSECUTIVE: usize = 2;

/// Attention recency decay over the smoothed window.
const LEARNED_ATTN_DECAY: f32 = 0.5;

impl LearnedPolicy {
    /// Creates the predictor with the config's window/patience geometry.
    pub fn new(w: usize, s: usize) -> Self {
        LearnedPolicy {
            w: w.max(2),
            s: s.max(1),
            hot: 0,
        }
    }

    /// Deterministic feature extraction + logistic score in `[0, 1]`.
    fn score(&self, ctx: &PostCtx) -> f32 {
        let smoothed = ctx.smoothed_history;
        let raw = ctx.raw_history;
        let n = smoothed.len();
        let k = self.w.min(n);
        let eps = 1e-12f32;
        // Window standard deviation of the raw series — the SGD noise
        // floor every trend is measured against.
        let tail = &raw[raw.len() - raw.len().min(self.w)..];
        let mean = tail.iter().sum::<f32>() / tail.len().max(1) as f32;
        let var = tail
            .iter()
            .map(|v| {
                let d = v - mean;
                d * d
            })
            .sum::<f32>()
            / tail.len().max(1) as f32;
        let sd = var.max(0.0).sqrt().max(eps);
        // f0: trend-to-noise ratio of the fitted slope (capped).
        let span = k.saturating_sub(1) as f32;
        let f0 = match ctx.obs.slope {
            Some(sl) => (sl.abs() * span / sd).min(4.0),
            None => 4.0, // Too little history: maximally uncertain.
        };
        // f1: stale-streak fraction of the configured patience.
        let f1 = (ctx.obs.stale_count as f32 / self.s as f32).min(2.0);
        // f2: history saturation.
        let f2 = (n as f32 / self.w as f32).min(1.0);
        // f3: attention drift — recency-pooled smoothed context vs the
        // newest value; a converged curve has near-zero drift.
        let win = &smoothed[n - k..];
        let mut ctx_val = 0.0f32;
        let mut norm = 0.0f32;
        for (i, v) in win.iter().enumerate() {
            // Newest position gets weight 1, older decay geometrically.
            let a = (-(LEARNED_ATTN_DECAY) * (k - 1 - i) as f32).exp();
            ctx_val += a * v;
            norm += a;
        }
        let ctx_val = ctx_val / norm.max(eps);
        let last = *win.last().unwrap_or(&0.0);
        let f3 = ((ctx_val - last).abs() / sd).min(4.0);
        // f4: relative level change across the window.
        let first = *win.first().unwrap_or(&0.0);
        let f4 = ((last - first).abs() / (last.abs() + eps)).min(4.0);
        let z = LEARNED_WEIGHTS[0] * f0
            + LEARNED_WEIGHTS[1] * f1
            + LEARNED_WEIGHTS[2] * f2
            + LEARNED_WEIGHTS[3] * f3
            + LEARNED_WEIGHTS[4] * f4
            + LEARNED_WEIGHTS[5];
        1.0 / (1.0 + (-z).exp())
    }
}

impl FreezePolicy for LearnedPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Learned
    }

    fn is_one_way(&self) -> bool {
        true
    }

    fn post_observe(&mut self, ctx: &PostCtx) -> PolicyAction {
        if self.score(ctx) > 0.5 {
            self.hot += 1;
        } else {
            self.hot = 0;
        }
        if self.hot >= LEARNED_CONSECUTIVE {
            PolicyAction::Freeze
        } else {
            PolicyAction::Hold
        }
    }

    fn on_freeze(&mut self, _new_front: usize, _obs: &PlasticityObservation) {
        // The next front module starts a fresh streak.
        self.hot = 0;
    }

    fn on_unfreeze(&mut self) {
        self.hot = 0;
    }

    fn snapshot(&self) -> PolicyState {
        PolicyState {
            kind: self.name().to_string(),
            version: LEARNED_STATE_VERSION,
            scalars: Vec::new(),
            counters: vec![self.hot as u64],
        }
    }

    fn restore(&mut self, s: &PolicyState) -> Result<()> {
        check_state(s, self.name(), LEARNED_STATE_VERSION)?;
        self.hot = s.counters.first().copied().unwrap_or(0) as usize;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// (c) Interval + never-freeze baselines
// ---------------------------------------------------------------------------

/// Periodic-interval baseline: freeze one module every `every` evaluations,
/// blind to plasticity (the literature's naive schedule Egeria's Figure 2
/// argues against).
#[derive(Debug, Clone)]
pub struct IntervalPolicy {
    every: usize,
}

/// Current [`PolicyState::version`] written by [`IntervalPolicy`].
pub const INTERVAL_STATE_VERSION: u32 = 1;

impl IntervalPolicy {
    /// Creates the baseline with the given period (floored to 1).
    pub fn new(every: usize) -> Self {
        IntervalPolicy {
            every: every.max(1),
        }
    }
}

impl Default for IntervalPolicy {
    fn default() -> Self {
        IntervalPolicy::new(DEFAULT_INTERVAL_EVERY)
    }
}

impl FreezePolicy for IntervalPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Interval { every: self.every }
    }

    fn is_one_way(&self) -> bool {
        true
    }

    fn post_observe(&mut self, ctx: &PostCtx) -> PolicyAction {
        if ctx.pre.evaluations.is_multiple_of(self.every) {
            PolicyAction::Freeze
        } else {
            PolicyAction::Hold
        }
    }

    fn snapshot(&self) -> PolicyState {
        // The period is config, not state, but carrying it makes a
        // mismatched resume (same kind, different period) detectable.
        PolicyState {
            kind: self.name().to_string(),
            version: INTERVAL_STATE_VERSION,
            scalars: Vec::new(),
            counters: vec![self.every as u64],
        }
    }

    fn restore(&mut self, s: &PolicyState) -> Result<()> {
        check_state(s, self.name(), INTERVAL_STATE_VERSION)?;
        if let Some(&every) = s.counters.first() {
            if every as usize != self.every {
                return Err(TensorError::Corrupt(format!(
                    "interval policy was checkpointed with period {every}, \
                     engine configured with {}",
                    self.every
                )));
            }
        }
        Ok(())
    }
}

/// Never-freeze baseline: the probe pipeline runs, nothing ever freezes.
#[derive(Debug, Clone, Copy)]
pub struct NeverFreezePolicy;

/// Current [`PolicyState::version`] written by [`NeverFreezePolicy`].
pub const NEVER_STATE_VERSION: u32 = 1;

impl FreezePolicy for NeverFreezePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::NeverFreeze
    }

    fn is_one_way(&self) -> bool {
        true
    }

    fn post_observe(&mut self, _ctx: &PostCtx) -> PolicyAction {
        PolicyAction::Hold
    }

    fn snapshot(&self) -> PolicyState {
        PolicyState::empty(self.name(), NEVER_STATE_VERSION)
    }

    fn restore(&mut self, s: &PolicyState) -> Result<()> {
        check_state(s, self.name(), NEVER_STATE_VERSION)
    }
}

// ---------------------------------------------------------------------------
// (d) Regression-aware policy — paper rule + rebound-triggered unfreezing
// ---------------------------------------------------------------------------

/// The paper policy plus *regression-aware unfreezing* ("Rethinking the
/// Potential of Layer Freezing", PAPERS.md: one-way freezing leaves
/// accuracy on the table).
///
/// After each freeze the policy records the converged plasticity level and
/// watches the next [`REBOUND_WATCH_WINDOW`] reference probes. The probes
/// now address the successor module, whose activations are computed
/// *through* the frozen prefix — a prefix frozen prematurely (or regressed
/// by distribution shift) drags the successor's SP loss up, so a sustained
/// rebound above [`REBOUND_FACTOR`]× the freeze-time level is the
/// premature-freeze signature. On rebound the policy thaws everything; the
/// engine relaxes the refreeze criteria exactly as for an LR-annealing
/// unfreeze, so a *correct* freeze quickly re-establishes itself.
#[derive(Debug, Clone)]
pub struct RegressionAwarePolicy {
    paper: PaperPolicy,
    /// Smoothed plasticity at the most recent freeze.
    baseline: Option<f32>,
    /// Probes left in the current watch window.
    watch_left: usize,
    /// Consecutive rebound probes so far.
    hot: usize,
}

/// Current [`PolicyState::version`] written by [`RegressionAwarePolicy`].
pub const REGRESSION_STATE_VERSION: u32 = 1;

/// Rebound threshold relative to the freeze-time plasticity level.
pub const REBOUND_FACTOR: f32 = 1.15;

/// Consecutive above-threshold probes required to unfreeze.
pub const REBOUND_CONSECUTIVE: usize = 2;

/// Probes watched after each freeze before the decision is considered
/// settled.
pub const REBOUND_WATCH_WINDOW: usize = 8;

impl RegressionAwarePolicy {
    /// Creates the regression-aware variant with the configured unfreeze
    /// mode (the LR-annealing rule still applies on top of rebounds).
    pub fn new(unfreeze: UnfreezePolicy) -> Self {
        RegressionAwarePolicy {
            paper: PaperPolicy::new(unfreeze),
            baseline: None,
            watch_left: 0,
            hot: 0,
        }
    }
}

impl FreezePolicy for RegressionAwarePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RegressionAware
    }

    fn is_one_way(&self) -> bool {
        false
    }

    fn pre_observe(&mut self, ctx: &PreCtx) -> PolicyAction {
        self.paper.pre_observe(ctx)
    }

    fn post_observe(&mut self, ctx: &PostCtx) -> PolicyAction {
        if ctx.pre.front > 0 && self.watch_left > 0 {
            self.watch_left -= 1;
            if let Some(base) = self.baseline {
                // An absolute epsilon keeps near-zero baselines (the
                // self-similar tail of a converged module) from turning
                // numerical dust into rebounds.
                if ctx.obs.smoothed > base * REBOUND_FACTOR + 1e-6 {
                    self.hot += 1;
                } else {
                    self.hot = 0;
                }
                if self.hot >= REBOUND_CONSECUTIVE {
                    return PolicyAction::UnfreezeAll;
                }
            }
        }
        self.paper.post_observe(ctx)
    }

    fn on_freeze(&mut self, _new_front: usize, obs: &PlasticityObservation) {
        self.baseline = Some(obs.smoothed);
        self.watch_left = REBOUND_WATCH_WINDOW;
        self.hot = 0;
    }

    fn on_unfreeze(&mut self) {
        self.baseline = None;
        self.watch_left = 0;
        self.hot = 0;
    }

    fn snapshot(&self) -> PolicyState {
        PolicyState {
            kind: self.name().to_string(),
            version: REGRESSION_STATE_VERSION,
            scalars: vec![self.baseline.unwrap_or(0.0)],
            counters: vec![
                self.baseline.is_some() as u64,
                self.watch_left as u64,
                self.hot as u64,
            ],
        }
    }

    fn restore(&mut self, s: &PolicyState) -> Result<()> {
        check_state(s, self.name(), REGRESSION_STATE_VERSION)?;
        let has_base = s.counters.first().copied().unwrap_or(0) != 0;
        self.baseline = has_base.then(|| s.scalars.first().copied().unwrap_or(0.0));
        self.watch_left = s.counters.get(1).copied().unwrap_or(0) as usize;
        self.hot = s.counters.get(2).copied().unwrap_or(0) as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plasticity::PlasticityTracker;

    fn drive(
        policy: &mut dyn FreezePolicy,
        tracker: &mut PlasticityTracker,
        values: &[f32],
    ) -> Vec<PolicyAction> {
        let mut out = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            let pre = PreCtx {
                front: 0,
                num_modules: 4,
                evaluations: i + 1,
                lr: 0.1,
                lr_at_first_freeze: None,
                relaxed: false,
                unfreeze: UnfreezePolicy::LrAnnealing,
            };
            let obs = tracker.observe_value(v).unwrap();
            let ctx = PostCtx {
                pre,
                obs: &obs,
                can_freeze: true,
                raw_history: tracker.raw_history(),
                smoothed_history: tracker.smoothed_history(),
            };
            out.push(policy.post_observe(&ctx));
        }
        out
    }

    #[test]
    fn learned_policy_freezes_flat_series_earlier_than_paper_patience() {
        let (w, s) = (4, 4);
        let mut tracker = PlasticityTracker::new(w, s, 1e-3);
        let mut learned = LearnedPolicy::new(w, s);
        let flat = vec![0.5f32; 16];
        let actions = drive(&mut learned, &mut tracker, &flat);
        let learned_at = actions
            .iter()
            .position(|a| *a == PolicyAction::Freeze)
            .expect("learned policy must freeze a flat series");
        // The paper rule needs s=4 consecutive stale slopes after the
        // window fills; the predictor should pull the trigger sooner.
        let mut paper_tracker = PlasticityTracker::new(w, s, 1e-3);
        let mut converged_at = None;
        for (i, &v) in flat.iter().enumerate() {
            if paper_tracker.observe_value(v).unwrap().converged && converged_at.is_none() {
                converged_at = Some(i);
            }
        }
        assert!(
            learned_at <= converged_at.unwrap(),
            "learned froze at {learned_at}, paper at {converged_at:?}"
        );
    }

    #[test]
    fn learned_policy_holds_on_strong_trends() {
        let mut tracker = PlasticityTracker::new(5, 3, 1e-3);
        let mut learned = LearnedPolicy::new(5, 3);
        let falling: Vec<f32> = (0..24).map(|i| 20.0 - i as f32 * 0.8).collect();
        let actions = drive(&mut learned, &mut tracker, &falling);
        assert!(
            actions.iter().all(|a| *a == PolicyAction::Hold),
            "learned policy froze a strongly-trending series"
        );
    }

    #[test]
    fn interval_policy_fires_on_its_period_only() {
        let mut tracker = PlasticityTracker::new(3, 2, 1e-3);
        let mut p = IntervalPolicy::new(3);
        let noisy: Vec<f32> = (0..9).map(|i| (i * 37 % 11) as f32).collect();
        let actions = drive(&mut p, &mut tracker, &noisy);
        let freeze_at: Vec<usize> = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == PolicyAction::Freeze)
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(freeze_at, vec![3, 6, 9]);
    }

    #[test]
    fn never_policy_never_freezes() {
        let mut tracker = PlasticityTracker::new(3, 1, 10.0);
        let mut p = NeverFreezePolicy;
        let actions = drive(&mut p, &mut tracker, &[1.0; 20]);
        assert!(actions.iter().all(|a| *a == PolicyAction::Hold));
    }

    #[test]
    fn regression_policy_unfreezes_on_rebound_within_watch_window() {
        let mut p = RegressionAwarePolicy::new(UnfreezePolicy::LrAnnealing);
        let obs = PlasticityObservation {
            raw: 0.4,
            smoothed: 0.4,
            slope: Some(0.0),
            stale_count: 3,
            converged: true,
        };
        p.on_freeze(1, &obs);
        let mut tracker = PlasticityTracker::new(3, 100, 1e-6);
        // Successor-module probes rebound far above the 0.4 baseline.
        let mut saw_unfreeze = false;
        for (i, v) in [1.0f32, 1.1, 1.2].iter().enumerate() {
            let o = tracker.observe_value(*v).unwrap();
            let pre = PreCtx {
                front: 1,
                num_modules: 4,
                evaluations: i + 1,
                lr: 0.1,
                lr_at_first_freeze: Some(0.1),
                relaxed: false,
                unfreeze: UnfreezePolicy::LrAnnealing,
            };
            let ctx = PostCtx {
                pre,
                obs: &o,
                can_freeze: true,
                raw_history: tracker.raw_history(),
                smoothed_history: tracker.smoothed_history(),
            };
            if p.post_observe(&ctx) == PolicyAction::UnfreezeAll {
                saw_unfreeze = true;
                break;
            }
        }
        assert!(saw_unfreeze, "rebound above factor×baseline must unfreeze");
    }

    #[test]
    fn regression_policy_ignores_rebound_after_watch_window() {
        let mut p = RegressionAwarePolicy::new(UnfreezePolicy::LrAnnealing);
        let obs = PlasticityObservation {
            raw: 0.4,
            smoothed: 0.4,
            slope: Some(0.0),
            stale_count: 3,
            converged: true,
        };
        p.on_freeze(1, &obs);
        // Exhaust the watch window with calm probes.
        let mut tracker = PlasticityTracker::new(3, 100, 1e-6);
        for i in 0..REBOUND_WATCH_WINDOW {
            let o = tracker.observe_value(0.35).unwrap();
            let pre = PreCtx {
                front: 1,
                num_modules: 4,
                evaluations: i + 1,
                lr: 0.1,
                lr_at_first_freeze: Some(0.1),
                relaxed: false,
                unfreeze: UnfreezePolicy::LrAnnealing,
            };
            let ctx = PostCtx {
                pre,
                obs: &o,
                can_freeze: true,
                raw_history: tracker.raw_history(),
                smoothed_history: tracker.smoothed_history(),
            };
            assert_ne!(p.post_observe(&ctx), PolicyAction::UnfreezeAll);
        }
        // A late spike no longer unfreezes: the decision is settled.
        for i in 0..4 {
            let o = tracker.observe_value(50.0).unwrap();
            let pre = PreCtx {
                front: 1,
                num_modules: 4,
                evaluations: REBOUND_WATCH_WINDOW + i + 1,
                lr: 0.1,
                lr_at_first_freeze: Some(0.1),
                relaxed: false,
                unfreeze: UnfreezePolicy::LrAnnealing,
            };
            let ctx = PostCtx {
                pre,
                obs: &o,
                can_freeze: true,
                raw_history: tracker.raw_history(),
                smoothed_history: tracker.smoothed_history(),
            };
            assert_ne!(p.post_observe(&ctx), PolicyAction::UnfreezeAll);
        }
    }

    #[test]
    fn snapshot_restore_round_trips_every_policy() {
        let cfgs = [
            PolicyKind::Paper,
            PolicyKind::Learned,
            PolicyKind::Interval { every: 7 },
            PolicyKind::NeverFreeze,
            PolicyKind::RegressionAware,
        ];
        for kind in cfgs {
            let cfg = EgeriaConfig {
                policy: kind,
                ..Default::default()
            };
            let a = build_policy(&cfg);
            let snap = a.snapshot();
            let mut b = build_policy(&cfg);
            b.restore(&snap).unwrap();
            assert_eq!(b.snapshot(), snap, "{} state drifted", kind.name());
        }
    }

    #[test]
    fn restore_rejects_kind_mismatch_and_future_versions() {
        let mut paper = PaperPolicy::new(UnfreezePolicy::LrAnnealing);
        let wrong_kind = PolicyState::empty("learned", 1);
        assert!(paper.restore(&wrong_kind).is_err());
        let future = PolicyState::empty("paper", PAPER_STATE_VERSION + 1);
        assert!(paper.restore(&future).is_err());
        // Legacy v0 state restores into the paper policy only.
        assert!(paper.restore(&PolicyState::legacy()).is_ok());
        let mut learned = LearnedPolicy::new(4, 4);
        assert!(learned.restore(&PolicyState::legacy()).is_err());
    }

    #[test]
    fn interval_restore_rejects_period_mismatch() {
        let mut p = IntervalPolicy::new(3);
        let other = IntervalPolicy::new(5).snapshot();
        assert!(p.restore(&other).is_err());
        let same = IntervalPolicy::new(3).snapshot();
        assert!(p.restore(&same).is_ok());
    }
}
