//! The Egeria training loop (Figure 3's life cycle, end to end).
//!
//! [`EgeriaTrainer`] drives a [`Model`] over a [`Dataset`] with an optimizer
//! and LR schedule. With `egeria: Some(config)` the loop runs the full
//! knowledge-guided pipeline — bootstrap monitoring, reference generation
//! and refresh, periodic plasticity evaluation, Algorithm 1
//! freezing/unfreezing, and cached-FP with prefetching. With `egeria: None`
//! it is the vanilla baseline the paper compares against. Either way it
//! emits a [`TrainReport`] whose per-iteration records feed the performance
//! simulator.

use crate::bootstrap::BootstrapMonitor;
use crate::cache::{ActivationCache, CacheStats};
use crate::checkpoint::{CheckpointOptions, CheckpointStore, TrainerCheckpoint};
use crate::config::{ControllerMode, EgeriaConfig, PolicyKind, UnfreezePolicy};
use crate::controller::{system_load_probe, AsyncController};
use crate::faults::{FaultInjector, FaultSite};
use crate::freezer::{FreezeEvent, FreezingEngine};
use crate::reference::{ReferenceManager, ReferenceStats};
use egeria_resil::health::HealthMonitor;
use egeria_resil::supervise::Watchdog;
use egeria_data::{DataLoader, Dataset};
use egeria_models::Model;
use egeria_nn::optim::{Adam, OptimizerState, Sgd};
use egeria_nn::sched::LrSchedule;
use egeria_obs::{ArgValue, Telemetry};
use egeria_tensor::{Result, TensorError};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// How many dead async-controller threads the trainer may respawn over
/// one run before the watchdog budget is exhausted (exhaustion drops the
/// controller permanently and flips health to Critical; training itself
/// continues without plasticity evaluations).
const CONTROLLER_RESPAWN_BUDGET: u32 = 3;

/// The optimizer driving parameter updates.
pub enum Optimizer {
    /// SGD with momentum.
    Sgd(Sgd),
    /// Adam.
    Adam(Adam),
}

impl Optimizer {
    /// Sets the learning rate on the wrapped optimizer.
    pub fn set_lr(&mut self, lr: f32) {
        match self {
            Optimizer::Sgd(o) => o.set_lr(lr),
            Optimizer::Adam(o) => o.set_lr(lr),
        }
    }

    /// Applies one update to the given parameters.
    pub fn step(&mut self, params: &mut [&mut egeria_nn::Parameter]) -> Result<()> {
        match self {
            Optimizer::Sgd(o) => o.step(params),
            Optimizer::Adam(o) => o.step(params),
        }
    }

    /// Snapshots the optimizer state for checkpointing.
    pub fn export_state(&self, params: &[&egeria_nn::Parameter]) -> OptimizerState {
        match self {
            Optimizer::Sgd(o) => o.export_state(params),
            Optimizer::Adam(o) => o.export_state(params),
        }
    }

    /// Restores optimizer state from a checkpoint.
    pub fn load_state(&mut self, state: &OptimizerState, params: &[&egeria_nn::Parameter]) -> Result<()> {
        match self {
            Optimizer::Sgd(o) => o.load_state(state, params),
            Optimizer::Adam(o) => o.load_state(state, params),
        }
    }
}

/// Trainer options beyond model/optimizer/schedule.
pub struct TrainerOptions {
    /// Number of epochs.
    pub epochs: usize,
    /// Egeria configuration; `None` trains the vanilla baseline.
    pub egeria: Option<EgeriaConfig>,
    /// Whether the LR schedule is indexed by iteration (NLP convention) or
    /// epoch (CV convention).
    pub lr_per_iteration: bool,
    /// Directory for the activation cache (a temp dir is created when
    /// omitted and caching is on).
    pub cache_dir: Option<PathBuf>,
    /// Evaluate on the validation set every this many epochs (1 = every).
    pub eval_every: usize,
    /// Crash-consistent checkpointing; `None` disables it. When set, the
    /// trainer auto-resumes from the newest valid checkpoint in the
    /// directory before the first epoch.
    pub checkpoint: Option<CheckpointOptions>,
    /// Fault injector for robustness tests; `None` in production.
    pub faults: Option<Arc<FaultInjector>>,
    /// Health monitor aggregating degradation signals from the breaker,
    /// watchdogs, and cache quarantine. One is created internally when
    /// omitted, so the report always carries a final health state.
    pub health: Option<Arc<HealthMonitor>>,
    /// Telemetry handle wired through the freezer, cache, reference
    /// manager, and controller. The default disabled handle records
    /// nothing and costs one branch per instrumentation point.
    pub telemetry: Telemetry,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        TrainerOptions {
            epochs: 10,
            egeria: None,
            lr_per_iteration: false,
            cache_dir: None,
            eval_every: 1,
            checkpoint: None,
            faults: None,
            health: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One epoch's summary.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Validation loss (if evaluated this epoch).
    pub val_loss: Option<f32>,
    /// Validation task metric (if evaluated this epoch).
    pub val_metric: Option<f32>,
    /// Learning rate in effect at the epoch start.
    pub lr: f32,
    /// Frozen prefix at the epoch end.
    pub frozen_prefix: usize,
    /// Fraction of parameters still trainable at the epoch end.
    pub active_param_fraction: f32,
}

/// One training iteration's cost-relevant facts (the simulator input).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IterationRecord {
    /// Epoch index.
    pub epoch: u32,
    /// Frozen-prefix length during this iteration.
    pub frozen_prefix: u16,
    /// Whether the frozen prefix's forward pass was served from the cache.
    pub fp_cached: bool,
}

/// One plasticity evaluation, for trace figures.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PlasticityPoint {
    /// Global iteration index the evaluation ran at.
    pub iteration: usize,
    /// Module under evaluation.
    pub module: usize,
    /// Raw SP-loss plasticity.
    pub raw: f32,
    /// Smoothed (Equation 2) value.
    pub smoothed: f32,
}

/// A freeze/unfreeze event for the decision-timeline figure.
#[derive(Debug, Clone, Serialize)]
pub struct EventRecord {
    /// Global iteration index.
    pub iteration: usize,
    /// `"freeze"` or `"unfreeze"`.
    pub kind: String,
    /// Frozen-prefix length after the event.
    pub prefix: usize,
}

/// The full output of a training run.
#[derive(Debug, Clone, Serialize, Default)]
pub struct TrainReport {
    /// Model name.
    pub model: String,
    /// Whether Egeria was active.
    pub egeria: bool,
    /// Per-epoch summaries.
    pub epochs: Vec<EpochRecord>,
    /// Per-iteration cost facts.
    pub iterations: Vec<IterationRecord>,
    /// Plasticity trace.
    pub plasticity: Vec<PlasticityPoint>,
    /// Freeze/unfreeze events.
    pub events: Vec<EventRecord>,
    /// Cache counters (zeroed when caching is off).
    #[serde(skip)]
    pub cache_stats: CacheStats,
    /// Reference counters.
    #[serde(skip)]
    pub reference_stats: ReferenceStats,
    /// Wall-clock seconds of the whole run (this machine, not the
    /// simulated testbed).
    pub wall_seconds: f64,
    /// Total bytes of input data materialized (for the cache-storage-ratio
    /// report).
    pub input_bytes: u64,
    /// Times a dead async-controller thread was detected and respawned.
    pub controller_restarts: usize,
    /// Checkpoint saves that failed (training continued without them).
    pub checkpoint_save_errors: usize,
    /// The epoch training resumed from, if a checkpoint was loaded.
    pub resumed_from_epoch: Option<usize>,
    /// Plasticity evaluations skipped because the reference capture
    /// failed (degrading to "don't decide yet" instead of aborting).
    pub eval_skips: usize,
    /// Final health level: 0 healthy, 1 degraded, 2 critical.
    pub health_level: u8,
    /// Outstanding health reasons (critical first, then degraded) at the
    /// end of the run.
    pub health_reasons: Vec<String>,
}

/// The training harness.
pub struct EgeriaTrainer {
    model: Box<dyn Model>,
    optimizer: Optimizer,
    schedule: Box<dyn LrSchedule>,
    options: TrainerOptions,
}

impl EgeriaTrainer {
    /// Creates a trainer.
    pub fn new(
        model: Box<dyn Model>,
        optimizer: Optimizer,
        schedule: Box<dyn LrSchedule>,
        options: TrainerOptions,
    ) -> Self {
        EgeriaTrainer {
            model,
            optimizer,
            schedule,
            options,
        }
    }

    /// Access to the trained model after (or during) training.
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// Mutable access to the model (snapshotting between runs).
    pub fn model_mut(&mut self) -> &mut dyn Model {
        self.model.as_mut()
    }

    /// Runs the full training loop.
    ///
    /// `val` is evaluated every `eval_every` epochs with its own loader.
    pub fn train(
        &mut self,
        train: &dyn Dataset,
        loader: &DataLoader,
        val: Option<(&dyn Dataset, &DataLoader)>,
    ) -> Result<TrainReport> {
        let started = Instant::now();
        let mut egeria_cfg = self.options.egeria;
        // `EGERIA_FREEZE_POLICY` overrides the configured decision policy
        // (README knob; see DESIGN §5i). Applied to this run's local copy
        // only — the options keep what the caller configured.
        if let (Some(cfg), Some(kind)) = (egeria_cfg.as_mut(), PolicyKind::from_env()) {
            cfg.policy = kind;
        }
        let telemetry = self.options.telemetry.clone();
        let mut report = TrainReport {
            model: self.model.name().to_string(),
            egeria: egeria_cfg.is_some(),
            ..Default::default()
        };

        // Egeria machinery (present only when enabled).
        let mut bootstrap = egeria_cfg.map(|c| BootstrapMonitor::new(c.w.max(4), c.bootstrap_rate));
        let mut freezer = egeria_cfg.map(|c| FreezingEngine::new(self.model.modules().len(), &c));
        let mut refmgr = egeria_cfg.map(|c| ReferenceManager::new(&c));
        let mut async_ctrl: Option<AsyncController> = None;
        let mut cache = match egeria_cfg {
            Some(c) if c.cache_fp => {
                let dir = self.options.cache_dir.clone().unwrap_or_else(|| {
                    std::env::temp_dir().join(format!(
                        "egeria_cache_{}_{}",
                        std::process::id(),
                        self.model.name()
                    ))
                });
                Some(ActivationCache::for_config(dir, &c)?)
            }
            _ => None,
        };
        let health = self
            .options
            .health
            .clone()
            .unwrap_or_else(|| HealthMonitor::new(telemetry.clone()));
        let faults = self.options.faults.clone();
        if let Some(f) = freezer.as_mut() {
            f.set_telemetry(telemetry.clone());
        }
        if let Some(r) = refmgr.as_mut() {
            r.set_telemetry(telemetry.clone());
            if let Some(f) = faults.clone() {
                r.set_faults(f);
            }
            r.set_health(Arc::clone(&health));
        }
        if let Some(c) = cache.as_mut() {
            c.set_faults(faults.clone());
            c.set_telemetry(telemetry.clone());
            c.set_health(Arc::clone(&health));
        }
        let ctrl_watchdog = Watchdog::new(
            "async-controller",
            CONTROLLER_RESPAWN_BUDGET,
            telemetry.clone(),
        )
        .with_health(Arc::clone(&health), "controller-respawn-budget-exhausted");

        let mut global_step = 0usize;
        let mut evals_since_ref_update = 0usize;

        // Crash consistency: open the checkpoint store and resume from the
        // newest valid checkpoint before the first epoch.
        let mut store = match &self.options.checkpoint {
            Some(opts) => Some(
                CheckpointStore::open(&opts.dir, opts.keep)?.with_faults(faults.clone()),
            ),
            None => None,
        };
        let mut start_epoch = 0usize;
        if let Some(s) = store.as_ref() {
            if let Some(ckpt) = s.load_latest() {
                start_epoch = self.resume_from(
                    &ckpt,
                    &mut bootstrap,
                    &mut freezer,
                    &mut refmgr,
                    &mut async_ctrl,
                    &mut report,
                    &mut global_step,
                    &mut evals_since_ref_update,
                    &mut cache,
                )?;
            }
        }

        for epoch in start_epoch..self.options.epochs {
            let plans = loader.epoch_plan(epoch);
            let mut epoch_loss = 0.0f64;
            let mut epoch_batches = 0usize;
            let epoch_lr = self.schedule.lr(if self.options.lr_per_iteration {
                global_step
            } else {
                epoch
            });
            for plan in &plans {
                // Simulated mid-epoch crash (robustness tests): abort the
                // run exactly here, before any state for this step exists.
                if let Some(f) = &faults {
                    if f.should_fail(FaultSite::TrainStep) {
                        return Err(TensorError::Io(
                            "injected crash: training aborted mid-epoch".into(),
                        ));
                    }
                }
                let lr = self.schedule.lr(if self.options.lr_per_iteration {
                    global_step
                } else {
                    epoch
                });
                self.optimizer.set_lr(lr);
                let batch = train.materialize(&plan.indices)?;
                report.input_bytes += batch_input_bytes(&batch);
                let prefix = self.model.frozen_prefix();

                // Watchdog: a dead controller thread (panic or injected
                // fault) is detected here and respawned with a fresh
                // reference generated from the current weights. In-flight
                // evaluations are lost — a skipped eval, not an error.
                // Respawns are capped: a controller that keeps dying is
                // dropped permanently (health Critical) and training
                // continues without plasticity evaluations.
                if async_ctrl.as_ref().map(|c| !c.is_alive()).unwrap_or(false) {
                    if let Some(cfg) = egeria_cfg.as_ref() {
                        if ctrl_watchdog.request_respawn() {
                            eprintln!(
                                "egeria: controller thread died; respawning with a fresh reference"
                            );
                            let mut rm = ReferenceManager::new(cfg);
                            rm.set_telemetry(telemetry.clone());
                            if let Some(f) = faults.clone() {
                                rm.set_faults(f);
                            }
                            rm.set_health(Arc::clone(&health));
                            rm.generate(self.model.as_ref())?;
                            async_ctrl = Some(AsyncController::spawn_with_telemetry(
                                rm,
                                cfg.cpu_load_gate,
                                system_load_probe(),
                                faults.clone(),
                                telemetry.clone(),
                            ));
                            report.controller_restarts += 1;
                            telemetry.counter("controller.restarts").inc();
                            evals_since_ref_update = 0;
                        } else {
                            eprintln!(
                                "egeria: controller respawn budget exhausted; \
                                 continuing without plasticity evaluations"
                            );
                            async_ctrl = None;
                        }
                    }
                }

                // Drain async plasticity results first so decisions apply
                // promptly.
                if let (Some(ctrl), Some(fr)) = (&async_ctrl, freezer.as_mut()) {
                    for r in ctrl.poll_results() {
                        if r.module != fr.front() {
                            continue; // Stale: the front advanced meanwhile.
                        }
                        if let Some(p) = r.value {
                            self.fold_plasticity(
                                fr,
                                &mut cache,
                                &mut report,
                                &telemetry,
                                p,
                                lr,
                                r.module,
                                global_step,
                                &mut evals_since_ref_update,
                            )?;
                        }
                    }
                }

                let bootstrap_done = bootstrap.as_ref().map(|b| b.is_done()).unwrap_or(false);
                let reference_available = refmgr.as_ref().map(|r| r.is_ready()).unwrap_or(false)
                    || async_ctrl.is_some();
                let do_eval = egeria_cfg
                    .map(|c| bootstrap_done && global_step.is_multiple_of(c.n))
                    .unwrap_or(false)
                    && reference_available;

                let mut fp_cached = false;
                let eval_front = if do_eval {
                    freezer.as_ref().map(|f| f.front())
                } else {
                    None
                };
                let step_span = telemetry.span("train_step");
                let step_result = if let Some(front) = eval_front {
                    let r = self.model.train_step(&batch, Some(front))?;
                    let a_train = r.captured.clone().ok_or_else(|| {
                        TensorError::Numerical("capture hook returned nothing".into())
                    })?;
                    match (&mut async_ctrl, refmgr.as_mut()) {
                        (Some(ctrl), _) => {
                            let _ = ctrl.submit(batch.clone(), front, a_train);
                        }
                        (None, Some(rm)) => {
                            // A failed reference capture degrades to
                            // "don't decide yet": the evaluation is
                            // skipped (freezing on missing knowledge is
                            // the mistimed-freeze risk §4.2 warns about),
                            // training itself never aborts.
                            let a_ref = match rm.capture(&batch, front) {
                                Ok(a) => Some(a),
                                Err(e) => {
                                    eprintln!(
                                        "egeria: reference capture failed; skipping evaluation: {e}"
                                    );
                                    report.eval_skips += 1;
                                    telemetry.counter("trainer.eval_skips").inc();
                                    None
                                }
                            };
                            if let (Some(a_ref), Some(fr), Some(cfg)) =
                                (a_ref, freezer.as_mut(), egeria_cfg.as_ref())
                            {
                                let p = egeria_analysis::sp_loss(&a_train, &a_ref)?;
                                self.fold_plasticity(
                                    fr,
                                    &mut cache,
                                    &mut report,
                                    &telemetry,
                                    p,
                                    lr,
                                    front,
                                    global_step,
                                    &mut evals_since_ref_update,
                                )?;
                                if cfg.reference_update_every > 0
                                    && evals_since_ref_update >= cfg.reference_update_every
                                {
                                    rm.generate(self.model.as_ref())?;
                                    evals_since_ref_update = 0;
                                }
                            }
                        }
                        _ => {}
                    }
                    r
                } else if let (true, Some(c)) = (
                    prefix > 0
                        && egeria_cfg.map(|c| c.cache_fp).unwrap_or(false)
                        && self.model.supports_cached_fp(prefix),
                    cache.as_mut(),
                ) {
                    match c.get_batch(&batch.sample_ids, prefix)? {
                        Some(act) => {
                            fp_cached = true;
                            if telemetry.is_enabled() {
                                telemetry.instant(
                                    "cache_lookup",
                                    Some(global_step as u64),
                                    None,
                                    vec![("outcome", ArgValue::Str("hit"))],
                                );
                            }
                            self.model.train_step_from(&batch, prefix, &act, None)?
                        }
                        None => {
                            if telemetry.is_enabled() {
                                telemetry.instant(
                                    "cache_lookup",
                                    Some(global_step as u64),
                                    None,
                                    vec![("outcome", ArgValue::Str("miss"))],
                                );
                            }
                            // Fill the cache with the frozen boundary's
                            // activation while doing the full forward.
                            let r = self.model.train_step(&batch, Some(prefix - 1))?;
                            if let Some(act) = &r.captured {
                                c.put_batch(&batch.sample_ids, act, prefix)?;
                            }
                            r
                        }
                    }
                } else {
                    self.model.train_step(&batch, None)?
                };

                // Bootstrap monitoring happens at the same n-interval.
                if let (Some(b), Some(c)) = (bootstrap.as_mut(), egeria_cfg.as_ref()) {
                    if !b.is_done() && global_step.is_multiple_of(c.n) && b.observe(step_result.loss) {
                        // Critical period over: generate the reference.
                        if let Some(rm) = refmgr.as_mut() {
                            rm.generate(self.model.as_ref())?;
                        }
                        if c.controller == ControllerMode::Async {
                            if let Some(rm_owned) = refmgr.take() {
                                async_ctrl = Some(AsyncController::spawn_with_telemetry(
                                    rm_owned,
                                    c.cpu_load_gate,
                                    system_load_probe(),
                                    faults.clone(),
                                    telemetry.clone(),
                                ));
                            }
                        }
                    }
                }
                // Async reference refresh.
                if let (Some(ctrl), Some(c)) = (&async_ctrl, egeria_cfg.as_ref()) {
                    if c.reference_update_every > 0
                        && evals_since_ref_update >= c.reference_update_every
                    {
                        ctrl.update_reference(self.model.clone_boxed());
                        evals_since_ref_update = 0;
                    }
                }

                {
                    let _opt_span = telemetry.span("opt_step").iteration(global_step as u64);
                    let mut params = self.model.params_mut();
                    self.optimizer.step(&mut params)?;
                    drop(params);
                    self.model.zero_grad();
                }
                drop(
                    step_span
                        .iteration(global_step as u64)
                        .arg("frozen_prefix", self.model.frozen_prefix() as u64)
                        .arg("fp_cached", fp_cached),
                );
                epoch_loss += step_result.loss as f64;
                epoch_batches += 1;
                report.iterations.push(IterationRecord {
                    epoch: epoch as u32,
                    frozen_prefix: self.model.frozen_prefix() as u16,
                    fp_cached,
                });
                global_step += 1;
            }

            let (val_loss, val_metric) = match (&val, epoch % self.options.eval_every.max(1)) {
                (Some((vd, vl)), 0) => {
                    let (l, m) = evaluate(self.model.as_mut(), *vd, vl)?;
                    (Some(l), Some(m))
                }
                _ => (None, None),
            };
            report.epochs.push(EpochRecord {
                epoch,
                train_loss: (epoch_loss / epoch_batches.max(1) as f64) as f32,
                val_loss,
                val_metric,
                lr: epoch_lr,
                frozen_prefix: self.model.frozen_prefix(),
                active_param_fraction: self.model.active_param_fraction(),
            });
            if telemetry.is_enabled() {
                let pool = egeria_tensor::ThreadPool::global().stats();
                telemetry.gauge("pool.jobs").set(pool.jobs as f64);
                telemetry.gauge("pool.tasks").set(pool.tasks as f64);
                telemetry.gauge("pool.inline_jobs").set(pool.inline_jobs as f64);
                telemetry.instant(
                    "pool_occupancy",
                    Some(global_step as u64),
                    None,
                    vec![
                        ("jobs", ArgValue::U64(pool.jobs as u64)),
                        ("tasks", ArgValue::U64(pool.tasks as u64)),
                        ("inline_jobs", ArgValue::U64(pool.inline_jobs as u64)),
                    ],
                );
            }

            // Epoch-boundary checkpoint. A failed save is a logged
            // degradation, never a training failure.
            if let Some(s) = store.as_mut() {
                let every = self
                    .options
                    .checkpoint
                    .as_ref()
                    .map(|o| o.every.max(1))
                    .unwrap_or(1);
                if (epoch + 1) % every == 0 || epoch + 1 == self.options.epochs {
                    // Flush the activation store alongside the model
                    // checkpoint so a resumed run reopens a consistent
                    // cache (chunked backend; flat is a no-op). Failure is
                    // a degradation — the resume recomputes — never fatal.
                    if let Some(c) = cache.as_mut() {
                        if let Err(e) = c.persist() {
                            eprintln!(
                                "egeria: cache persist failed at epoch {epoch}: {e}; resume will recompute"
                            );
                        }
                    }
                    let ckpt = self.build_checkpoint(
                        epoch + 1,
                        global_step,
                        evals_since_ref_update,
                        &bootstrap,
                        &freezer,
                        &refmgr,
                        &report,
                        &cache,
                    );
                    let save_span = telemetry
                        .span("checkpoint_save")
                        .iteration(global_step as u64);
                    if let Err(e) = s.save(&ckpt) {
                        eprintln!("egeria: checkpoint save failed at epoch {epoch}: {e}");
                        s.save_errors += 1;
                        report.checkpoint_save_errors += 1;
                        telemetry.counter("checkpoint.save_errors").inc();
                    } else {
                        telemetry.counter("checkpoint.saves").inc();
                    }
                    drop(save_span);
                }
            }
        }
        if let Some(mut c) = cache {
            // Flush the chunked store at the run boundary (no-op on flat):
            // the on-disk state stays consistent for a later resume and the
            // reported disk-byte stats reflect what actually landed.
            if let Err(e) = c.persist() {
                eprintln!("egeria: cache persist failed at end of training: {e}");
            }
            report.cache_stats = c.stats();
        }
        if let Some(rm) = refmgr {
            report.reference_stats = rm.stats();
        }
        let health_state = health.state();
        report.health_level = health_state.level();
        report.health_reasons = match health_state {
            egeria_resil::HealthState::Healthy => Vec::new(),
            egeria_resil::HealthState::Degraded { reasons }
            | egeria_resil::HealthState::Critical { reasons } => {
                reasons.into_iter().map(str::to_string).collect()
            }
        };
        report.wall_seconds = started.elapsed().as_secs_f64();
        Ok(report)
    }

    /// The one plasticity-fold entry point shared by the sync and
    /// async-controller paths: fold the value into the freezer (which bumps
    /// the evaluation telemetry and runs the policy's LR-reboot guard
    /// exactly once), record the observation, apply the decision to the
    /// model/cache, and record the event. Before this existed, the two
    /// paths duplicated the sequence with divergent semantics (the async
    /// drain recorded plasticity points even for unfreeze evaluations whose
    /// value was never folded); policies now observe identical state
    /// regardless of controller mode.
    #[allow(clippy::too_many_arguments)]
    fn fold_plasticity(
        &mut self,
        freezer: &mut FreezingEngine,
        cache: &mut Option<ActivationCache>,
        report: &mut TrainReport,
        telemetry: &Telemetry,
        p: f32,
        lr: f32,
        module: usize,
        global_step: usize,
        evals_since_ref_update: &mut usize,
    ) -> Result<()> {
        let (obs, event) = freezer.observe_value(p, lr)?;
        if let Some(o) = &obs {
            record_plasticity(report, telemetry, global_step, module, o.raw, obs);
        }
        self.apply_event(event, cache)?;
        record_event(
            report,
            telemetry,
            global_step,
            event,
            self.model.frozen_prefix(),
            obs.map(|o| o.smoothed),
            freezer.policy_name(),
        );
        *evals_since_ref_update += 1;
        Ok(())
    }

    fn apply_event(
        &mut self,
        event: FreezeEvent,
        cache: &mut Option<ActivationCache>,
    ) -> Result<()> {
        match event {
            FreezeEvent::None => Ok(()),
            FreezeEvent::Froze(k) => {
                self.model.freeze_prefix(k)?;
                if let Some(c) = cache {
                    c.invalidate();
                }
                Ok(())
            }
            FreezeEvent::Unfroze => {
                self.model.unfreeze_all();
                if let Some(c) = cache {
                    c.invalidate();
                }
                Ok(())
            }
        }
    }

    /// Assembles the complete persistent state at an epoch boundary.
    ///
    /// In async mode the reference lives on the controller thread, so
    /// `reference` is `None` and resume regenerates it from the restored
    /// weights (async decisions are load-dependent and nondeterministic
    /// anyway; sync mode restores the exact reference for exact replay).
    #[allow(clippy::too_many_arguments)]
    fn build_checkpoint(
        &self,
        next_epoch: usize,
        global_step: usize,
        evals_since_ref_update: usize,
        bootstrap: &Option<BootstrapMonitor>,
        freezer: &Option<FreezingEngine>,
        refmgr: &Option<ReferenceManager>,
        report: &TrainReport,
        cache: &Option<ActivationCache>,
    ) -> TrainerCheckpoint {
        let params = self.model.params();
        let optimizer = self.optimizer.export_state(&params);
        TrainerCheckpoint {
            model_name: self.model.name().to_string(),
            next_epoch: next_epoch as u64,
            global_step: global_step as u64,
            evals_since_ref_update: evals_since_ref_update as u64,
            frozen_prefix: self.model.frozen_prefix() as u64,
            params: params
                .iter()
                .map(|p| (p.name.clone(), p.value.clone()))
                .collect(),
            state_buffers: self
                .model
                .state_buffers()
                .iter()
                .map(|t| (*t).clone())
                .collect(),
            optimizer,
            freezer: freezer.as_ref().map(|f| f.snapshot()),
            bootstrap: bootstrap.as_ref().map(|b| b.snapshot()),
            reference: refmgr.as_ref().and_then(|rm| rm.export_reference()),
            epochs: report.epochs.clone(),
            iterations: report.iterations.clone(),
            plasticity: report.plasticity.clone(),
            events: report.events.clone(),
            input_bytes: report.input_bytes,
            cache_store: cache
                .as_ref()
                .map(|c| c.store_kind().name().to_string())
                .unwrap_or_else(|| "flat".to_string()),
        }
    }

    /// Restores trainer state from a loaded checkpoint; returns the epoch
    /// to continue from.
    #[allow(clippy::too_many_arguments)]
    fn resume_from(
        &mut self,
        ckpt: &TrainerCheckpoint,
        bootstrap: &mut Option<BootstrapMonitor>,
        freezer: &mut Option<FreezingEngine>,
        refmgr: &mut Option<ReferenceManager>,
        async_ctrl: &mut Option<AsyncController>,
        report: &mut TrainReport,
        global_step: &mut usize,
        evals_since_ref_update: &mut usize,
        cache: &mut Option<ActivationCache>,
    ) -> Result<usize> {
        if ckpt.model_name != self.model.name() {
            return Err(TensorError::Corrupt(format!(
                "checkpoint is for model {:?}, trainer has {:?}",
                ckpt.model_name,
                self.model.name()
            )));
        }
        // Model parameters, by name.
        {
            let mut params = self.model.params_mut();
            if params.len() != ckpt.params.len() {
                return Err(TensorError::Corrupt(format!(
                    "checkpoint has {} params, model has {}",
                    ckpt.params.len(),
                    params.len()
                )));
            }
            for p in params.iter_mut() {
                let value = ckpt
                    .params
                    .iter()
                    .find(|(n, _)| *n == p.name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| {
                        TensorError::Corrupt(format!(
                            "checkpoint is missing parameter {:?}",
                            p.name
                        ))
                    })?;
                if value.dims() != p.value.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "resume",
                        lhs: p.value.dims().to_vec(),
                        rhs: value.dims().to_vec(),
                    });
                }
                p.value = value.clone();
            }
        }
        // Non-parameter state (BatchNorm running statistics), positional.
        {
            let mut bufs = self.model.state_buffers_mut();
            if bufs.len() != ckpt.state_buffers.len() {
                return Err(TensorError::Corrupt(format!(
                    "checkpoint has {} state buffers, model has {}",
                    ckpt.state_buffers.len(),
                    bufs.len()
                )));
            }
            for (dst, src) in bufs.iter_mut().zip(ckpt.state_buffers.iter()) {
                if src.dims() != dst.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "resume",
                        lhs: dst.dims().to_vec(),
                        rhs: src.dims().to_vec(),
                    });
                }
                **dst = src.clone();
            }
        }
        self.model.zero_grad();
        self.model.unfreeze_all();
        if ckpt.frozen_prefix > 0 {
            self.model.freeze_prefix(ckpt.frozen_prefix as usize)?;
        }
        {
            let params = self.model.params();
            self.optimizer.load_state(&ckpt.optimizer, &params)?;
        }
        if let (Some(fr), Some(s)) = (freezer.as_mut(), ckpt.freezer.as_ref()) {
            fr.restore(s)?;
        }
        if let (Some(b), Some(s)) = (bootstrap.as_mut(), ckpt.bootstrap.as_ref()) {
            b.restore(s);
        }
        // Reference model. The bootstrap-completion transition that
        // normally generates the reference (and, in async mode, spawns the
        // controller) is latched and will never re-fire after restore, so
        // both are reconstructed here explicitly.
        let bootstrap_done = bootstrap.as_ref().map(|b| b.is_done()).unwrap_or(false);
        if let Some(cfg) = self.options.egeria.as_ref() {
            if bootstrap_done {
                match cfg.controller {
                    ControllerMode::Sync => {
                        if let Some(rm) = refmgr.as_mut() {
                            match ckpt.reference.as_ref() {
                                Some(snap) => {
                                    rm.restore_reference(self.model.as_ref(), snap)?
                                }
                                None => rm.generate(self.model.as_ref())?,
                            }
                        }
                    }
                    ControllerMode::Async => {
                        if let Some(mut rm) = refmgr.take() {
                            rm.generate(self.model.as_ref())?;
                            *async_ctrl = Some(AsyncController::spawn_with_telemetry(
                                rm,
                                cfg.cpu_load_gate,
                                system_load_probe(),
                                self.options.faults.clone(),
                                self.options.telemetry.clone(),
                            ));
                        }
                    }
                }
            }
        }
        // Cache backend continuity: if the run that wrote this checkpoint
        // used a different cache backend, the on-disk layout in the cache
        // dir belongs to the other world (flat sample files vs chunked
        // shards). Wipe it so the resumed run starts from a clean cache
        // instead of carrying dead files alongside the new layout.
        if let Some(c) = cache.as_mut() {
            if c.store_kind().name() != ckpt.cache_store {
                eprintln!(
                    "egeria: cache backend changed across resume ({} -> {}); invalidating cache",
                    ckpt.cache_store,
                    c.store_kind().name()
                );
                c.invalidate();
            }
        }
        // Report accumulators, so the final report covers the whole run.
        report.epochs = ckpt.epochs.clone();
        report.iterations = ckpt.iterations.clone();
        report.plasticity = ckpt.plasticity.clone();
        report.events = ckpt.events.clone();
        report.input_bytes = ckpt.input_bytes;
        report.resumed_from_epoch = Some(ckpt.next_epoch as usize);
        *global_step = ckpt.global_step as usize;
        *evals_since_ref_update = ckpt.evals_since_ref_update as usize;
        Ok(ckpt.next_epoch as usize)
    }

    /// Applies a user-defined cyclical unfreeze (the `Custom` policy hook).
    pub fn custom_unfreeze(&mut self, freezer: &mut FreezingEngine) -> Result<()> {
        if self.options.egeria.map(|c| c.unfreeze) == Some(UnfreezePolicy::Custom) {
            freezer.unfreeze_now();
            self.model.unfreeze_all();
        }
        Ok(())
    }
}

/// Evaluates a model over a full dataset pass; returns `(loss, metric)`
/// averaged by sample count.
pub fn evaluate(model: &mut dyn Model, data: &dyn Dataset, loader: &DataLoader) -> Result<(f32, f32)> {
    let mut loss = 0.0f64;
    let mut metric = 0.0f64;
    let mut count = 0usize;
    for plan in loader.epoch_plan(0) {
        let batch = data.materialize(&plan.indices)?;
        let r = model.eval_batch(&batch)?;
        loss += r.loss as f64 * r.count as f64;
        metric += r.metric as f64 * r.count as f64;
        count += r.count;
    }
    let n = count.max(1) as f64;
    Ok(((loss / n) as f32, (metric / n) as f32))
}

fn batch_input_bytes(batch: &egeria_models::Batch) -> u64 {
    match &batch.input {
        egeria_models::Input::Image(t) => (t.numel() * 4) as u64,
        egeria_models::Input::Tokens(ids) => {
            ids.iter().map(|s| s.len() * 8).sum::<usize>() as u64
        }
        egeria_models::Input::Seq2Seq { src, tgt } => {
            (src.iter().map(|s| s.len()).sum::<usize>()
                + tgt.iter().map(|s| s.len()).sum::<usize>()) as u64
                * 8
        }
    }
}

fn record_plasticity(
    report: &mut TrainReport,
    telemetry: &Telemetry,
    iteration: usize,
    module: usize,
    raw: f32,
    obs: Option<crate::plasticity::PlasticityObservation>,
) {
    let smoothed = obs.map(|o| o.smoothed).unwrap_or(raw);
    report.plasticity.push(PlasticityPoint {
        iteration,
        module,
        raw,
        smoothed,
    });
    if telemetry.is_enabled() {
        telemetry.instant(
            "plasticity_probe",
            Some(iteration as u64),
            Some(module as u64),
            vec![
                ("raw", ArgValue::F64(raw as f64)),
                ("smoothed", ArgValue::F64(smoothed as f64)),
            ],
        );
    }
}

fn record_event(
    report: &mut TrainReport,
    telemetry: &Telemetry,
    iteration: usize,
    event: FreezeEvent,
    prefix: usize,
    value: Option<f32>,
    policy: &'static str,
) {
    let kind = match event {
        FreezeEvent::None => return,
        FreezeEvent::Froze(_) => "freeze",
        FreezeEvent::Unfroze => "unfreeze",
    };
    report.events.push(EventRecord {
        iteration,
        kind: kind.to_string(),
        prefix,
    });
    if telemetry.is_enabled() {
        let mut args = vec![
            (
                "action",
                ArgValue::Str(match event {
                    FreezeEvent::Froze(_) => "froze",
                    _ => "unfroze",
                }),
            ),
            ("frozen_prefix", ArgValue::U64(prefix as u64)),
            ("policy", ArgValue::Str(policy)),
        ];
        if let Some(v) = value {
            args.push(("value", ArgValue::F64(v as f64)));
        }
        telemetry.instant("freeze_decision", Some(iteration as u64), None, args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_data::images::{ImageDataConfig, SyntheticImages};
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_nn::sched::MultiStepDecay;

    fn tiny_setup(egeria: Option<EgeriaConfig>, epochs: usize) -> (EgeriaTrainer, SyntheticImages, DataLoader) {
        let model = resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            7,
        );
        let data = SyntheticImages::new(
            ImageDataConfig {
                samples: 64,
                classes: 4,
                size: 8,
                noise: 0.3,
                augment: true,
            },
            11,
        );
        let loader = DataLoader::new(64, 16, 13, true);
        let trainer = EgeriaTrainer::new(
            Box::new(model),
            Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4)),
            Box::new(MultiStepDecay::new(0.05, 0.1, vec![usize::MAX])),
            TrainerOptions {
                epochs,
                egeria,
                ..Default::default()
            },
        );
        (trainer, data, loader)
    }

    #[test]
    fn baseline_training_reduces_loss() {
        let (mut t, data, loader) = tiny_setup(None, 6);
        let report = t.train(&data, &loader, Some((&data, &loader))).unwrap();
        assert_eq!(report.epochs.len(), 6);
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(last < first, "loss {first} → {last}");
        assert!(!report.egeria);
        assert!(report.iterations.iter().all(|i| i.frozen_prefix == 0 && !i.fp_cached));
    }

    #[test]
    fn egeria_training_freezes_and_caches() {
        let cfg = EgeriaConfig {
            n: 2,
            w: 3,
            s: 2,
            t: 5.0, // Permissive: even a steady trend counts as stationary.
            bootstrap_rate: 0.9,
            ..Default::default()
        };
        let (mut t, data, loader) = tiny_setup(Some(cfg), 10);
        let report = t.train(&data, &loader, None).unwrap();
        assert!(report.egeria);
        let max_prefix = report.iterations.iter().map(|i| i.frozen_prefix).max().unwrap();
        assert!(max_prefix >= 1, "nothing froze");
        assert!(
            report.iterations.iter().any(|i| i.fp_cached),
            "cache never hit"
        );
        assert!(!report.plasticity.is_empty());
        assert!(report
            .events
            .iter()
            .any(|e| e.kind == "freeze"), "no freeze events recorded");
    }

    #[test]
    fn frozen_prefix_is_monotonic_without_unfreeze() {
        let cfg = EgeriaConfig {
            n: 2,
            w: 3,
            s: 2,
            t: 5.0,
            bootstrap_rate: 0.9,
            unfreeze: UnfreezePolicy::Never,
            ..Default::default()
        };
        let (mut t, data, loader) = tiny_setup(Some(cfg), 8);
        let report = t.train(&data, &loader, None).unwrap();
        let prefixes: Vec<u16> = report.iterations.iter().map(|i| i.frozen_prefix).collect();
        for w in prefixes.windows(2) {
            assert!(w[1] >= w[0], "prefix shrank without an unfreeze event");
        }
    }

    #[test]
    fn lr_decay_triggers_unfreeze_event() {
        // Schedule decays 100× at epoch 4; modules frozen before must thaw.
        let model = resnet_cifar(
            ResNetCifarConfig {
                n: 2,
                width: 4,
                classes: 4,
                ..Default::default()
            },
            7,
        );
        let data = SyntheticImages::new(
            ImageDataConfig {
                samples: 64,
                classes: 4,
                size: 8,
                noise: 0.3,
                augment: true,
            },
            11,
        );
        let loader = DataLoader::new(64, 16, 13, true);
        let cfg = EgeriaConfig {
            n: 2,
            w: 3,
            s: 2,
            t: 5.0,
            bootstrap_rate: 0.9,
            ..Default::default()
        };
        let mut t = EgeriaTrainer::new(
            Box::new(model),
            Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4)),
            Box::new(MultiStepDecay::new(0.05, 0.01, vec![4])),
            TrainerOptions {
                epochs: 8,
                egeria: Some(cfg),
                ..Default::default()
            },
        );
        let report = t.train(&data, &loader, None).unwrap();
        assert!(
            report.events.iter().any(|e| e.kind == "unfreeze"),
            "events: {:?}",
            report.events
        );
    }

    #[test]
    fn async_controller_mode_runs_to_completion() {
        let cfg = EgeriaConfig {
            n: 2,
            w: 3,
            s: 2,
            t: 5.0,
            bootstrap_rate: 0.9,
            controller: ControllerMode::Async,
            cpu_load_gate: 10.0, // Never gate in tests.
            ..Default::default()
        };
        let (mut t, data, loader) = tiny_setup(Some(cfg), 8);
        let report = t.train(&data, &loader, None).unwrap();
        assert_eq!(report.epochs.len(), 8);
        // Async decisions should still land and freeze something.
        let max_prefix = report.iterations.iter().map(|i| i.frozen_prefix).max().unwrap();
        assert!(max_prefix >= 1, "async mode froze nothing");
    }

    #[test]
    fn report_serializes_to_json() {
        let (mut t, data, loader) = tiny_setup(None, 2);
        let report = t.train(&data, &loader, None).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"epochs\""));
    }
}
