//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultInjector`] is armed with per-site plans ("skip the first `skip`
//! operations at this site, then fire `fire` times") and shared via `Arc`
//! with the components under test: the activation cache, the checkpoint
//! writer, the async controller, and the trainer's step loop. Each
//! component consults the injector at well-defined points and reacts the
//! way a real disk error, bit flip, controller stall, or process crash
//! would — which is what the crash/resume and degradation tests drive.
//!
//! Everything is counter-based and deterministic: the same arming plus the
//! same operation sequence always injects at the same operations.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A cache entry write (simulates ENOSPC / write failure).
    CacheWrite,
    /// A cache entry read (the bytes read back are corrupted).
    CacheRead,
    /// A checkpoint file write (simulates disk-full mid-save).
    CheckpointWrite,
    /// A checkpoint file read (the bytes read back are corrupted).
    CheckpointRead,
    /// One controller-side plasticity evaluation (the controller thread
    /// dies mid-eval).
    ControllerEval,
    /// One training step (the process "crashes" mid-epoch).
    TrainStep,
}

/// What the injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails outright (I/O error / crash / dead thread).
    Fail,
    /// The operation's bytes are corrupted (a bit flip in the payload).
    CorruptBytes,
}

#[derive(Debug, Clone, Copy)]
struct Plan {
    skip: usize,
    fire: usize,
    action: FaultAction,
    seen: usize,
    fired: usize,
}

/// Deterministic, thread-shared fault injector.
///
/// Cloneable via `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plans: Mutex<HashMap<FaultSite, Plan>>,
    injected: Mutex<HashMap<FaultSite, usize>>,
}

impl FaultInjector {
    /// Creates an injector with no armed faults.
    pub fn new() -> Arc<Self> {
        Arc::new(FaultInjector::default())
    }

    /// Arms a site: the first `skip` operations pass through, the next
    /// `fire` operations inject `action`, everything after passes again.
    /// Re-arming a site replaces its previous plan and counters.
    pub fn arm(&self, site: FaultSite, skip: usize, fire: usize, action: FaultAction) {
        self.plans.lock().insert(
            site,
            Plan {
                skip,
                fire,
                action,
                seen: 0,
                fired: 0,
            },
        );
    }

    /// Disarms a site (pending fires are dropped; injection counts remain).
    pub fn disarm(&self, site: FaultSite) {
        self.plans.lock().remove(&site);
    }

    /// Records one operation at `site` and returns the action to inject,
    /// if any. Components call this at each injection point.
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        let mut plans = self.plans.lock();
        let plan = plans.get_mut(&site)?;
        let idx = plan.seen;
        plan.seen += 1;
        if idx < plan.skip || plan.fired >= plan.fire {
            return None;
        }
        plan.fired += 1;
        let action = plan.action;
        drop(plans);
        *self.injected.lock().entry(site).or_insert(0) += 1;
        Some(action)
    }

    /// Convenience: `check` for sites whose only sensible action is `Fail`.
    pub fn should_fail(&self, site: FaultSite) -> bool {
        matches!(self.check(site), Some(FaultAction::Fail))
    }

    /// How many faults have been injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> usize {
        self.injected.lock().get(&site).copied().unwrap_or(0)
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> usize {
        self.injected.lock().values().sum()
    }

    /// Flips one bit in the middle of `bytes` (the canonical
    /// [`FaultAction::CorruptBytes`] effect). No-op on an empty buffer.
    pub fn corrupt(bytes: &mut [u8]) {
        if let Some(mid) = bytes.len().checked_sub(1) {
            bytes[mid / 2] ^= 0x20;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_inject() {
        let f = FaultInjector::new();
        for _ in 0..100 {
            assert!(f.check(FaultSite::CacheWrite).is_none());
        }
        assert_eq!(f.injected_total(), 0);
    }

    #[test]
    fn skip_then_fire_window() {
        let f = FaultInjector::new();
        f.arm(FaultSite::CacheWrite, 3, 2, FaultAction::Fail);
        let hits: Vec<bool> = (0..8)
            .map(|_| f.check(FaultSite::CacheWrite).is_some())
            .collect();
        assert_eq!(
            hits,
            vec![false, false, false, true, true, false, false, false]
        );
        assert_eq!(f.injected(FaultSite::CacheWrite), 2);
    }

    #[test]
    fn sites_are_independent() {
        let f = FaultInjector::new();
        f.arm(FaultSite::CacheRead, 0, 1, FaultAction::CorruptBytes);
        assert!(f.check(FaultSite::CacheWrite).is_none());
        assert_eq!(
            f.check(FaultSite::CacheRead),
            Some(FaultAction::CorruptBytes)
        );
        assert!(f.check(FaultSite::CacheRead).is_none());
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let clean = vec![0u8; 9];
        let mut dirty = clean.clone();
        FaultInjector::corrupt(&mut dirty);
        let flipped: u32 = clean
            .iter()
            .zip(dirty.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        // Empty buffers are left alone.
        let mut empty: Vec<u8> = Vec::new();
        FaultInjector::corrupt(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn rearming_resets_counters() {
        let f = FaultInjector::new();
        f.arm(FaultSite::TrainStep, 0, 1, FaultAction::Fail);
        assert!(f.should_fail(FaultSite::TrainStep));
        assert!(!f.should_fail(FaultSite::TrainStep));
        f.arm(FaultSite::TrainStep, 0, 1, FaultAction::Fail);
        assert!(f.should_fail(FaultSite::TrainStep));
        assert_eq!(f.injected(FaultSite::TrainStep), 2);
    }
}
