//! Deterministic fault injection for robustness testing.
//!
//! The fault plane lives in `egeria-resil` (it is shared with the serve
//! engine, which core depends on — a core-owned injector could not reach
//! it without a dependency cycle); this module re-exports it so
//! `egeria_core::faults::{FaultSite, FaultAction, FaultInjector}` and the
//! crate-root re-exports keep resolving.
//!
//! See `egeria_resil::fault` for the model: deterministic counter plans
//! ("skip `skip` operations, then fire `fire` times") plus seeded
//! xorshift schedules, both pure functions of the arming and the
//! operation sequence.

pub use egeria_resil::fault::{FaultAction, FaultInjector, FaultSite};
