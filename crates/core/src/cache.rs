//! Activation caching and prefetching (§4.3).
//!
//! Frozen-prefix output activations are serialized to disk keyed by sample
//! id. A hash table of the most recent batches stays "in GPU memory" (a
//! bounded in-process map here), and a prefetcher thread loads upcoming
//! samples from disk ahead of the training loop, exploiting the loader's
//! known-future batch order.
//!
//! Two disk backends sit behind one API (DESIGN §5j): **flat** writes one
//! serialized tensor file per sample (the original layout), **chunked**
//! delegates to [`egeria_store::ChunkStore`] — chunk grid, codec chain,
//! sharded files, capacity-bounded eviction. A lossless chunked cache is
//! bit-exact with the flat one, and both honour the same degradation
//! matrix: cache trouble is a miss + recompute, never an abort. The
//! backend is picked by [`crate::config::EgeriaConfig::cache_store`]
//! (env-overridable via `EGERIA_CACHE_STORE`).

use crate::config::CacheStoreKind;
use crate::faults::{FaultAction, FaultInjector, FaultSite};
use egeria_obs::Telemetry;
use egeria_resil::health::HealthMonitor;
use egeria_store::{ChunkStore, StoreConfig, StoreStats};
use egeria_tensor::{serialize, Result, Tensor, TensorError};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// Cache performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Batch lookups fully served from memory or disk.
    pub hits: usize,
    /// Batch lookups with at least one missing sample.
    pub misses: usize,
    /// Samples currently resident in memory.
    pub mem_entries: usize,
    /// Cumulative bytes ever written to disk (monotonic; survives
    /// invalidation). The write-volume counter.
    pub disk_bytes_written: u64,
    /// Bytes currently live on disk: decremented on delete, invalidate,
    /// quarantine, and eviction. The number a capacity bound is enforced
    /// against — the old single `disk_bytes` conflated this with the
    /// cumulative counter and never went down.
    pub disk_bytes_live: u64,
    /// Samples loaded from disk by prefetch/get.
    pub disk_reads: usize,
    /// Disk writes that failed (ENOSPC etc.); the entry stays
    /// memory-resident and training continues.
    pub write_errors: usize,
    /// Corrupt on-disk entries detected (bad magic/length/checksum); each
    /// is deleted and recomputed on the next full forward.
    pub corrupt_entries: usize,
    /// Prefetch reads that failed (injected or I/O); the entry is skipped
    /// and the later direct lookup serves it instead.
    pub prefetch_errors: usize,
}

impl CacheStats {
    /// Whether any degradation (failed write or corrupt entry) occurred.
    pub fn degraded(&self) -> bool {
        self.write_errors > 0 || self.corrupt_entries > 0
    }
}

/// On-disk + in-memory activation cache keyed by sample id.
///
/// Disk trouble never stops training: a failed write keeps the entry
/// memory-resident and counts [`CacheStats::write_errors`]; a corrupt or
/// unreadable on-disk entry is deleted, counted in
/// [`CacheStats::corrupt_entries`], and reported as a miss so the trainer
/// recomputes the activation.
pub struct ActivationCache {
    dir: PathBuf,
    backend: Backend,
    mem: HashMap<u64, Tensor>,
    /// Batch-granularity eviction queue: the ids of the most recent batches.
    recent: VecDeque<Vec<u64>>,
    mem_batches: usize,
    /// Frozen-prefix length the cached activations were computed at; a
    /// change invalidates everything.
    valid_prefix: Option<usize>,
    stats: CacheStats,
    /// Flat backend only: per-id on-disk entry sizes, so deletions can
    /// decrement [`CacheStats::disk_bytes_live`] exactly.
    flat_sizes: HashMap<u64, u64>,
    faults: Option<Arc<FaultInjector>>,
    telemetry: Telemetry,
    health: Option<Arc<HealthMonitor>>,
}

/// The disk layer behind the cache.
enum Backend {
    /// One `sample_{id}.act` file per sample under `dir`.
    Flat,
    /// The egeria-store chunk/shard layout rooted at `dir`.
    Chunked(Box<ChunkStore>),
}

/// What a backend disk lookup produced (used to keep the hit/miss/corrupt
/// accounting identical across backends).
enum DiskFetch {
    Got(Tensor),
    Absent,
    /// The entry (flat) or its chunk (chunked) was quarantined.
    Corrupt,
}

impl ActivationCache {
    /// Creates a **flat-backend** cache rooted at `dir` (created if
    /// missing), keeping the most recent `mem_batches` batches in memory.
    pub fn new(dir: impl Into<PathBuf>, mem_batches: usize) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ActivationCache {
            dir,
            backend: Backend::Flat,
            mem: HashMap::new(),
            recent: VecDeque::new(),
            mem_batches: mem_batches.max(1),
            valid_prefix: None,
            stats: CacheStats::default(),
            flat_sizes: HashMap::new(),
            faults: None,
            telemetry: Telemetry::disabled(),
            health: None,
        })
    }

    /// Creates a **chunked-backend** cache over an [`egeria_store`]
    /// chunk/shard store rooted at `dir`. A corrupt manifest left in the
    /// directory degrades to an empty store and counts one
    /// `corrupt_entries` (the degraded-open row of the matrix).
    pub fn with_store(
        dir: impl Into<PathBuf>,
        mem_batches: usize,
        store_cfg: StoreConfig,
    ) -> Result<Self> {
        let dir = dir.into();
        let store = ChunkStore::open(&dir, store_cfg)?;
        let mut cache = ActivationCache {
            dir,
            backend: Backend::Chunked(Box::new(store)),
            mem: HashMap::new(),
            recent: VecDeque::new(),
            mem_batches: mem_batches.max(1),
            valid_prefix: None,
            stats: CacheStats::default(),
            flat_sizes: HashMap::new(),
            faults: None,
            telemetry: Telemetry::disabled(),
            health: None,
        };
        if let Backend::Chunked(store) = &cache.backend {
            if store.recovered_corrupt_manifest() {
                cache.stats.corrupt_entries += 1;
                cache.telemetry.counter("cache.corrupt_entries").inc();
            }
            // Adopt the persisted prefix: a resumed run whose frozen
            // prefix matches keeps its cached activations instead of
            // wiping them on the first put (flat can't do this — its
            // layout stores no prefix — so resume always recomputes
            // there).
            cache.valid_prefix = store.valid_prefix().map(|p| p as usize);
        }
        cache.sync_disk_stats();
        Ok(cache)
    }

    /// Builds the cache for a config, honouring the env overrides
    /// (`EGERIA_CACHE_STORE`, `EGERIA_CACHE_CODEC`,
    /// `EGERIA_CACHE_DISK_MB`). The trainer's entry point.
    pub fn for_config(
        dir: impl Into<PathBuf>,
        cfg: &crate::config::EgeriaConfig,
    ) -> Result<Self> {
        let kind = CacheStoreKind::from_env().unwrap_or(cfg.cache_store);
        match kind {
            CacheStoreKind::Flat => ActivationCache::new(dir, cfg.cache_mem_batches),
            CacheStoreKind::Chunked => {
                let codec = egeria_store::StoreCodec::from_env().unwrap_or(cfg.cache_codec);
                let disk_mb = crate::config::cache_disk_mb_from_env().or(cfg.cache_disk_mb);
                let store_cfg = StoreConfig {
                    codec,
                    disk_cap_bytes: disk_mb.map(|mb| mb * 1024 * 1024),
                    ..StoreConfig::default()
                };
                ActivationCache::with_store(dir, cfg.cache_mem_batches, store_cfg)
            }
        }
    }

    /// Which backend this cache runs on.
    pub fn store_kind(&self) -> CacheStoreKind {
        match &self.backend {
            Backend::Flat => CacheStoreKind::Flat,
            Backend::Chunked(_) => CacheStoreKind::Chunked,
        }
    }

    /// Chunked-backend store counters (`None` on the flat backend).
    pub fn store_stats(&self) -> Option<StoreStats> {
        match &self.backend {
            Backend::Flat => None,
            Backend::Chunked(store) => Some(store.stats()),
        }
    }

    /// Flushes pending store writes and saves the store manifest (chunked
    /// backend; a no-op on flat). Called at checkpoint boundaries so a
    /// resumed run reopens a consistent store.
    pub fn persist(&mut self) -> Result<()> {
        if let Backend::Chunked(store) = &mut self.backend {
            let outcome = store.persist()?;
            if outcome.failed > 0 {
                self.stats.write_errors += outcome.failed;
                self.telemetry
                    .counter("cache.write_errors")
                    .add(outcome.failed as u64);
            }
            self.sync_disk_stats();
        }
        Ok(())
    }

    /// Attaches a health monitor: a quarantined entry marks the cache
    /// degraded; the next clean hit resolves it (the slot was refilled).
    pub fn set_health(&mut self, health: Arc<HealthMonitor>) {
        self.health = Some(health);
    }

    /// Attaches a telemetry handle; cache counters (`cache.hits`,
    /// `cache.misses`, `cache.corrupt_entries`, `cache.write_errors`,
    /// `cache.prefetched`) mirror [`CacheStats`] into its registry. On
    /// the chunked backend the store mirrors its own counters under the
    /// `store.` prefix.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Backend::Chunked(store) = &mut self.backend {
            store.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    fn count_hit(&mut self) {
        self.stats.hits += 1;
        self.telemetry.counter("cache.hits").inc();
        // A clean hit means the quarantined slots (if any) were refilled.
        if let Some(h) = &self.health {
            h.resolve("cache-quarantine");
        }
    }

    fn count_miss(&mut self) {
        self.stats.misses += 1;
        self.telemetry.counter("cache.misses").inc();
    }

    /// Attaches a fault injector (testing): [`FaultSite::CacheWrite`] makes
    /// entry writes fail, [`FaultSite::CacheRead`] corrupts the bytes read
    /// back from disk.
    pub fn set_faults(&mut self, faults: Option<Arc<FaultInjector>>) {
        self.faults = faults;
    }

    fn read_entry(&mut self, id: u64) -> Option<Vec<u8>> {
        let mut bytes = fs::read(self.path_of(id)).ok()?;
        if let Some(FaultAction::CorruptBytes) = self
            .faults
            .as_ref()
            .and_then(|f| f.check(FaultSite::CacheRead))
        {
            FaultInjector::corrupt(&mut bytes);
        }
        Some(bytes)
    }

    /// A disk entry failed validation: drop it so the slot is refilled by
    /// the next full forward pass instead of failing forever. Flat deletes
    /// the sample's file; chunked removes exactly its slot from the store.
    fn quarantine(&mut self, id: u64) {
        match &mut self.backend {
            Backend::Flat => {
                let _ = fs::remove_file(self.dir.join(format!("sample_{id}.act")));
                if let Some(sz) = self.flat_sizes.remove(&id) {
                    self.stats.disk_bytes_live = self.stats.disk_bytes_live.saturating_sub(sz);
                }
            }
            Backend::Chunked(store) => store.delete_samples(&[id]),
        }
        self.sync_disk_stats();
        self.stats.corrupt_entries += 1;
        self.telemetry.counter("cache.corrupt_entries").inc();
        if let Some(h) = &self.health {
            h.degrade("cache-quarantine");
        }
        eprintln!(
            "egeria: corrupt cache entry for sample {id}; deleted, will recompute"
        );
    }

    /// The store quarantined `n` chunks during a lookup; mirror them into
    /// the cache's corruption accounting (chunk granularity: one corrupt
    /// chunk counts once however many of its samples the lookup touched).
    fn count_store_corruption(&mut self, n: u64) {
        self.stats.corrupt_entries += n as usize;
        self.telemetry.counter("cache.corrupt_entries").add(n);
        if let Some(h) = &self.health {
            h.degrade("cache-quarantine");
        }
        self.sync_disk_stats();
    }

    /// Refreshes the disk-footprint stats from the backend's accounting.
    fn sync_disk_stats(&mut self) {
        if let Backend::Chunked(store) = &self.backend {
            let s = store.stats();
            self.stats.disk_bytes_written = s.bytes_encoded;
            self.stats.disk_bytes_live = s.live_bytes;
        }
    }

    fn path_of(&self, id: u64) -> PathBuf {
        self.dir.join(format!("sample_{id}.act"))
    }

    /// One sample's disk lookup, dispatched by backend, with the
    /// hit/miss/corrupt accounting the two backends must share: a decode
    /// failure quarantines (flat: the file; chunked: the chunk) and
    /// reports [`DiskFetch::Corrupt`]; a clean read counts `disk_reads`.
    fn fetch_from_disk(&mut self, id: u64) -> DiskFetch {
        if matches!(self.backend, Backend::Flat) {
            match self.read_entry(id) {
                Some(bytes) => match serialize::from_bytes(&bytes) {
                    Ok(t) => {
                        self.stats.disk_reads += 1;
                        DiskFetch::Got(t)
                    }
                    Err(_) => {
                        self.quarantine(id);
                        DiskFetch::Corrupt
                    }
                },
                None => DiskFetch::Absent,
            }
        } else {
            let (got, corrupt_delta) = {
                let Backend::Chunked(store) = &mut self.backend else {
                    unreachable!("backend checked above")
                };
                let before = store.stats().corrupt_chunks;
                let got = store.get(id);
                (got, store.stats().corrupt_chunks - before)
            };
            if corrupt_delta > 0 {
                // The store already quarantined the chunk(s); mirror the
                // count and report corrupt so the lookup reads as a miss.
                self.count_store_corruption(corrupt_delta);
                return DiskFetch::Corrupt;
            }
            match got {
                Some(t) => {
                    // Injected read corruption, consumed (as on flat) only
                    // when an entry actually came off disk.
                    if let Some(FaultAction::CorruptBytes) = self
                        .faults
                        .as_ref()
                        .and_then(|f| f.check(FaultSite::CacheRead))
                    {
                        self.quarantine(id);
                        return DiskFetch::Corrupt;
                    }
                    self.stats.disk_reads += 1;
                    DiskFetch::Got(t)
                }
                None => DiskFetch::Absent,
            }
        }
    }

    /// Removes the given samples' disk entries (shape-audit quarantine),
    /// keeping the live-byte accounting exact on both backends.
    fn delete_disk_entries(&mut self, ids: &[u64]) {
        match &mut self.backend {
            Backend::Flat => {
                for &id in ids {
                    let _ = fs::remove_file(self.dir.join(format!("sample_{id}.act")));
                    if let Some(sz) = self.flat_sizes.remove(&id) {
                        self.stats.disk_bytes_live =
                            self.stats.disk_bytes_live.saturating_sub(sz);
                    }
                }
            }
            Backend::Chunked(store) => store.delete_samples(ids),
        }
        self.sync_disk_stats();
    }

    /// The frozen-prefix length current entries are valid for.
    pub fn valid_prefix(&self) -> Option<usize> {
        self.valid_prefix
    }

    /// Invalidates everything (called when the frozen prefix changes: the
    /// cached activations were produced by a different sub-network).
    pub fn invalidate(&mut self) {
        self.mem.clear();
        self.recent.clear();
        self.valid_prefix = None;
        match &mut self.backend {
            Backend::Flat => {
                if let Ok(entries) = fs::read_dir(&self.dir) {
                    for e in entries.flatten() {
                        let _ = fs::remove_file(e.path());
                    }
                }
                self.flat_sizes.clear();
            }
            Backend::Chunked(store) => {
                store.clear();
                store.set_valid_prefix(None);
            }
        }
        self.stats.mem_entries = 0;
        self.stats.disk_bytes_live = 0;
    }

    /// Stores one batch's frozen-prefix activation, computed at prefix
    /// length `prefix`. Invalidates the cache first if the prefix changed.
    ///
    /// Disk-write failures (ENOSPC and friends) are *not* errors: the
    /// entry stays memory-resident, `write_errors` is counted, and the
    /// next lookup after eviction simply misses and recomputes. Only
    /// caller bugs (batch/id mismatch) return `Err`.
    pub fn put_batch(&mut self, ids: &[u64], activation: &Tensor, prefix: usize) -> Result<()> {
        if self.valid_prefix != Some(prefix) {
            self.invalidate();
            self.valid_prefix = Some(prefix);
            if let Backend::Chunked(store) = &mut self.backend {
                store.set_valid_prefix(Some(prefix as u64));
            }
        }
        let b = *activation.dims().first().ok_or(TensorError::ShapeMismatch {
            op: "cache put",
            lhs: activation.dims().to_vec(),
            rhs: vec![ids.len()],
        })?;
        if b != ids.len() {
            return Err(TensorError::ShapeMismatch {
                op: "cache put",
                lhs: activation.dims().to_vec(),
                rhs: vec![ids.len()],
            });
        }
        for (row, &id) in ids.iter().enumerate() {
            let sample = activation.narrow(0, row, 1)?;
            // The injected-write-failure check runs identically for both
            // backends, *before* any backend write, so `write_errors`
            // counts are backend-independent (the golden run pins them).
            let injected_fail = self
                .faults
                .as_ref()
                .map(|f| f.should_fail(FaultSite::CacheWrite))
                .unwrap_or(false);
            let write = if injected_fail {
                Err(TensorError::Io("injected cache write failure".into()))
            } else {
                match &mut self.backend {
                    Backend::Flat => {
                        let bytes = serialize::to_bytes(&sample);
                        fs::write(self.path_of(id), &bytes)
                            .map(|()| {
                                self.stats.disk_bytes_written += bytes.len() as u64;
                                self.stats.disk_bytes_live += bytes.len() as u64;
                                if let Some(old) = self.flat_sizes.insert(id, bytes.len() as u64) {
                                    // Overwrite: the old copy's bytes are gone.
                                    self.stats.disk_bytes_live =
                                        self.stats.disk_bytes_live.saturating_sub(old);
                                }
                            })
                            .map_err(TensorError::from)
                    }
                    Backend::Chunked(store) => store.put(id, &sample),
                }
            };
            if let Err(e) = write {
                if self.stats.write_errors == 0 {
                    eprintln!(
                        "egeria: cache write failed ({e}); continuing without disk persistence"
                    );
                }
                self.stats.write_errors += 1;
                self.telemetry.counter("cache.write_errors").inc();
            }
            self.mem.insert(id, sample);
        }
        self.sync_disk_stats();
        self.recent.push_back(ids.to_vec());
        while self.recent.len() > self.mem_batches {
            if let Some(old) = self.recent.pop_front() {
                for id in old {
                    // An id may appear in a newer resident batch; only evict
                    // if no other recent batch holds it.
                    if !self.recent.iter().any(|b| b.contains(&id)) {
                        self.mem.remove(&id);
                    }
                }
            }
        }
        self.stats.mem_entries = self.mem.len();
        Ok(())
    }

    /// Loads the given samples from disk into memory ahead of use.
    /// Unreadable or corrupt entries are quarantined and skipped —
    /// prefetching is best-effort and never fails the caller. On the
    /// chunked backend the wanted ids go through the store's concurrent
    /// shard readers in one coalesced fetch.
    pub fn prefetch(&mut self, ids: &[u64]) -> Result<usize> {
        let mut loaded = 0;
        let mut wanted: Vec<u64> = Vec::new();
        for &id in ids {
            if self.mem.contains_key(&id) {
                continue;
            }
            // Injected prefetch-read failure: the entry is skipped (left
            // on disk, untouched); the later lookup reads it directly.
            let injected_fail = self
                .faults
                .as_ref()
                .map(|f| f.should_fail(FaultSite::PrefetchRead))
                .unwrap_or(false);
            if injected_fail {
                self.stats.prefetch_errors += 1;
                self.telemetry.counter("cache.prefetch_errors").inc();
                continue;
            }
            wanted.push(id);
        }
        if matches!(self.backend, Backend::Flat) {
            for id in wanted {
                if let Some(bytes) = self.read_entry(id) {
                    match serialize::from_bytes(&bytes) {
                        Ok(t) => {
                            self.mem.insert(id, t);
                            self.stats.disk_reads += 1;
                            self.telemetry.counter("cache.prefetched").inc();
                            loaded += 1;
                        }
                        Err(_) => self.quarantine(id),
                    }
                }
            }
        } else {
            let (results, corrupt_delta) = {
                let Backend::Chunked(store) = &mut self.backend else {
                    unreachable!("backend checked above")
                };
                let before = store.stats().corrupt_chunks;
                let results = store.get_many(&wanted);
                (results, store.stats().corrupt_chunks - before)
            };
            if corrupt_delta > 0 {
                self.count_store_corruption(corrupt_delta);
            }
            for (&id, got) in wanted.iter().zip(results) {
                let Some(t) = got else { continue };
                // Injected read corruption, consumed (as on flat) only
                // when an entry actually came off disk.
                if let Some(FaultAction::CorruptBytes) = self
                    .faults
                    .as_ref()
                    .and_then(|f| f.check(FaultSite::CacheRead))
                {
                    self.quarantine(id);
                    continue;
                }
                self.mem.insert(id, t);
                self.stats.disk_reads += 1;
                self.telemetry.counter("cache.prefetched").inc();
                loaded += 1;
            }
        }
        self.recent.push_back(ids.to_vec());
        while self.recent.len() > self.mem_batches {
            if let Some(old) = self.recent.pop_front() {
                for id in old {
                    if !self.recent.iter().any(|b| b.contains(&id)) {
                        self.mem.remove(&id);
                    }
                }
            }
        }
        self.stats.mem_entries = self.mem.len();
        Ok(loaded)
    }

    /// Fetches a whole batch; `None` (a miss) if any sample is absent from
    /// both memory and disk, corrupt on disk, shape-inconsistent, or the
    /// cache is valid for a different prefix. A corrupt or mismatched
    /// entry is quarantined so the subsequent recompute refills it —
    /// cache trouble degrades to a miss, never an error, and a hit is
    /// counted only once the batch has actually been assembled (a lookup
    /// that ends in recompute must read as a miss; DESIGN.md §5a).
    pub fn get_batch(&mut self, ids: &[u64], prefix: usize) -> Result<Option<Tensor>> {
        if self.valid_prefix != Some(prefix) {
            self.count_miss();
            return Ok(None);
        }
        let mut parts: Vec<Tensor> = Vec::with_capacity(ids.len());
        let mut disk_ids: Vec<u64> = Vec::new();
        let mut expected_tail: Option<Vec<usize>> = None;
        for &id in ids {
            let (part, from_disk) = if let Some(t) = self.mem.get(&id) {
                (t.clone(), false)
            } else {
                match self.fetch_from_disk(id) {
                    DiskFetch::Got(t) => (t, true),
                    DiskFetch::Absent | DiskFetch::Corrupt => {
                        self.count_miss();
                        return Ok(None);
                    }
                }
            };
            if from_disk {
                disk_ids.push(id);
            }
            // Shape audit before assembly: every entry must be one sample
            // (`[1, ...]`) with the same trailing dims. A stale on-disk
            // entry from a different geometry deserializes fine but would
            // fail `concat` — which used to abort training *after* a hit
            // had already been counted.
            let dims = part.dims().to_vec();
            let shape_ok = dims.first() == Some(&1)
                && expected_tail
                    .as_deref()
                    .map(|t| t == &dims[1..])
                    .unwrap_or(true);
            if !shape_ok {
                // Which disk entry carries the stale geometry is not
                // identifiable from the parts alone (the first one read
                // sets the expectation), so quarantine every disk-sourced
                // part of this lookup; the recompute rewrites the whole
                // batch. Memory-resident parts were written by this
                // process at this prefix and are dropped only if the
                // offender is resident itself.
                if !from_disk {
                    self.mem.remove(&id);
                }
                self.delete_disk_entries(&disk_ids);
                for did in &disk_ids {
                    self.mem.remove(did);
                }
                self.stats.corrupt_entries += 1;
                self.telemetry.counter("cache.corrupt_entries").inc();
                if let Some(h) = &self.health {
                    h.degrade("cache-quarantine");
                }
                eprintln!(
                    "egeria: shape-mismatched cache entry in batch lookup (sample {id}); quarantined, will recompute"
                );
                self.count_miss();
                self.stats.mem_entries = self.mem.len();
                return Ok(None);
            }
            expected_tail.get_or_insert_with(|| dims[1..].to_vec());
            parts.push(part);
        }
        let views: Vec<&Tensor> = parts.iter().collect();
        match Tensor::concat(&views, 0) {
            Ok(batch) => {
                self.count_hit();
                Ok(Some(batch))
            }
            // Unreachable given the shape audit above, but the degradation
            // matrix still applies: assembly trouble is a miss + recompute.
            Err(_) => {
                self.count_miss();
                Ok(None)
            }
        }
    }

    /// Performance counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A background prefetcher: feeds upcoming batch id lists to a thread that
/// loads them into the shared cache.
pub struct Prefetcher {
    tx: Option<crossbeam::channel::Sender<Vec<u64>>>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Count of fully-processed hints plus the condvar that announces each
    /// increment, so waiters can block instead of polling.
    processed: Arc<(std::sync::Mutex<u64>, std::sync::Condvar)>,
}

impl Prefetcher {
    /// Spawns the prefetch thread over a shared cache.
    pub fn spawn(cache: Arc<Mutex<ActivationCache>>) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<Vec<u64>>(64);
        let processed = Arc::new((std::sync::Mutex::new(0u64), std::sync::Condvar::new()));
        let signal = Arc::clone(&processed);
        let handle = std::thread::spawn(move || {
            while let Ok(ids) = rx.recv() {
                let _ = cache.lock().prefetch(&ids);
                let (count, cv) = &*signal;
                *count.lock().expect("prefetch counter poisoned") += 1;
                cv.notify_all();
            }
        });
        Prefetcher {
            tx: Some(tx),
            handle: Some(handle),
            processed,
        }
    }

    /// Enqueues an upcoming batch's sample ids (non-blocking; drops the
    /// hint if the queue is full — prefetching is best-effort).
    pub fn hint(&self, ids: Vec<u64>) {
        if let Some(tx) = &self.tx {
            let _ = tx.try_send(ids);
        }
    }

    /// Blocks until at least `count` hints have been fully processed or
    /// `timeout` elapses; returns whether the count was reached. Dropped
    /// hints (full queue) never count, so callers should bound the wait.
    pub fn wait_processed(&self, count: u64, timeout: std::time::Duration) -> bool {
        let (lock, cv) = &*self.processed;
        let guard = lock.lock().expect("prefetch counter poisoned");
        let (_guard, res) = cv
            .wait_timeout_while(guard, timeout, |n| *n < count)
            .expect("prefetch counter poisoned");
        !res.timed_out()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("egeria_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut c = ActivationCache::new(tmp_dir("rt"), 5).unwrap();
        let mut rng = Rng::new(1);
        let act = Tensor::randn(&[3, 2, 4, 4], &mut rng);
        c.put_batch(&[10, 20, 30], &act, 2).unwrap();
        let got = c.get_batch(&[10, 20, 30], 2).unwrap().unwrap();
        assert_eq!(got, act);
        // Different order reassembles correctly.
        let reordered = c.get_batch(&[30, 10, 20], 2).unwrap().unwrap();
        assert_eq!(reordered.narrow(0, 0, 1).unwrap(), act.narrow(0, 2, 1).unwrap());
    }

    #[test]
    fn miss_on_unknown_sample() {
        let mut c = ActivationCache::new(tmp_dir("miss"), 5).unwrap();
        let act = Tensor::ones(&[1, 2]);
        c.put_batch(&[1], &act, 0).unwrap();
        assert!(c.get_batch(&[2], 0).unwrap().is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn prefix_change_invalidates() {
        let mut c = ActivationCache::new(tmp_dir("prefix"), 5).unwrap();
        let act = Tensor::ones(&[1, 2]);
        c.put_batch(&[1], &act, 1).unwrap();
        assert!(c.get_batch(&[1], 1).unwrap().is_some());
        // Asking at a different prefix misses.
        assert!(c.get_batch(&[1], 2).unwrap().is_none());
        // Writing at the new prefix wipes the old entries.
        c.put_batch(&[2], &act, 2).unwrap();
        assert!(c.get_batch(&[1], 2).unwrap().is_none());
        assert!(c.get_batch(&[2], 2).unwrap().is_some());
    }

    #[test]
    fn memory_window_evicts_but_disk_persists() {
        let mut c = ActivationCache::new(tmp_dir("evict"), 2).unwrap();
        let act = Tensor::ones(&[1, 2]);
        for id in 0..6u64 {
            c.put_batch(&[id], &act, 0).unwrap();
        }
        assert!(c.stats().mem_entries <= 2);
        // Six distinct writes: written is cumulative, live matches because
        // nothing has been deleted yet.
        let per_entry = c.stats().disk_bytes_written / 6;
        assert!(per_entry > 0);
        assert_eq!(c.stats().disk_bytes_written, per_entry * 6);
        assert_eq!(c.stats().disk_bytes_live, c.stats().disk_bytes_written);
        // Evicted entries still load from disk.
        let got = c.get_batch(&[0], 0).unwrap();
        assert!(got.is_some());
        assert!(c.stats().disk_reads >= 1);
        // Quarantining one entry decrements live but never written: the
        // old single `disk_bytes` counter conflated the two and only ever
        // grew.
        c.quarantine(0);
        assert_eq!(c.stats().disk_bytes_live, per_entry * 5);
        assert_eq!(c.stats().disk_bytes_written, per_entry * 6);
        // Invalidation empties the disk: live drops to zero, written is
        // still the cumulative write volume.
        c.invalidate();
        assert_eq!(c.stats().disk_bytes_live, 0);
        assert_eq!(c.stats().disk_bytes_written, per_entry * 6);
        // Overwriting an id counts the fresh bytes once in live.
        c.put_batch(&[1], &act, 0).unwrap();
        c.put_batch(&[1], &act, 0).unwrap();
        assert_eq!(c.stats().disk_bytes_live, per_entry);
        assert_eq!(c.stats().disk_bytes_written, per_entry * 8);
    }

    #[test]
    fn prefetch_loads_into_memory() {
        let dir = tmp_dir("prefetch");
        let mut c = ActivationCache::new(&dir, 3).unwrap();
        let act = Tensor::ones(&[2, 2]);
        c.put_batch(&[1, 2], &act, 0).unwrap();
        // Push the entries out of memory.
        for id in 10..16u64 {
            c.put_batch(&[id], &Tensor::ones(&[1, 2]), 0).unwrap();
        }
        let before = c.stats().disk_reads;
        let loaded = c.prefetch(&[1, 2]).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(c.stats().disk_reads, before + 2);
        // Now get_batch is a pure memory hit (no further disk reads).
        let after_prefetch = c.stats().disk_reads;
        let _ = c.get_batch(&[1, 2], 0).unwrap().unwrap();
        assert_eq!(c.stats().disk_reads, after_prefetch);
    }

    #[test]
    fn prefetcher_thread_warms_the_cache() {
        let dir = tmp_dir("thread");
        let cache = Arc::new(Mutex::new(ActivationCache::new(&dir, 4).unwrap()));
        {
            let mut c = cache.lock();
            c.put_batch(&[7], &Tensor::ones(&[1, 3]), 0).unwrap();
            for id in 100..110u64 {
                c.put_batch(&[id], &Tensor::ones(&[1, 3]), 0).unwrap();
            }
        }
        let p = Prefetcher::spawn(Arc::clone(&cache));
        p.hint(vec![7]);
        // Block on the processed-count condvar — no sleep polling.
        assert!(
            p.wait_processed(1, std::time::Duration::from_secs(5)),
            "prefetch never landed"
        );
        assert!(cache.lock().mem.contains_key(&7));
        drop(p);
    }

    #[test]
    fn rejects_mismatched_ids_and_batch() {
        let mut c = ActivationCache::new(tmp_dir("shape"), 2).unwrap();
        let act = Tensor::ones(&[2, 2]);
        assert!(c.put_batch(&[1], &act, 0).is_err());
    }

    #[test]
    fn corrupt_disk_entry_degrades_to_miss_and_recompute() {
        let mut c = ActivationCache::new(tmp_dir("corrupt"), 1).unwrap();
        let act = Tensor::ones(&[1, 4]);
        c.put_batch(&[5], &act, 0).unwrap();
        // Evict from memory so the next get goes to disk.
        c.put_batch(&[6], &act, 0).unwrap();
        // Flip a byte of the on-disk entry.
        let path = c.path_of(5);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        // Corruption is detected, the entry quarantined, and the lookup is
        // a plain miss (Ok(None)), not an error.
        let got = c.get_batch(&[5], 0).unwrap();
        assert!(got.is_none());
        assert_eq!(c.stats().corrupt_entries, 1);
        assert!(c.stats().degraded());
        assert!(!path.exists(), "corrupt entry must be deleted");
        // Refill (the trainer's recompute) and read back cleanly.
        c.put_batch(&[5], &act, 0).unwrap();
        assert!(c.get_batch(&[5], 0).unwrap().is_some());
    }

    #[test]
    fn injected_read_corruption_degrades_to_miss() {
        let mut c = ActivationCache::new(tmp_dir("faultread"), 1).unwrap();
        let faults = FaultInjector::new();
        faults.arm(FaultSite::CacheRead, 0, 1, FaultAction::CorruptBytes);
        c.set_faults(Some(faults.clone()));
        let act = Tensor::ones(&[1, 4]);
        c.put_batch(&[1], &act, 0).unwrap();
        c.put_batch(&[2], &act, 0).unwrap(); // evict 1 from memory
        assert!(c.get_batch(&[1], 0).unwrap().is_none());
        assert_eq!(c.stats().corrupt_entries, 1);
        assert_eq!(faults.injected(FaultSite::CacheRead), 1);
        // Fault window exhausted: refill and the cache works again.
        c.put_batch(&[1], &act, 0).unwrap();
        assert!(c.get_batch(&[1], 0).unwrap().is_some());
    }

    #[test]
    fn write_failure_keeps_training_alive_via_memory() {
        let mut c = ActivationCache::new(tmp_dir("faultwrite"), 2).unwrap();
        let faults = FaultInjector::new();
        // Every write fails: the disk is "full" for the whole test.
        faults.arm(FaultSite::CacheWrite, 0, usize::MAX, FaultAction::Fail);
        c.set_faults(Some(faults));
        let act = Tensor::ones(&[1, 4]);
        c.put_batch(&[1], &act, 0).unwrap(); // Ok despite the dead disk
        assert!(c.stats().write_errors >= 1);
        // Memory-resident entry still serves hits.
        assert!(c.get_batch(&[1], 0).unwrap().is_some());
        // After eviction the entry is gone (never reached disk): a miss,
        // not an error.
        c.put_batch(&[2], &act, 0).unwrap();
        c.put_batch(&[3], &act, 0).unwrap();
        assert!(c.get_batch(&[1], 0).unwrap().is_none());
    }

    #[test]
    fn stale_shape_mismatched_disk_entry_is_a_miss_not_an_abort() {
        // The audited bug class: an on-disk entry left behind by a run
        // with a different activation geometry deserializes fine but
        // cannot be concatenated with its batch. Before the shape audit
        // this aborted training via the concat error *after* counting a
        // hit; the degradation matrix (DESIGN.md §5a) requires a
        // quarantine + miss + recompute, with counters to match.
        let tele = Telemetry::enabled();
        let mut c = ActivationCache::new(tmp_dir("stale"), 1).unwrap();
        c.set_telemetry(tele.clone());
        let act = Tensor::ones(&[2, 4]);
        c.put_batch(&[1, 2], &act, 0).unwrap();
        c.put_batch(&[9], &Tensor::ones(&[1, 4]), 0).unwrap(); // evict 1, 2
        // Overwrite sample 1 on disk with a differently-shaped tensor, as
        // a stale file from another geometry would be.
        let stale = serialize::to_bytes(&Tensor::ones(&[1, 7]));
        fs::write(c.path_of(1), &stale).unwrap();
        let got = c.get_batch(&[1, 2], 0).unwrap();
        assert!(got.is_none(), "mismatched entry must degrade to a miss");
        assert_eq!(c.stats().hits, 0, "no hit may be counted for a recompute");
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().corrupt_entries, 1);
        assert!(!c.path_of(1).exists(), "stale entry must be quarantined");
        // Telemetry counters mirror the stats exactly.
        let snap = tele.metrics_snapshot();
        assert_eq!(snap.counter("cache.hits"), None);
        assert_eq!(snap.counter("cache.misses"), Some(1));
        assert_eq!(snap.counter("cache.corrupt_entries"), Some(1));
        // Recompute refills the slot and the next lookup is a real hit.
        c.put_batch(&[1, 2], &act, 0).unwrap();
        assert!(c.get_batch(&[1, 2], 0).unwrap().is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(tele.metrics_snapshot().counter("cache.hits"), Some(1));
    }

    #[test]
    fn degradation_matrix_counters_match_stats() {
        // Pin the §5a matrix end to end: every degraded path counts a
        // miss (never a hit) and mirrors into telemetry.
        let tele = Telemetry::enabled();
        let mut c = ActivationCache::new(tmp_dir("matrix"), 1).unwrap();
        c.set_telemetry(tele.clone());
        let act = Tensor::ones(&[1, 4]);
        // Row 1: absent entry → miss.
        assert!(c.get_batch(&[404], 0).unwrap().is_none());
        // Row 2: corrupt on-disk bytes → quarantine + miss.
        c.put_batch(&[404], &act, 0).unwrap();
        c.put_batch(&[5], &act, 0).unwrap(); // evict 404 from memory
        fs::write(c.path_of(404), b"garbage").unwrap();
        assert!(c.get_batch(&[404], 0).unwrap().is_none());
        // Row 3: write failure → entry memory-resident, training alive.
        let faults = FaultInjector::new();
        faults.arm(FaultSite::CacheWrite, 0, 1, FaultAction::Fail);
        c.set_faults(Some(faults));
        c.put_batch(&[6], &act, 0).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.corrupt_entries, s.write_errors), (0, 2, 1, 1));
        let snap = tele.metrics_snapshot();
        assert_eq!(snap.counter("cache.misses"), Some(2));
        assert_eq!(snap.counter("cache.corrupt_entries"), Some(1));
        assert_eq!(snap.counter("cache.write_errors"), Some(1));
        assert_eq!(snap.counter("cache.hits"), None);
    }

    #[test]
    fn injected_prefetch_failure_skips_entry_and_direct_lookup_heals() {
        let mut c = ActivationCache::new(tmp_dir("prefetchfault"), 1).unwrap();
        let faults = FaultInjector::new();
        faults.arm(FaultSite::PrefetchRead, 0, 1, FaultAction::Fail);
        c.set_faults(Some(faults));
        let act = Tensor::ones(&[1, 4]);
        c.put_batch(&[1], &act, 0).unwrap();
        c.put_batch(&[2], &act, 0).unwrap(); // evict 1 from memory
        let loaded = c.prefetch(&[1]).unwrap();
        assert_eq!(loaded, 0, "injected failure skips the entry");
        assert_eq!(c.stats().prefetch_errors, 1);
        // The entry was left intact on disk: a direct lookup serves it.
        assert!(c.get_batch(&[1], 0).unwrap().is_some());
    }

    #[test]
    fn quarantine_degrades_health_and_clean_hit_resolves_it() {
        let t = Telemetry::enabled();
        let health = HealthMonitor::new(t.clone());
        let mut c = ActivationCache::new(tmp_dir("healthq"), 1).unwrap();
        c.set_health(Arc::clone(&health));
        let act = Tensor::ones(&[1, 4]);
        c.put_batch(&[1], &act, 0).unwrap();
        c.put_batch(&[2], &act, 0).unwrap(); // evict 1 from memory
        fs::write(c.path_of(1), b"garbage").unwrap();
        assert!(c.get_batch(&[1], 0).unwrap().is_none());
        assert_eq!(health.level(), 1, "quarantine degrades health");
        // Recompute refills the slot; the clean hit resolves the tag.
        c.put_batch(&[1], &act, 0).unwrap();
        assert!(c.get_batch(&[1], 0).unwrap().is_some());
        assert_eq!(health.level(), 0);
    }

    fn chunked_cache(tag: &str, mem_batches: usize) -> ActivationCache {
        let cfg = StoreConfig {
            chunk_samples: 4,
            chunks_per_shard: 2,
            ..StoreConfig::default()
        };
        ActivationCache::with_store(tmp_dir(tag), mem_batches, cfg).unwrap()
    }

    #[test]
    fn chunked_put_then_get_round_trips() {
        let mut c = chunked_cache("ck_rt", 5);
        assert_eq!(c.store_kind(), CacheStoreKind::Chunked);
        let mut rng = Rng::new(1);
        let act = Tensor::randn(&[3, 2, 4, 4], &mut rng);
        c.put_batch(&[10, 20, 30], &act, 2).unwrap();
        let got = c.get_batch(&[10, 20, 30], 2).unwrap().unwrap();
        assert_eq!(got, act, "lossless chunked reads must be bit-exact");
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn chunked_survives_reopen_and_reads_from_disk() {
        let dir = tmp_dir("ck_reopen");
        let cfg = StoreConfig {
            chunk_samples: 4,
            chunks_per_shard: 2,
            ..StoreConfig::default()
        };
        let mut rng = Rng::new(3);
        let act = Tensor::randn(&[2, 3], &mut rng);
        {
            let mut c = ActivationCache::with_store(&dir, 5, cfg).unwrap();
            c.put_batch(&[1, 2], &act, 1).unwrap();
            c.persist().unwrap();
            assert!(c.stats().disk_bytes_live > 0);
            assert_eq!(c.stats().disk_bytes_written, c.stats().disk_bytes_live);
        }
        let mut c = ActivationCache::with_store(&dir, 5, cfg).unwrap();
        // The store's manifest carries the prefix across restarts, so a
        // same-prefix put does NOT invalidate the inherited entries.
        assert_eq!(c.valid_prefix(), Some(1));
        assert!(c.stats().disk_bytes_live > 0, "inherited bytes count as live");
        c.put_batch(&[3], &Tensor::ones(&[1, 3]), 1).unwrap();
        let got = c.get_batch(&[1, 2], 1).unwrap().unwrap();
        assert_eq!(got, act);
        assert_eq!(c.stats().disk_reads, 2);
    }

    #[test]
    fn chunked_corrupt_shard_quarantines_chunk_and_degrades_to_miss() {
        let dir = tmp_dir("ck_corrupt");
        let cfg = StoreConfig {
            chunk_samples: 4,
            chunks_per_shard: 2,
            ..StoreConfig::default()
        };
        let act = Tensor::ones(&[1, 8]);
        {
            let mut c = ActivationCache::with_store(&dir, 1, cfg).unwrap();
            // ids 0..4 land in chunk 0, ids 4..8 in chunk 1.
            for id in 0..8u64 {
                c.put_batch(&[id], &act, 0).unwrap();
            }
            c.persist().unwrap();
        }
        // Reopen so reads go to the shard file, not the store's decoded
        // block cache.
        let mut c = ActivationCache::with_store(&dir, 1, cfg).unwrap();
        let live_before = c.stats().disk_bytes_live;
        // Flip bytes in the middle of the shard file.
        let shard = c.dir.join("shard_00000.egs");
        let mut bytes = fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        let end = (mid + 8).min(bytes.len());
        for b in &mut bytes[mid..end] {
            *b ^= 0xFF;
        }
        fs::write(&shard, &bytes).unwrap();
        // One of the two chunks is hit; its lookup is a miss, the chunk is
        // quarantined (counted once), and live bytes shrink. The other
        // chunk's samples still read back — chunk granularity, not
        // whole-cache.
        let mut missed: Vec<u64> = Vec::new();
        let mut hits = 0;
        for id in 0..8u64 {
            match c.get_batch(&[id], 0).unwrap() {
                Some(t) => {
                    assert_eq!(t, act);
                    hits += 1;
                }
                None => missed.push(id),
            }
        }
        assert_eq!(missed.len(), 4, "exactly one 4-sample chunk is lost");
        assert_eq!(hits, 4);
        assert_eq!(c.stats().corrupt_entries, 1, "one corrupt chunk counts once");
        assert!(c.stats().degraded());
        assert!(c.stats().disk_bytes_live < live_before);
        // Refill the lost samples (the trainer's recompute) and recover.
        for &id in &missed {
            c.put_batch(&[id], &act, 0).unwrap();
        }
        c.persist().unwrap();
        for id in 0..8u64 {
            assert!(c.get_batch(&[id], 0).unwrap().is_some());
        }
    }

    #[test]
    fn chunked_prefix_change_invalidates_store() {
        let mut c = chunked_cache("ck_prefix", 5);
        let act = Tensor::ones(&[1, 2]);
        c.put_batch(&[1], &act, 1).unwrap();
        c.persist().unwrap();
        assert!(c.stats().disk_bytes_live > 0);
        c.put_batch(&[2], &act, 2).unwrap();
        assert!(c.get_batch(&[1], 2).unwrap().is_none());
        assert!(c.get_batch(&[2], 2).unwrap().is_some());
        let st = c.store_stats().unwrap();
        assert_eq!(st.live_bytes, c.stats().disk_bytes_live);
    }

    #[test]
    fn chunked_prefetch_coalesces_and_warms_memory() {
        let dir = tmp_dir("ck_prefetch");
        let cfg = StoreConfig {
            chunk_samples: 4,
            chunks_per_shard: 2,
            ..StoreConfig::default()
        };
        let act = Tensor::ones(&[1, 4]);
        {
            let mut c = ActivationCache::with_store(&dir, 2, cfg).unwrap();
            for id in 0..12u64 {
                c.put_batch(&[id], &act, 0).unwrap();
            }
            c.persist().unwrap();
        }
        // Reopen: the decoded-block cache is cold, so the prefetch has to
        // coalesce real shard reads.
        let mut c = ActivationCache::with_store(&dir, 2, cfg).unwrap();
        let before = c.stats().disk_reads;
        // ids 0..8 span two chunks in the same shard: one coalesced fetch.
        let loaded = c.prefetch(&[0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert_eq!(loaded, 8);
        assert_eq!(c.stats().disk_reads, before + 8);
        assert!(c.store_stats().unwrap().coalesced_reads >= 1);
        let after = c.stats().disk_reads;
        let _ = c.get_batch(&[6, 7], 0).unwrap().unwrap();
        assert_eq!(c.stats().disk_reads, after, "prefetched ids hit memory");
    }

    #[test]
    fn chunked_injected_faults_match_flat_counters() {
        // The injected write fault fires before the backend write, and the
        // injected read corruption consumes per entry read — so the
        // golden-run counters are backend-independent.
        let mut c = chunked_cache("ck_fault", 1);
        let faults = FaultInjector::new();
        faults.arm(FaultSite::CacheWrite, 0, 1, FaultAction::Fail);
        faults.arm(FaultSite::CacheRead, 0, 1, FaultAction::CorruptBytes);
        c.set_faults(Some(faults.clone()));
        let act = Tensor::ones(&[1, 4]);
        c.put_batch(&[1], &act, 0).unwrap(); // write fault: memory-only
        assert_eq!(c.stats().write_errors, 1);
        assert!(c.get_batch(&[1], 0).unwrap().is_some(), "memory still serves");
        c.put_batch(&[2], &act, 0).unwrap(); // evicts 1 from memory
        c.persist().unwrap();
        // id 2 is on disk; the armed read fault corrupts it on the way in.
        c.put_batch(&[3], &act, 0).unwrap(); // evicts 2 from memory
        assert!(c.get_batch(&[2], 0).unwrap().is_none());
        assert_eq!(c.stats().corrupt_entries, 1);
        assert_eq!(faults.injected(FaultSite::CacheRead), 1);
    }

    #[test]
    fn prefetch_skips_corrupt_entries() {
        let mut c = ActivationCache::new(tmp_dir("prefetchcorrupt"), 1).unwrap();
        let act = Tensor::ones(&[1, 4]);
        c.put_batch(&[1], &act, 0).unwrap();
        c.put_batch(&[2], &act, 0).unwrap();
        c.put_batch(&[3], &act, 0).unwrap(); // evict 1 and 2 from memory
        fs::write(c.path_of(1), b"garbage").unwrap();
        let loaded = c.prefetch(&[1, 2]).unwrap();
        assert_eq!(loaded, 1, "only the intact entry loads");
        assert_eq!(c.stats().corrupt_entries, 1);
    }
}
