//! Activation caching and prefetching (§4.3).
//!
//! Frozen-prefix output activations are serialized to disk keyed by sample
//! id. A hash table of the most recent batches stays "in GPU memory" (a
//! bounded in-process map here), and a prefetcher thread loads upcoming
//! samples from disk ahead of the training loop, exploiting the loader's
//! known-future batch order.

use egeria_tensor::{serialize, Result, Tensor, TensorError};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// Cache performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Batch lookups fully served from memory or disk.
    pub hits: usize,
    /// Batch lookups with at least one missing sample.
    pub misses: usize,
    /// Samples currently resident in memory.
    pub mem_entries: usize,
    /// Total bytes written to disk.
    pub disk_bytes: u64,
    /// Samples loaded from disk by prefetch/get.
    pub disk_reads: usize,
}

/// On-disk + in-memory activation cache keyed by sample id.
pub struct ActivationCache {
    dir: PathBuf,
    mem: HashMap<u64, Tensor>,
    /// Batch-granularity eviction queue: the ids of the most recent batches.
    recent: VecDeque<Vec<u64>>,
    mem_batches: usize,
    /// Frozen-prefix length the cached activations were computed at; a
    /// change invalidates everything.
    valid_prefix: Option<usize>,
    stats: CacheStats,
}

impl ActivationCache {
    /// Creates a cache rooted at `dir` (created if missing), keeping the
    /// most recent `mem_batches` batches in memory.
    pub fn new(dir: impl Into<PathBuf>, mem_batches: usize) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| TensorError::Numerical(format!("cache dir: {e}")))?;
        Ok(ActivationCache {
            dir,
            mem: HashMap::new(),
            recent: VecDeque::new(),
            mem_batches: mem_batches.max(1),
            valid_prefix: None,
            stats: CacheStats::default(),
        })
    }

    fn path_of(&self, id: u64) -> PathBuf {
        self.dir.join(format!("sample_{id}.act"))
    }

    /// The frozen-prefix length current entries are valid for.
    pub fn valid_prefix(&self) -> Option<usize> {
        self.valid_prefix
    }

    /// Invalidates everything (called when the frozen prefix changes: the
    /// cached activations were produced by a different sub-network).
    pub fn invalidate(&mut self) {
        self.mem.clear();
        self.recent.clear();
        self.valid_prefix = None;
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let _ = fs::remove_file(e.path());
            }
        }
        self.stats.mem_entries = 0;
        self.stats.disk_bytes = 0;
    }

    /// Stores one batch's frozen-prefix activation, computed at prefix
    /// length `prefix`. Invalidates the cache first if the prefix changed.
    pub fn put_batch(&mut self, ids: &[u64], activation: &Tensor, prefix: usize) -> Result<()> {
        if self.valid_prefix != Some(prefix) {
            self.invalidate();
            self.valid_prefix = Some(prefix);
        }
        let b = *activation.dims().first().ok_or(TensorError::ShapeMismatch {
            op: "cache put",
            lhs: activation.dims().to_vec(),
            rhs: vec![ids.len()],
        })?;
        if b != ids.len() {
            return Err(TensorError::ShapeMismatch {
                op: "cache put",
                lhs: activation.dims().to_vec(),
                rhs: vec![ids.len()],
            });
        }
        for (row, &id) in ids.iter().enumerate() {
            let sample = activation.narrow(0, row, 1)?;
            let bytes = serialize::to_bytes(&sample);
            fs::write(self.path_of(id), &bytes)
                .map_err(|e| TensorError::Numerical(format!("cache write: {e}")))?;
            self.stats.disk_bytes += bytes.len() as u64;
            self.mem.insert(id, sample);
        }
        self.recent.push_back(ids.to_vec());
        while self.recent.len() > self.mem_batches {
            if let Some(old) = self.recent.pop_front() {
                for id in old {
                    // An id may appear in a newer resident batch; only evict
                    // if no other recent batch holds it.
                    if !self.recent.iter().any(|b| b.contains(&id)) {
                        self.mem.remove(&id);
                    }
                }
            }
        }
        self.stats.mem_entries = self.mem.len();
        Ok(())
    }

    /// Loads the given samples from disk into memory ahead of use.
    pub fn prefetch(&mut self, ids: &[u64]) -> Result<usize> {
        let mut loaded = 0;
        for &id in ids {
            if self.mem.contains_key(&id) {
                continue;
            }
            let path = self.path_of(id);
            if let Ok(bytes) = fs::read(&path) {
                let t = serialize::from_bytes(&bytes)?;
                self.mem.insert(id, t);
                self.stats.disk_reads += 1;
                loaded += 1;
            }
        }
        self.recent.push_back(ids.to_vec());
        while self.recent.len() > self.mem_batches {
            if let Some(old) = self.recent.pop_front() {
                for id in old {
                    if !self.recent.iter().any(|b| b.contains(&id)) {
                        self.mem.remove(&id);
                    }
                }
            }
        }
        self.stats.mem_entries = self.mem.len();
        Ok(loaded)
    }

    /// Fetches a whole batch; `None` (a miss) if any sample is absent from
    /// both memory and disk, or if the cache is valid for a different
    /// prefix.
    pub fn get_batch(&mut self, ids: &[u64], prefix: usize) -> Result<Option<Tensor>> {
        if self.valid_prefix != Some(prefix) {
            self.stats.misses += 1;
            return Ok(None);
        }
        let mut parts: Vec<Tensor> = Vec::with_capacity(ids.len());
        for &id in ids {
            if let Some(t) = self.mem.get(&id) {
                parts.push(t.clone());
                continue;
            }
            let path = self.path_of(id);
            match fs::read(&path) {
                Ok(bytes) => {
                    let t = serialize::from_bytes(&bytes)?;
                    self.stats.disk_reads += 1;
                    parts.push(t);
                }
                Err(_) => {
                    self.stats.misses += 1;
                    return Ok(None);
                }
            }
        }
        self.stats.hits += 1;
        let views: Vec<&Tensor> = parts.iter().collect();
        Ok(Some(Tensor::concat(&views, 0)?))
    }

    /// Performance counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A background prefetcher: feeds upcoming batch id lists to a thread that
/// loads them into the shared cache.
pub struct Prefetcher {
    tx: Option<crossbeam::channel::Sender<Vec<u64>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns the prefetch thread over a shared cache.
    pub fn spawn(cache: Arc<Mutex<ActivationCache>>) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<Vec<u64>>(64);
        let handle = std::thread::spawn(move || {
            while let Ok(ids) = rx.recv() {
                let _ = cache.lock().prefetch(&ids);
            }
        });
        Prefetcher {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Enqueues an upcoming batch's sample ids (non-blocking; drops the
    /// hint if the queue is full — prefetching is best-effort).
    pub fn hint(&self, ids: Vec<u64>) {
        if let Some(tx) = &self.tx {
            let _ = tx.try_send(ids);
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("egeria_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut c = ActivationCache::new(tmp_dir("rt"), 5).unwrap();
        let mut rng = Rng::new(1);
        let act = Tensor::randn(&[3, 2, 4, 4], &mut rng);
        c.put_batch(&[10, 20, 30], &act, 2).unwrap();
        let got = c.get_batch(&[10, 20, 30], 2).unwrap().unwrap();
        assert_eq!(got, act);
        // Different order reassembles correctly.
        let reordered = c.get_batch(&[30, 10, 20], 2).unwrap().unwrap();
        assert_eq!(reordered.narrow(0, 0, 1).unwrap(), act.narrow(0, 2, 1).unwrap());
    }

    #[test]
    fn miss_on_unknown_sample() {
        let mut c = ActivationCache::new(tmp_dir("miss"), 5).unwrap();
        let act = Tensor::ones(&[1, 2]);
        c.put_batch(&[1], &act, 0).unwrap();
        assert!(c.get_batch(&[2], 0).unwrap().is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn prefix_change_invalidates() {
        let mut c = ActivationCache::new(tmp_dir("prefix"), 5).unwrap();
        let act = Tensor::ones(&[1, 2]);
        c.put_batch(&[1], &act, 1).unwrap();
        assert!(c.get_batch(&[1], 1).unwrap().is_some());
        // Asking at a different prefix misses.
        assert!(c.get_batch(&[1], 2).unwrap().is_none());
        // Writing at the new prefix wipes the old entries.
        c.put_batch(&[2], &act, 2).unwrap();
        assert!(c.get_batch(&[1], 2).unwrap().is_none());
        assert!(c.get_batch(&[2], 2).unwrap().is_some());
    }

    #[test]
    fn memory_window_evicts_but_disk_persists() {
        let mut c = ActivationCache::new(tmp_dir("evict"), 2).unwrap();
        let act = Tensor::ones(&[1, 2]);
        for id in 0..6u64 {
            c.put_batch(&[id], &act, 0).unwrap();
        }
        assert!(c.stats().mem_entries <= 2);
        // Evicted entries still load from disk.
        let got = c.get_batch(&[0], 0).unwrap();
        assert!(got.is_some());
        assert!(c.stats().disk_reads >= 1);
    }

    #[test]
    fn prefetch_loads_into_memory() {
        let dir = tmp_dir("prefetch");
        let mut c = ActivationCache::new(&dir, 3).unwrap();
        let act = Tensor::ones(&[2, 2]);
        c.put_batch(&[1, 2], &act, 0).unwrap();
        // Push the entries out of memory.
        for id in 10..16u64 {
            c.put_batch(&[id], &Tensor::ones(&[1, 2]), 0).unwrap();
        }
        let before = c.stats().disk_reads;
        let loaded = c.prefetch(&[1, 2]).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(c.stats().disk_reads, before + 2);
        // Now get_batch is a pure memory hit (no further disk reads).
        let after_prefetch = c.stats().disk_reads;
        let _ = c.get_batch(&[1, 2], 0).unwrap().unwrap();
        assert_eq!(c.stats().disk_reads, after_prefetch);
    }

    #[test]
    fn prefetcher_thread_warms_the_cache() {
        let dir = tmp_dir("thread");
        let cache = Arc::new(Mutex::new(ActivationCache::new(&dir, 4).unwrap()));
        {
            let mut c = cache.lock();
            c.put_batch(&[7], &Tensor::ones(&[1, 3]), 0).unwrap();
            for id in 100..110u64 {
                c.put_batch(&[id], &Tensor::ones(&[1, 3]), 0).unwrap();
            }
        }
        let p = Prefetcher::spawn(Arc::clone(&cache));
        p.hint(vec![7]);
        // Wait for the prefetch to land.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if cache.lock().mem.contains_key(&7) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "prefetch never landed");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        drop(p);
    }

    #[test]
    fn rejects_mismatched_ids_and_batch() {
        let mut c = ActivationCache::new(tmp_dir("shape"), 2).unwrap();
        let act = Tensor::ones(&[2, 2]);
        assert!(c.put_batch(&[1], &act, 0).is_err());
    }
}
