//! Per-module plasticity tracking (Equations 1–2 and the windowed linear
//! fit of Algorithm 1).

use egeria_analysis::series::{moving_average, window_slope, window_std};
use egeria_analysis::sp_loss;
use egeria_tensor::{Result, Tensor};

/// The outcome of folding one plasticity measurement into a module's
/// history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlasticityObservation {
    /// The raw SP loss `P_i`.
    pub raw: f32,
    /// The moving-average value appended to the history (Equation 2).
    pub smoothed: f32,
    /// The slope of the window linear fit, when ≥2 smoothed points exist.
    pub slope: Option<f32>,
    /// Consecutive evaluations with `|slope| < T` so far.
    pub stale_count: usize,
    /// Whether the freeze criterion (`stale_count ≥ S`) is met.
    pub converged: bool,
}

/// The complete persistent state of a [`PlasticityTracker`], exposed for
/// checkpointing. Restoring it reproduces the tracker's future decisions
/// exactly (the histories, stale counter and criteria are its only state).
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerSnapshot {
    /// Raw SP-loss history.
    pub raw: Vec<f32>,
    /// Smoothed (Equation 2) history.
    pub smoothed: Vec<f32>,
    /// Consecutive sub-tolerance evaluations so far.
    pub stale: usize,
    /// Current window `W`.
    pub w: usize,
    /// Current stale threshold `S`.
    pub s: usize,
    /// Slope tolerance `T`.
    pub t: f32,
}

/// Plasticity history of one layer module.
#[derive(Debug, Clone)]
pub struct PlasticityTracker {
    raw: Vec<f32>,
    smoothed: Vec<f32>,
    stale: usize,
    w: usize,
    s: usize,
    t: f32,
}

impl PlasticityTracker {
    /// Creates a tracker with window `w`, stale threshold `s`, tolerance
    /// `t`.
    pub fn new(w: usize, s: usize, t: f32) -> Self {
        PlasticityTracker {
            raw: Vec::new(),
            smoothed: Vec::new(),
            stale: 0,
            w: w.max(1),
            s: s.max(1),
            t,
        }
    }

    /// Folds one raw plasticity value into the history.
    pub fn observe_value(&mut self, p: f32) -> Result<PlasticityObservation> {
        self.raw.push(p);
        let smoothed = moving_average(&self.raw, self.w)?;
        self.smoothed.push(smoothed);
        let slope = window_slope(&self.smoothed, self.w);
        // Algorithm 1 line 10: `s < T` on the fitted slope, with two
        // refinements over the paper's plain comparison. (1) The magnitude
        // is used, so an anomalous steep *decrease* also counts as
        // still-changing. (2) The tolerance is a *trend-to-variation*
        // ratio: the total predicted change of the *smoothed* curve over
        // the window, `|slope|·(W−1)`, is compared against `T` times the
        // *raw* window's standard deviation (the SGD noise floor of
        // Equation 2's input). A consistent trend therefore blocks freezing
        // regardless of the curve's absolute magnitude, while trendless
        // noise of any size counts as stationary — this makes one default
        // `T` portable across models whose SP-loss scales differ by orders
        // of magnitude (the paper re-tunes an absolute T per task
        // instead).
        let std = window_std(&self.raw, self.w);
        if let (Some(sl), Some(sd)) = (slope, std) {
            let span = self.w.min(self.smoothed.len()).saturating_sub(1) as f32;
            // A hard zero std means a perfectly flat (converged) curve.
            let stationary = sl.abs() * span <= self.t * sd.max(f32::EPSILON);
            if stationary {
                self.stale += 1;
            } else {
                self.stale = 0;
            }
        }
        Ok(PlasticityObservation {
            raw: p,
            smoothed,
            slope,
            stale_count: self.stale,
            converged: self.stale >= self.s,
        })
    }

    /// Computes the SP-loss plasticity of a pair of activations and folds
    /// it in (Equation 1 + Equation 2 in one step).
    pub fn observe(&mut self, a_train: &Tensor, a_ref: &Tensor) -> Result<PlasticityObservation> {
        let p = sp_loss(a_train, a_ref)?;
        self.observe_value(p)
    }

    /// The raw plasticity history.
    pub fn raw_history(&self) -> &[f32] {
        &self.raw
    }

    /// The smoothed plasticity history (`pList` in Algorithm 1).
    pub fn smoothed_history(&self) -> &[f32] {
        &self.smoothed
    }

    /// Serializable view of the tracker for checkpointing.
    pub fn snapshot(&self) -> TrackerSnapshot {
        TrackerSnapshot {
            raw: self.raw.clone(),
            smoothed: self.smoothed.clone(),
            stale: self.stale,
            w: self.w,
            s: self.s,
            t: self.t,
        }
    }

    /// Rebuilds a tracker from a [`TrackerSnapshot`].
    pub fn from_snapshot(s: &TrackerSnapshot) -> Self {
        PlasticityTracker {
            raw: s.raw.clone(),
            smoothed: s.smoothed.clone(),
            stale: s.stale,
            w: s.w.max(1),
            s: s.s.max(1),
            t: s.t,
        }
    }

    /// Resets the stale counter and (optionally) relaxes the window for
    /// refreezing after an unfreeze event.
    pub fn relax(&mut self, w: usize, s: usize) {
        self.w = w.max(1);
        self.s = s.max(1);
        self.stale = 0;
        // History restarts: the unfrozen module is training again.
        self.raw.clear();
        self.smoothed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_converges_after_s_evaluations() {
        let mut t = PlasticityTracker::new(4, 3, 1e-3);
        let mut converged_at = None;
        for i in 0..12 {
            let o = t.observe_value(0.5).unwrap();
            if o.converged && converged_at.is_none() {
                converged_at = Some(i);
            }
        }
        // Slope needs ≥2 points, then 3 consecutive stale evaluations.
        let at = converged_at.expect("flat series must converge");
        assert!((3..=6).contains(&at), "converged at {at}");
    }

    #[test]
    fn falling_series_does_not_converge() {
        let mut t = PlasticityTracker::new(5, 3, 1e-3);
        for i in 0..20 {
            let o = t.observe_value(10.0 - i as f32 * 0.5).unwrap();
            assert!(!o.converged, "converged on a falling series at {i}");
        }
    }

    #[test]
    fn noise_is_smoothed_out() {
        // Alternating values whose moving average is flat.
        let mut t = PlasticityTracker::new(6, 4, 5e-2);
        let mut converged = false;
        for i in 0..30 {
            let v = if i % 2 == 0 { 1.0 } else { 1.1 };
            converged |= t.observe_value(v).unwrap().converged;
        }
        assert!(converged, "smoothing failed to flatten alternating noise");
    }

    #[test]
    fn spike_resets_the_stale_counter() {
        let mut t = PlasticityTracker::new(3, 5, 1e-3);
        for _ in 0..4 {
            let _ = t.observe_value(1.0).unwrap();
        }
        let before = t.stale;
        assert!(before > 0);
        // A large spike flips the recent slope above tolerance.
        let o = t.observe_value(5.0).unwrap();
        assert_eq!(o.stale_count, 0);
    }

    #[test]
    fn relax_clears_history_and_shrinks_window() {
        let mut t = PlasticityTracker::new(10, 10, 1e-3);
        for _ in 0..5 {
            let _ = t.observe_value(1.0).unwrap();
        }
        t.relax(5, 5);
        assert!(t.raw_history().is_empty());
        assert_eq!(t.w, 5);
        assert_eq!(t.s, 5);
        assert_eq!(t.stale, 0);
    }

    #[test]
    fn observe_uses_sp_loss() {
        use egeria_tensor::Rng;
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[4, 8], &mut rng);
        let mut t = PlasticityTracker::new(3, 3, 1e-4);
        let o = t.observe(&a, &a).unwrap();
        assert!(o.raw < 1e-10);
        let b = Tensor::randn(&[4, 8], &mut rng);
        let o2 = t.observe(&a, &b).unwrap();
        assert!(o2.raw > 0.0);
    }
}
