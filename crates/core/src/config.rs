//! Egeria configuration (the paper's four hyperparameters plus system
//! knobs).

use egeria_quant::Precision;

/// How plasticity evaluation is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerMode {
    /// Reference forward + plasticity computed inline on the training
    /// thread. Deterministic; used by the experiment harness.
    Sync,
    /// Reference forward on a controller thread behind the IQ/ROQ/TOQ
    /// queues (§4.1.2); decisions apply when they arrive.
    Async,
}

/// Which freeze/unfreeze decision policy drives the [`crate::freezer::FreezingEngine`]
/// (DESIGN §5i). The engine owns the per-module plasticity trackers and the
/// event log; the policy owns only the *decision rule*, so every variant
/// shares one probe pipeline and one determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// The paper's plasticity/CUSUM policy (Algorithm 1): freeze on `S`
    /// consecutive sub-tolerance slopes, unfreeze on the LR-annealing rule.
    /// Bit-identical to the pre-trait freezer (pinned by the golden run).
    #[default]
    Paper,
    /// SmartFRZ-style learned predictor: a fixed-weight logistic scorer
    /// over attention-pooled plasticity-history features, distilled
    /// offline from paper-policy decision traces.
    Learned,
    /// Periodic-interval baseline: freeze one module every `every`
    /// plasticity evaluations, ignoring the plasticity values entirely.
    Interval {
        /// Evaluations between successive freezes.
        every: usize,
    },
    /// Never freeze anything: the vanilla baseline under the same probe
    /// schedule (isolates probe overhead from freezing benefit).
    NeverFreeze,
    /// The paper policy plus regression-aware *unfreezing*: when the
    /// reference-probe plasticity rebounds right after a freeze (the
    /// premature-freeze signature), thaw everything and refreeze with
    /// relaxed criteria.
    RegressionAware,
}

impl PolicyKind {
    /// Stable short name, used in reports, fingerprints, checkpoints, and
    /// telemetry decision instants.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Paper => "paper",
            PolicyKind::Learned => "learned",
            PolicyKind::Interval { .. } => "interval",
            PolicyKind::NeverFreeze => "never",
            PolicyKind::RegressionAware => "regression",
        }
    }

    /// Parses `"paper" | "learned" | "interval[:N]" | "never" |
    /// "regression"` (the `EGERIA_FREEZE_POLICY` syntax).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("interval") {
            let every = match rest.strip_prefix(':') {
                Some(n) => n.parse().ok().filter(|&n| n > 0)?,
                None if rest.is_empty() => DEFAULT_INTERVAL_EVERY,
                None => return None,
            };
            return Some(PolicyKind::Interval { every });
        }
        match s {
            "paper" => Some(PolicyKind::Paper),
            "learned" => Some(PolicyKind::Learned),
            "never" => Some(PolicyKind::NeverFreeze),
            "regression" => Some(PolicyKind::RegressionAware),
            _ => None,
        }
    }

    /// Reads the `EGERIA_FREEZE_POLICY` override; `None` when unset.
    /// An unparsable value is reported once and ignored rather than
    /// aborting training.
    pub fn from_env() -> Option<PolicyKind> {
        let raw = std::env::var("EGERIA_FREEZE_POLICY").ok()?;
        match PolicyKind::parse(&raw) {
            Some(k) => Some(k),
            None => {
                eprintln!(
                    "egeria: ignoring unparsable EGERIA_FREEZE_POLICY={raw:?} \
                     (expected paper|learned|interval[:N]|never|regression)"
                );
                None
            }
        }
    }
}

/// Default freeze period of [`PolicyKind::Interval`] when none is given.
pub const DEFAULT_INTERVAL_EVERY: usize = 5;

/// Which backend the activation cache persists to (DESIGN §5j). Flat is
/// the original one-file-per-sample layout; chunked is the egeria-store
/// chunk/shard layout. Both are bit-exact under a lossless codec, so the
/// golden run pins the same fingerprint either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheStoreKind {
    /// One serialized tensor file per sample in a flat directory.
    #[default]
    Flat,
    /// Chunked + compressed + sharded store (`egeria-store`).
    Chunked,
}

impl CacheStoreKind {
    /// Stable short name, used in reports, checkpoints, and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            CacheStoreKind::Flat => "flat",
            CacheStoreKind::Chunked => "chunked",
        }
    }

    /// Parses the `EGERIA_CACHE_STORE` syntax (`"flat" | "chunked"`).
    pub fn parse(s: &str) -> Option<CacheStoreKind> {
        match s.trim() {
            "flat" => Some(CacheStoreKind::Flat),
            "chunked" => Some(CacheStoreKind::Chunked),
            _ => None,
        }
    }

    /// Reads the `EGERIA_CACHE_STORE` override; `None` when unset. An
    /// unparsable value is reported once and ignored rather than aborting
    /// training.
    pub fn from_env() -> Option<CacheStoreKind> {
        let raw = std::env::var("EGERIA_CACHE_STORE").ok()?;
        match CacheStoreKind::parse(&raw) {
            Some(k) => Some(k),
            None => {
                eprintln!(
                    "egeria: ignoring unparsable EGERIA_CACHE_STORE={raw:?} \
                     (expected flat|chunked)"
                );
                None
            }
        }
    }
}

/// Reads the `EGERIA_CACHE_DISK_MB` live-byte cap for the chunked store;
/// `None` when unset (unbounded). Zero or unparsable values are reported
/// and ignored.
pub fn cache_disk_mb_from_env() -> Option<u64> {
    let raw = std::env::var("EGERIA_CACHE_DISK_MB").ok()?;
    match raw.trim().parse::<u64>() {
        Ok(mb) if mb > 0 => Some(mb),
        _ => {
            eprintln!(
                "egeria: ignoring unparsable EGERIA_CACHE_DISK_MB={raw:?} \
                 (expected a positive integer of megabytes)"
            );
            None
        }
    }
}

/// Unfreeze policy (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnfreezePolicy {
    /// LR-annealing rule: unfreeze all frozen layers when the LR has
    /// dropped by ≥10× since the frontmost module froze, halving `W` and
    /// `S` for refreezing.
    LrAnnealing,
    /// Cyclical schedules: user-customized unfreezing (hook on the
    /// trainer); the built-in LR rule is disabled.
    Custom,
    /// Never unfreeze (ablation).
    Never,
}

/// The Egeria hyperparameters and system options.
#[derive(Debug, Clone, Copy)]
pub struct EgeriaConfig {
    /// `n`: plasticity-evaluation (and bootstrap-monitoring) interval in
    /// iterations.
    pub n: usize,
    /// `W`: history window for smoothing and the linear fit.
    pub w: usize,
    /// `S`: consecutive sub-tolerance slopes required to freeze (defaults
    /// to `W` per the paper).
    pub s: usize,
    /// `T`: plasticity slope tolerance as a trend-to-variation ratio: the
    /// window is stationary when the fitted trend's total change stays
    /// under `T`× the window's standard deviation.
    pub t: f32,
    /// Bootstrapping exit threshold: relative loss-change rate (the paper
    /// sets this "permissively" to 10%).
    pub bootstrap_rate: f32,
    /// Reference precision (int8 default; f32 fallback for sensitive
    /// models).
    pub reference_precision: Precision,
    /// Refresh the reference from the latest snapshot every this many
    /// plasticity evaluations (0 = never update; Figure 7's ablation).
    pub reference_update_every: usize,
    /// Unfreeze policy.
    pub unfreeze: UnfreezePolicy,
    /// Whether the frozen-prefix forward pass is replaced by the activation
    /// cache (§4.3).
    pub cache_fp: bool,
    /// In-memory cache window, in batches (the paper keeps 5).
    pub cache_mem_batches: usize,
    /// Controller execution mode.
    pub controller: ControllerMode,
    /// CPU-load gate: skip reference execution when the 1-minute load
    /// average divided by core count exceeds this fraction (§4.1.2 uses
    /// 50%). Only consulted in async mode.
    pub cpu_load_gate: f32,
    /// Freeze/unfreeze decision policy (DESIGN §5i). Overridable at run
    /// time via `EGERIA_FREEZE_POLICY` in the trainer.
    pub policy: PolicyKind,
    /// Activation-cache backend (DESIGN §5j). Overridable at run time via
    /// `EGERIA_CACHE_STORE` in the trainer.
    pub cache_store: CacheStoreKind,
    /// Codec chain for the chunked backend (ignored by flat). Overridable
    /// via `EGERIA_CACHE_CODEC`.
    pub cache_codec: egeria_store::StoreCodec,
    /// Live on-disk byte cap for the chunked backend, in megabytes
    /// (`None` = unbounded). Overridable via `EGERIA_CACHE_DISK_MB`.
    pub cache_disk_mb: Option<u64>,
}

impl Default for EgeriaConfig {
    fn default() -> Self {
        EgeriaConfig {
            n: 20,
            w: 15,
            s: 15,
            t: 1.0,
            bootstrap_rate: 0.10,
            reference_precision: Precision::Int8,
            reference_update_every: 10,
            unfreeze: UnfreezePolicy::LrAnnealing,
            cache_fp: true,
            cache_mem_batches: 5,
            controller: ControllerMode::Sync,
            cpu_load_gate: 0.5,
            policy: PolicyKind::Paper,
            cache_store: CacheStoreKind::Flat,
            cache_codec: egeria_store::StoreCodec::Lossless,
            cache_disk_mb: None,
        }
    }
}

impl EgeriaConfig {
    /// Sets `W` (and `S = W`, the paper's default coupling).
    pub fn with_window(mut self, w: usize) -> Self {
        self.w = w;
        self.s = w;
        self
    }

    /// Halved-criteria variant used for refreezing after an unfreeze
    /// (§4.2.2: "halve the counter and history buffer for refreezing").
    pub fn relaxed_for_refreeze(&self) -> (usize, usize) {
        ((self.w / 2).max(2), (self.s / 2).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_couples_s_to_w() {
        let c = EgeriaConfig::default();
        assert_eq!(c.s, c.w);
        assert!(c.bootstrap_rate > 0.0 && c.bootstrap_rate < 1.0);
    }

    #[test]
    fn with_window_keeps_coupling() {
        let c = EgeriaConfig::default().with_window(7);
        assert_eq!(c.w, 7);
        assert_eq!(c.s, 7);
    }

    #[test]
    fn policy_kind_parses_all_spellings() {
        assert_eq!(PolicyKind::parse("paper"), Some(PolicyKind::Paper));
        assert_eq!(PolicyKind::parse("learned"), Some(PolicyKind::Learned));
        assert_eq!(PolicyKind::parse("never"), Some(PolicyKind::NeverFreeze));
        assert_eq!(
            PolicyKind::parse("regression"),
            Some(PolicyKind::RegressionAware)
        );
        assert_eq!(
            PolicyKind::parse("interval"),
            Some(PolicyKind::Interval {
                every: DEFAULT_INTERVAL_EVERY
            })
        );
        assert_eq!(
            PolicyKind::parse("interval:3"),
            Some(PolicyKind::Interval { every: 3 })
        );
        assert_eq!(PolicyKind::parse("interval:0"), None);
        assert_eq!(PolicyKind::parse("interval:x"), None);
        assert_eq!(PolicyKind::parse("bogus"), None);
        assert_eq!(EgeriaConfig::default().policy, PolicyKind::Paper);
    }

    #[test]
    fn cache_store_kind_parses_all_spellings() {
        assert_eq!(CacheStoreKind::parse("flat"), Some(CacheStoreKind::Flat));
        assert_eq!(
            CacheStoreKind::parse(" chunked "),
            Some(CacheStoreKind::Chunked)
        );
        assert_eq!(CacheStoreKind::parse("zarr"), None);
        let c = EgeriaConfig::default();
        assert_eq!(c.cache_store, CacheStoreKind::Flat);
        assert_eq!(c.cache_codec, egeria_store::StoreCodec::Lossless);
        assert_eq!(c.cache_disk_mb, None);
        assert_eq!(CacheStoreKind::Flat.name(), "flat");
        assert_eq!(CacheStoreKind::Chunked.name(), "chunked");
    }

    #[test]
    fn refreeze_criteria_are_halved_and_floored() {
        let c = EgeriaConfig::default().with_window(10);
        assert_eq!(c.relaxed_for_refreeze(), (5, 5));
        let tiny = EgeriaConfig::default().with_window(2);
        let (w, s) = tiny.relaxed_for_refreeze();
        assert!(w >= 2 && s >= 1);
    }
}
