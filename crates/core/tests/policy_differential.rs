//! Differential test for the policy refactor (DESIGN §5i).
//!
//! `LegacyPaperFreezer` below is an independent, straight-line
//! reimplementation of the *pre-trait* freezer's decision loop — the
//! LR-reboot guard, the fold into the front tracker, the converged-freeze
//! rule, the tail guard, and relaxed refreeze — written directly against
//! [`PlasticityTracker`] with no `FreezePolicy` involved. Driving it and
//! the real [`FreezingEngine`] (paper policy) over random plasticity/LR
//! sequences and demanding identical decision traces pins the refactor's
//! core claim: extracting the rule behind the trait changed *nothing*
//! about what the paper policy decides. (The end-to-end variant of the
//! same claim is `tests/golden_run.rs`, which pins the full training
//! fingerprint.)

use egeria_core::config::UnfreezePolicy;
use egeria_core::freezer::{FreezeEvent, FreezingEngine};
use egeria_core::plasticity::PlasticityTracker;
use egeria_core::{EgeriaConfig, PolicyKind};
use egeria_tensor::Rng;
use proptest::prelude::*;

/// The pre-refactor paper freezer, reimplemented from Algorithm 1.
struct LegacyPaperFreezer {
    trackers: Vec<PlasticityTracker>,
    front: usize,
    num_modules: usize,
    unfreeze: UnfreezePolicy,
    lr_at_first_freeze: Option<f32>,
    cfg: EgeriaConfig,
}

impl LegacyPaperFreezer {
    fn new(num_modules: usize, cfg: &EgeriaConfig) -> Self {
        LegacyPaperFreezer {
            trackers: (0..num_modules)
                .map(|_| PlasticityTracker::new(cfg.w, cfg.s, cfg.t))
                .collect(),
            front: 0,
            num_modules,
            unfreeze: cfg.unfreeze,
            lr_at_first_freeze: None,
            cfg: *cfg,
        }
    }

    fn observe_value(&mut self, p: f32, lr: f32) -> FreezeEvent {
        // §4.2.2 LR-reboot guard, checked before the fold: a decayed LR
        // reboots training, so this evaluation must not touch history.
        if self.front > 0 && self.unfreeze == UnfreezePolicy::LrAnnealing {
            if let Some(lr0) = self.lr_at_first_freeze {
                if lr <= lr0 * 0.1 + f32::EPSILON {
                    self.front = 0;
                    self.lr_at_first_freeze = None;
                    let (w, s) = self.cfg.relaxed_for_refreeze();
                    for t in &mut self.trackers {
                        t.relax(w, s);
                    }
                    return FreezeEvent::Unfroze;
                }
            }
        }
        let obs = self.trackers[self.front].observe_value(p).unwrap();
        // Freeze on convergence, but never the tail module.
        if obs.converged && self.front + 1 < self.num_modules {
            if self.lr_at_first_freeze.is_none() {
                self.lr_at_first_freeze = Some(lr);
            }
            self.front += 1;
            return FreezeEvent::Froze(self.front);
        }
        FreezeEvent::None
    }
}

/// Regime-switching plasticity values, deterministic in `seed`.
fn plasticity_series(seed: u64, len: usize) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    let mut level = 0.5 + rng.uniform() * 2.0;
    (0..len)
        .map(|_| {
            if rng.below(8) == 0 {
                level = 0.5 + rng.uniform() * 2.0;
            }
            (level * (1.0 + 0.05 * rng.normal())).max(0.01)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The trait-driven paper policy and the legacy replica must emit the
    /// same event and sit on the same front at every single step, across
    /// random sequences, module counts, tracker geometries, and an LR
    /// schedule that exercises the reboot rule (including refreezes after
    /// it — the relaxed-criteria path).
    #[test]
    fn trait_engine_matches_legacy_paper_decisions(
        seed in any::<u64>(),
        len in 20usize..120,
        modules in 2usize..6,
        w in 3usize..6,
        s in 2usize..4,
        drop_at in 5usize..100,
        unfreeze_never in any::<bool>(),
    ) {
        let cfg = EgeriaConfig {
            w,
            s,
            t: 5.0,
            policy: PolicyKind::Paper,
            unfreeze: if unfreeze_never {
                UnfreezePolicy::Never
            } else {
                UnfreezePolicy::LrAnnealing
            },
            ..Default::default()
        };
        let mut engine = FreezingEngine::new(modules, &cfg);
        let mut legacy = LegacyPaperFreezer::new(modules, &cfg);
        for (i, &v) in plasticity_series(seed, len).iter().enumerate() {
            let lr = if i < drop_at { 0.1 } else { 0.008 };
            let (_, ev) = engine.observe_value(v, lr).unwrap();
            let legacy_ev = legacy.observe_value(v, lr);
            prop_assert_eq!(
                ev, legacy_ev,
                "decision diverged from the legacy rule at step {}", i
            );
            prop_assert_eq!(
                engine.front(), legacy.front,
                "front diverged from the legacy rule at step {}", i
            );
        }
    }
}
