//! Property-based tests for the freezing state machine, the activation
//! cache, and the checkpoint container.

use egeria_core::bootstrap::BootstrapSnapshot;
use egeria_core::cache::ActivationCache;
use egeria_core::checkpoint::{self, CheckpointStore, TrainerCheckpoint};
use egeria_core::freezer::{FreezeEvent, FreezerSnapshot, FreezingEngine};
use egeria_core::plasticity::{PlasticityTracker, TrackerSnapshot};
use egeria_core::trainer::{EpochRecord, EventRecord, IterationRecord, PlasticityPoint};
use egeria_core::{EgeriaConfig, PolicyState};
use egeria_nn::optim::OptimizerState;
use egeria_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// A deterministic, seed-varied checkpoint with every optional section
/// toggled independently.
fn random_checkpoint(seed: u64) -> TrainerCheckpoint {
    let mut rng = Rng::new(seed);
    let n_params = 1 + rng.below(4);
    let params: Vec<(String, Tensor)> = (0..n_params)
        .map(|i| {
            let rows = 1 + rng.below(3);
            (format!("p{i}"), Tensor::randn(&[rows, 2], &mut rng))
        })
        .collect();
    let slots = vec![(
        "velocity".to_string(),
        params
            .iter()
            .map(|(n, t)| (n.clone(), Tensor::randn(&[t.dims()[0], 2], &mut rng)))
            .collect::<Vec<_>>(),
    )];
    let freezer = rng.flip().then(|| FreezerSnapshot {
        front: rng.below(3),
        lr_at_first_freeze: rng.flip().then(|| rng.uniform()),
        relaxed: rng.flip(),
        evaluations: rng.below(50),
        events: vec![
            (rng.below(20), FreezeEvent::Froze(1 + rng.below(3))),
            (rng.below(40), FreezeEvent::Unfroze),
        ],
        trackers: (0..3)
            .map(|_| TrackerSnapshot {
                raw: (0..rng.below(6)).map(|_| rng.normal()).collect(),
                smoothed: (0..rng.below(6)).map(|_| rng.normal()).collect(),
                stale: rng.below(4),
                w: 1 + rng.below(8),
                s: 1 + rng.below(4),
                t: rng.uniform() * 2.0,
            })
            .collect(),
        policy: PolicyState {
            kind: ["paper", "learned", "interval", "never", "regression"]
                [rng.below(5)]
            .to_string(),
            version: rng.below(3) as u32,
            scalars: (0..rng.below(4)).map(|_| rng.normal()).collect(),
            counters: (0..rng.below(4)).map(|_| rng.below(100) as u64).collect(),
        },
    });
    let bootstrap = rng.flip().then(|| BootstrapSnapshot {
        losses: (0..rng.below(12)).map(|_| rng.uniform() * 4.0).collect(),
        done: rng.flip(),
    });
    let reference = rng.flip().then(|| egeria_core::reference::ReferenceSnapshot {
        params: params.clone(),
        state_buffers: vec![Tensor::randn(&[2], &mut rng)],
    });
    TrainerCheckpoint {
        model_name: format!("model-{}", seed % 10),
        next_epoch: rng.below(100) as u64,
        global_step: rng.below(10_000) as u64,
        evals_since_ref_update: rng.below(16) as u64,
        frozen_prefix: rng.below(4) as u64,
        params,
        state_buffers: vec![Tensor::randn(&[3], &mut rng)],
        optimizer: OptimizerState {
            kind: "sgd".into(),
            lr: rng.uniform(),
            step_count: rng.below(1000) as u64,
            slots,
        },
        freezer,
        bootstrap,
        reference,
        epochs: (0..rng.below(4))
            .map(|e| EpochRecord {
                epoch: e,
                train_loss: rng.uniform(),
                val_loss: rng.flip().then(|| rng.uniform()),
                val_metric: None,
                lr: rng.uniform(),
                frozen_prefix: rng.below(3),
                active_param_fraction: rng.uniform(),
            })
            .collect(),
        iterations: (0..rng.below(8))
            .map(|_| IterationRecord {
                epoch: rng.below(4) as u32,
                frozen_prefix: rng.below(3) as u16,
                fp_cached: rng.flip(),
            })
            .collect(),
        plasticity: (0..rng.below(5))
            .map(|_| PlasticityPoint {
                iteration: rng.below(500),
                module: rng.below(4),
                raw: rng.uniform(),
                smoothed: rng.uniform(),
            })
            .collect(),
        events: (0..rng.below(3))
            .map(|_| EventRecord {
                iteration: rng.below(500),
                kind: "freeze".into(),
                prefix: rng.below(4),
            })
            .collect(),
        input_bytes: rng.below(1 << 30) as u64,
        cache_store: if rng.flip() { "flat" } else { "chunked" }.to_string(),
    }
}

fn checkpoints_equal(a: &TrainerCheckpoint, b: &TrainerCheckpoint) -> bool {
    a.model_name == b.model_name
        && a.next_epoch == b.next_epoch
        && a.global_step == b.global_step
        && a.evals_since_ref_update == b.evals_since_ref_update
        && a.frozen_prefix == b.frozen_prefix
        && a.cache_store == b.cache_store
        && a.params == b.params
        && a.state_buffers == b.state_buffers
        && a.optimizer.kind == b.optimizer.kind
        && a.optimizer.lr == b.optimizer.lr
        && a.optimizer.step_count == b.optimizer.step_count
        && a.optimizer.slots == b.optimizer.slots
        && a.freezer == b.freezer
        && a.bootstrap == b.bootstrap
        && a.reference.as_ref().map(|r| (&r.params, &r.state_buffers))
            == b.reference.as_ref().map(|r| (&r.params, &r.state_buffers))
        && a.epochs.len() == b.epochs.len()
        && a.iterations.len() == b.iterations.len()
        && a.plasticity.len() == b.plasticity.len()
        && a.events.len() == b.events.len()
        && a.input_bytes == b.input_bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn frozen_prefix_is_monotone_between_unfreezes(seed in any::<u64>(), evals in 10usize..80) {
        let cfg = EgeriaConfig {
            w: 4,
            s: 3,
            t: 5.0,
            ..Default::default()
        };
        let mut engine = FreezingEngine::new(5, &cfg);
        let mut rng = Rng::new(seed);
        let mut prev = 0usize;
        for _ in 0..evals {
            let a = Tensor::randn(&[4, 6], &mut rng);
            let noise = Tensor::randn(&[4, 6], &mut rng).mul_scalar(0.05);
            let b = a.add(&noise).unwrap();
            let (_, ev) = engine.observe(&a, &b, 0.1).unwrap();
            match ev {
                FreezeEvent::Unfroze => prev = 0,
                _ => {
                    prop_assert!(engine.front() >= prev);
                    prev = engine.front();
                }
            }
            prop_assert!(engine.front() < 5, "tail module must stay active");
        }
    }

    #[test]
    fn tracker_never_converges_on_strong_trends(step in 0.5f32..5.0, w in 3usize..10) {
        let mut t = PlasticityTracker::new(w, 3, 1.0);
        for i in 0..40 {
            let o = t.observe_value(100.0 - step * i as f32).unwrap();
            prop_assert!(!o.converged, "converged on a strong trend at {}", i);
        }
    }

    #[test]
    fn tracker_converges_on_trendless_noise(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let mut t = PlasticityTracker::new(6, 5, 1.5);
        let mut converged = false;
        for _ in 0..80 {
            converged |= t.observe_value(1.0 + 0.2 * rng.normal()).unwrap().converged;
        }
        prop_assert!(converged, "never converged on stationary noise");
    }

    #[test]
    fn cache_round_trips_arbitrary_batches(
        seed in any::<u64>(),
        ids in prop::collection::hash_set(0u64..1000, 1..12),
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let dir = std::env::temp_dir().join(format!(
            "egeria_prop_cache_{}_{}",
            std::process::id(),
            seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ActivationCache::new(&dir, 3).unwrap();
        let mut rng = Rng::new(seed);
        let act = Tensor::randn(&[ids.len(), 2, 3], &mut rng);
        cache.put_batch(&ids, &act, 1).unwrap();
        let got = cache.get_batch(&ids, 1).unwrap().unwrap();
        prop_assert_eq!(got, act);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trip_is_exact(seed in any::<u64>()) {
        let ckpt = random_checkpoint(seed);
        let bytes = checkpoint::to_bytes(&ckpt);
        let back = checkpoint::from_bytes(&bytes).unwrap();
        prop_assert!(checkpoints_equal(&ckpt, &back));
    }

    #[test]
    fn checkpoint_rejects_any_byte_flip(seed in any::<u64>(), pos in any::<usize>(), bit in 0u8..8) {
        let bytes = checkpoint::to_bytes(&random_checkpoint(seed));
        let mut bad = bytes.clone();
        let i = pos % bad.len();
        bad[i] ^= 1 << bit;
        prop_assert!(
            checkpoint::from_bytes(&bad).is_err(),
            "flip of bit {} at byte {} went undetected", bit, i
        );
    }

    #[test]
    fn checkpoint_rejects_any_truncation(seed in any::<u64>(), cut in any::<usize>()) {
        let bytes = checkpoint::to_bytes(&random_checkpoint(seed));
        let keep = cut % bytes.len();
        prop_assert!(checkpoint::from_bytes(&bytes[..keep]).is_err());
    }

    #[test]
    fn corrupted_latest_checkpoint_falls_back(seed in any::<u64>(), pos in any::<usize>()) {
        let dir = std::env::temp_dir().join(format!(
            "egeria_prop_ckpt_{}_{}",
            std::process::id(),
            seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        let mut ckpt = random_checkpoint(seed);
        ckpt.next_epoch = 1;
        store.save(&ckpt).unwrap();
        ckpt.next_epoch = 2;
        let latest = store.save(&ckpt).unwrap();
        let mut bytes = std::fs::read(&latest).unwrap();
        let i = pos % bytes.len();
        bytes[i] ^= 0x10;
        std::fs::write(&latest, &bytes).unwrap();
        // The corrupt newest file is skipped; the previous checkpoint wins.
        let loaded = store.load_latest().unwrap();
        prop_assert_eq!(loaded.next_epoch, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_misses_on_prefix_mismatch(seed in any::<u64>(), p1 in 1usize..5, p2 in 1usize..5) {
        prop_assume!(p1 != p2);
        let dir = std::env::temp_dir().join(format!(
            "egeria_prop_prefix_{}_{}",
            std::process::id(),
            seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ActivationCache::new(&dir, 3).unwrap();
        cache.put_batch(&[1, 2], &Tensor::ones(&[2, 4]), p1).unwrap();
        prop_assert!(cache.get_batch(&[1, 2], p2).unwrap().is_none());
        prop_assert!(cache.get_batch(&[1, 2], p1).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
