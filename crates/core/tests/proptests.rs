//! Property-based tests for the freezing state machine and the activation
//! cache.

use egeria_core::cache::ActivationCache;
use egeria_core::freezer::{FreezeEvent, FreezingEngine};
use egeria_core::plasticity::PlasticityTracker;
use egeria_core::EgeriaConfig;
use egeria_tensor::{Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn frozen_prefix_is_monotone_between_unfreezes(seed in any::<u64>(), evals in 10usize..80) {
        let cfg = EgeriaConfig {
            w: 4,
            s: 3,
            t: 5.0,
            ..Default::default()
        };
        let mut engine = FreezingEngine::new(5, &cfg);
        let mut rng = Rng::new(seed);
        let mut prev = 0usize;
        for _ in 0..evals {
            let a = Tensor::randn(&[4, 6], &mut rng);
            let noise = Tensor::randn(&[4, 6], &mut rng).mul_scalar(0.05);
            let b = a.add(&noise).unwrap();
            let (_, ev) = engine.observe(&a, &b, 0.1).unwrap();
            match ev {
                FreezeEvent::Unfroze => prev = 0,
                _ => {
                    prop_assert!(engine.front() >= prev);
                    prev = engine.front();
                }
            }
            prop_assert!(engine.front() < 5, "tail module must stay active");
        }
    }

    #[test]
    fn tracker_never_converges_on_strong_trends(step in 0.5f32..5.0, w in 3usize..10) {
        let mut t = PlasticityTracker::new(w, 3, 1.0);
        for i in 0..40 {
            let o = t.observe_value(100.0 - step * i as f32).unwrap();
            prop_assert!(!o.converged, "converged on a strong trend at {}", i);
        }
    }

    #[test]
    fn tracker_converges_on_trendless_noise(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let mut t = PlasticityTracker::new(6, 5, 1.5);
        let mut converged = false;
        for _ in 0..80 {
            converged |= t.observe_value(1.0 + 0.2 * rng.normal()).unwrap().converged;
        }
        prop_assert!(converged, "never converged on stationary noise");
    }

    #[test]
    fn cache_round_trips_arbitrary_batches(
        seed in any::<u64>(),
        ids in prop::collection::hash_set(0u64..1000, 1..12),
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let dir = std::env::temp_dir().join(format!(
            "egeria_prop_cache_{}_{}",
            std::process::id(),
            seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ActivationCache::new(&dir, 3).unwrap();
        let mut rng = Rng::new(seed);
        let act = Tensor::randn(&[ids.len(), 2, 3], &mut rng);
        cache.put_batch(&ids, &act, 1).unwrap();
        let got = cache.get_batch(&ids, 1).unwrap().unwrap();
        prop_assert_eq!(got, act);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_misses_on_prefix_mismatch(seed in any::<u64>(), p1 in 1usize..5, p2 in 1usize..5) {
        prop_assume!(p1 != p2);
        let dir = std::env::temp_dir().join(format!(
            "egeria_prop_prefix_{}_{}",
            std::process::id(),
            seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ActivationCache::new(&dir, 3).unwrap();
        cache.put_batch(&[1, 2], &Tensor::ones(&[2, 4]), p1).unwrap();
        prop_assert!(cache.get_batch(&[1, 2], p2).unwrap().is_none());
        prop_assert!(cache.get_batch(&[1, 2], p1).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
