//! Property tests for the [`egeria_core::FreezePolicy`] contract
//! (DESIGN §5i), driven through the real [`FreezingEngine`] on arbitrary
//! plasticity/LR sequences:
//!
//! * one-way policies (`is_one_way`) keep a monotone frozen front and
//!   never emit an unfreeze, whatever the plasticity or LR does;
//! * no policy ever freezes the tail module, even under maximally
//!   freeze-friendly input (the engine's tail guard, not policy courtesy);
//! * `snapshot → restore → replay` into a fresh engine reproduces the
//!   remaining decision timeline bit-for-bit for every policy.

use egeria_core::config::UnfreezePolicy;
use egeria_core::freezer::{FreezeEvent, FreezingEngine};
use egeria_core::{EgeriaConfig, PolicyKind};
use egeria_tensor::Rng;
use proptest::prelude::*;

/// Every selectable policy kind (the scenario-harness matrix).
const ALL_KINDS: [PolicyKind; 5] = [
    PolicyKind::Paper,
    PolicyKind::Learned,
    PolicyKind::Interval { every: 3 },
    PolicyKind::NeverFreeze,
    PolicyKind::RegressionAware,
];

fn cfg_for(kind: PolicyKind, unfreeze: UnfreezePolicy) -> EgeriaConfig {
    EgeriaConfig {
        w: 3,
        s: 2,
        t: 5.0,
        policy: kind,
        unfreeze,
        ..Default::default()
    }
}

/// A regime-switching plasticity series: calm stretches (which induce
/// freezes), occasional level jumps (which induce rebounds), mild
/// multiplicative noise throughout. Deterministic in `seed`.
fn plasticity_series(seed: u64, len: usize) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    let mut level = 0.5 + rng.uniform() * 2.0;
    (0..len)
        .map(|_| {
            if rng.below(8) == 0 {
                level = 0.5 + rng.uniform() * 2.0;
            }
            (level * (1.0 + 0.05 * rng.normal())).max(0.01)
        })
        .collect()
}

/// A step LR schedule: 0.1 until `drop_at`, then a ≥10× decayed rate that
/// arms the paper LR-reboot rule for two-way policies.
fn lr_at(i: usize, drop_at: usize) -> f32 {
    if i < drop_at {
        0.1
    } else {
        0.008
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One-way policies never reopen the front: the frozen prefix is
    /// monotone non-decreasing and no `Unfroze` event appears, even when
    /// the LR decays past the reboot threshold mid-run. (The paper policy
    /// is one-way exactly when configured with `UnfreezePolicy::Never`.)
    #[test]
    fn one_way_policies_keep_a_monotone_front(
        seed in any::<u64>(),
        len in 24usize..80,
        modules in 2usize..6,
        kind_idx in 0usize..4,
    ) {
        let kinds = [
            PolicyKind::Paper,
            PolicyKind::Learned,
            PolicyKind::Interval { every: 3 },
            PolicyKind::NeverFreeze,
        ];
        let cfg = cfg_for(kinds[kind_idx], UnfreezePolicy::Never);
        let mut engine = FreezingEngine::new(modules, &cfg);
        let values = plasticity_series(seed, len);
        let mut prev = 0usize;
        for (i, &v) in values.iter().enumerate() {
            let (_, ev) = engine.observe_value(v, lr_at(i, len / 2)).unwrap();
            prop_assert!(
                ev != FreezeEvent::Unfroze,
                "one-way policy {} unfroze", engine.policy_name()
            );
            prop_assert!(
                engine.front() >= prev,
                "front regressed {} -> {} under one-way policy {}",
                prev, engine.front(), engine.policy_name()
            );
            prev = engine.front();
        }
    }

    /// The tail module stays active under every policy, even on perfectly
    /// flat plasticity (which makes each policy maximally freeze-happy —
    /// the interval baseline asks to freeze every third evaluation
    /// forever). The engine's tail guard, not the policies, enforces this.
    #[test]
    fn no_policy_ever_freezes_the_tail_module(
        seed in any::<u64>(),
        modules in 2usize..5,
        kind_idx in 0usize..5,
    ) {
        let cfg = cfg_for(ALL_KINDS[kind_idx], UnfreezePolicy::LrAnnealing);
        let mut engine = FreezingEngine::new(modules, &cfg);
        let mut rng = Rng::new(seed);
        for _ in 0..60 {
            let v = (1.0 + 0.01 * rng.normal()).max(0.01);
            engine.observe_value(v, 0.1).unwrap();
            prop_assert!(
                engine.front() < modules,
                "policy {} froze the tail module (front {} of {})",
                engine.policy_name(), engine.front(), modules
            );
        }
    }

    /// Checkpoint fidelity: snapshot the engine mid-run, restore into a
    /// fresh engine, and replay the rest of the sequence — both engines
    /// must emit identical observations, events, and fronts at every step,
    /// and end on identical snapshots. This is what makes a crash/resume
    /// replay the freeze timeline exactly for *stateful* policies (the
    /// regression-aware watch window, the learned hot streak).
    #[test]
    fn snapshot_restore_replays_identical_decisions(
        seed in any::<u64>(),
        len in 30usize..80,
        cut in 1usize..30,
        drop_at in 10usize..60,
        modules in 3usize..6,
        kind_idx in 0usize..5,
    ) {
        let cfg = cfg_for(ALL_KINDS[kind_idx], UnfreezePolicy::LrAnnealing);
        let values = plasticity_series(seed, len);
        let cut = cut.min(len - 1);

        let mut original = FreezingEngine::new(modules, &cfg);
        for (i, &v) in values[..cut].iter().enumerate() {
            original.observe_value(v, lr_at(i, drop_at)).unwrap();
        }
        let snap = original.snapshot();
        let mut restored = FreezingEngine::new(modules, &cfg);
        restored.restore(&snap).unwrap();
        prop_assert_eq!(&restored.snapshot(), &snap, "restore is not lossless");

        for (i, &v) in values.iter().enumerate().skip(cut) {
            let lr = lr_at(i, drop_at);
            let (obs_a, ev_a) = original.observe_value(v, lr).unwrap();
            let (obs_b, ev_b) = restored.observe_value(v, lr).unwrap();
            prop_assert_eq!(obs_a, obs_b, "observation diverged at step {}", i);
            prop_assert_eq!(ev_a, ev_b, "event diverged at step {}", i);
            prop_assert_eq!(
                original.front(), restored.front(),
                "front diverged at step {}", i
            );
        }
        prop_assert_eq!(original.events(), restored.events());
        prop_assert_eq!(original.snapshot(), restored.snapshot());
    }
}
