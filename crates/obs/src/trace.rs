//! Span/instant trace events and the bounded ring buffer that holds them.
//!
//! Events are recorded with microsecond timestamps relative to the run's
//! telemetry epoch (see [`crate::Telemetry`]); the recorder never reads a
//! clock itself, so it stays inside the determinism lint's serialize rule.

use std::collections::VecDeque;

/// A typed event argument value. A closed enum instead of free-form JSON
/// keeps export deterministic and the schema checkable.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (iteration numbers, module indices, byte counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (plasticity values, loss, ratios).
    F64(f64),
    /// Static string (event outcomes like `"hit"` / `"miss"`).
    Str(&'static str),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<f32> for ArgValue {
    fn from(v: f32) -> Self {
        ArgValue::F64(v as f64)
    }
}
impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// One recorded event. `dur_us: Some(_)` makes it a completed span
/// (Chrome `"X"` phase); `None` makes it an instant (`"i"` phase).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event kind, e.g. `"train_step"`, `"freeze_decision"`. Static so
    /// recording never allocates for the name.
    pub kind: &'static str,
    /// Start time in microseconds since the telemetry epoch.
    pub ts_us: u64,
    /// Duration in microseconds for spans; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Training iteration the event belongs to, if any.
    pub iteration: Option<u64>,
    /// Model layer/module index the event belongs to, if any.
    pub module: Option<u64>,
    /// Extra key/value arguments (triggering SP value, hit/miss outcome…).
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Bounded ring buffer of [`TraceEvent`]s. When full, the oldest event is
/// dropped and counted; the tail of a run is always retained, which is the
/// end the freeze timeline lives at.
pub struct TraceRecorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// Default ring capacity. At ~100 events per iteration this holds several
/// hundred iterations — more than any test or quickstart run emits.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

impl TraceRecorder {
    /// A recorder bounded at `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            kind: "t",
            ts_us: ts,
            dur_us: None,
            iteration: None,
            module: None,
            args: Vec::new(),
        }
    }

    #[test]
    fn ring_keeps_tail_and_counts_drops() {
        let mut r = TraceRecorder::with_capacity(3);
        for t in 0..5 {
            r.record(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.events().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = TraceRecorder::with_capacity(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events().next().unwrap().ts_us, 2);
    }
}
