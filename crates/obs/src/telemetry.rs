//! The [`Telemetry`] handle the workspace is wired through.
//!
//! `Telemetry::disabled()` is a `None` inside; every call on it reduces to
//! one branch and no allocation, which is what the bench guard in
//! `bench_ops` measures (< 2% disabled-path overhead on `train_step`).
//! Enabled handles share an `Arc`, so cloning into worker threads and the
//! async controller is cheap and all clones feed one registry and ring.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::trace::{ArgValue, TraceEvent, TraceRecorder};

struct TelemetryInner {
    // Wall-clock epoch for span timestamps. Recording reads the clock;
    // export never does (events carry epoch-relative µs).
    epoch: Instant,
    registry: MetricsRegistry,
    trace: Mutex<TraceRecorder>,
}

/// Shared telemetry handle. Cheap to clone; disabled handles are inert.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// An inert handle — every operation is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_ring_capacity(crate::trace::DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle with an explicit trace-ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                epoch: Instant::now(),
                registry: MetricsRegistry::new(),
                trace: Mutex::new(TraceRecorder::with_capacity(capacity)),
            })),
        }
    }

    /// True when this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this handle's epoch (0 when disabled).
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// A counter handle (no-op when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// A gauge handle (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// A histogram handle (no-op when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(name),
            None => Histogram::noop(),
        }
    }

    /// Records an instant event (freeze decision, cache outcome…).
    pub fn instant(
        &self,
        kind: &'static str,
        iteration: Option<u64>,
        module: Option<u64>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(i) = &self.inner {
            let ev = TraceEvent {
                kind,
                ts_us: i.epoch.elapsed().as_micros() as u64,
                dur_us: None,
                iteration,
                module,
                args,
            };
            i.trace.lock().expect("trace ring poisoned").record(ev);
        }
    }

    /// Starts a span; recorded when the returned guard drops. For a
    /// disabled handle the guard is inert.
    pub fn span(&self, kind: &'static str) -> Span {
        Span {
            telemetry: self.clone(),
            kind,
            start_us: self.now_us(),
            iteration: None,
            module: None,
            args: Vec::new(),
            active: self.is_enabled(),
        }
    }

    /// Snapshot of all metrics, name-sorted (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Copies out the retained trace events, oldest first, plus the count
    /// of events the ring evicted. Empty/0 when disabled.
    pub fn trace_events(&self) -> (Vec<TraceEvent>, u64) {
        match &self.inner {
            Some(i) => {
                let ring = i.trace.lock().expect("trace ring poisoned");
                (ring.events().cloned().collect(), ring.dropped())
            }
            None => (Vec::new(), 0),
        }
    }
}

/// Drop-guard for an in-progress span. Builder methods attach context;
/// the span is recorded with its measured duration when the guard drops.
pub struct Span {
    telemetry: Telemetry,
    kind: &'static str,
    start_us: u64,
    iteration: Option<u64>,
    module: Option<u64>,
    args: Vec<(&'static str, ArgValue)>,
    active: bool,
}

impl Span {
    /// Tags the span with a training iteration.
    pub fn iteration(mut self, it: u64) -> Self {
        if self.active {
            self.iteration = Some(it);
        }
        self
    }

    /// Tags the span with a layer/module index.
    pub fn module(mut self, m: u64) -> Self {
        if self.active {
            self.module = Some(m);
        }
        self
    }

    /// Attaches an argument.
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        if self.active {
            self.args.push((key, value.into()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        if let Some(i) = &self.telemetry.inner {
            let end_us = i.epoch.elapsed().as_micros() as u64;
            let ev = TraceEvent {
                kind: self.kind,
                ts_us: self.start_us,
                dur_us: Some(end_us.saturating_sub(self.start_us)),
                iteration: self.iteration,
                module: self.module,
                args: std::mem::take(&mut self.args),
            };
            i.trace.lock().expect("trace ring poisoned").record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.counter("c").inc();
        t.instant("x", Some(1), None, vec![]);
        {
            let _s = t.span("s").iteration(1).arg("k", 2u64);
        }
        assert!(!t.is_enabled());
        assert!(t.metrics_snapshot().counters.is_empty());
        assert_eq!(t.trace_events().0.len(), 0);
    }

    #[test]
    fn span_guard_records_on_drop_with_context() {
        let t = Telemetry::enabled();
        {
            let _s = t
                .span("train_step")
                .iteration(7)
                .module(3)
                .arg("frozen_prefix", 2u64)
                .arg("sp", 0.5f64)
                .arg("outcome", "hit");
        }
        t.instant("freeze_decision", Some(7), Some(2), vec![("sp", ArgValue::F64(0.1))]);
        let (events, dropped) = t.trace_events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2);
        let span = &events[0];
        assert_eq!(span.kind, "train_step");
        assert!(span.dur_us.is_some());
        assert_eq!(span.iteration, Some(7));
        assert_eq!(span.module, Some(3));
        assert_eq!(span.args.len(), 3);
        let inst = &events[1];
        assert_eq!(inst.kind, "freeze_decision");
        assert_eq!(inst.dur_us, None);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t2.counter("shared").add(5);
        assert_eq!(t.metrics_snapshot().counter("shared"), Some(5));
    }
}
