//! Structured telemetry for the Egeria reproduction (DESIGN.md §5d).
//!
//! Egeria's claims are *timeline* claims — when plasticity flattens, when
//! the freezer fires, how much time each frozen layer saves. This crate is
//! the observation side of the `nn`-trains / `simsys`-predicts split:
//!
//! - [`metrics`]: a lock-cheap registry of counters, gauges, and
//!   histograms (fixed log2 buckets, so snapshots are deterministic for a
//!   deterministic run).
//! - [`trace`]: a span-based trace recorder capturing per-iteration,
//!   per-module events into a bounded ring buffer.
//! - [`telemetry`]: the [`Telemetry`] handle the rest of the workspace is
//!   wired through. A disabled handle is a `None` and every operation on
//!   it is an inlined no-op — the hot path pays one branch.
//! - [`export`]: deterministic JSONL export plus a Chrome
//!   `trace_event`-compatible dump (load it in `about://tracing` /
//!   Perfetto).
//! - [`jsonl`]: a minimal JSON parser and the line-schema validator CI
//!   runs against exported traces.
//! - [`report`]: the trace summarizer behind `trace_report` — turns a
//!   JSONL trace into the paper's per-layer frozen-time breakdown and the
//!   observed iteration timeline `simsys` calibrates against.
//!
//! The crate is dependency-free on purpose: it must be embeddable under
//! every layer of the workspace (the tensor runtime included) without
//! dragging in vendored stubs, and its serialization must stay inside the
//! determinism lint (no hash-ordered collections, no wall-clock reads in
//! export paths).

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod export;
pub mod jsonl;
pub mod metrics;
pub mod report;
pub mod telemetry;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use report::TraceSummary;
pub use telemetry::{Span, Telemetry};
pub use trace::{ArgValue, TraceEvent, TraceRecorder};
