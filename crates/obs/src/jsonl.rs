//! Minimal JSON parser and the JSONL trace-schema validator.
//!
//! The vendored `serde_json` stub only serializes, so the summarizer and
//! the CI smoke step need a reader of their own. This one is deliberately
//! small: objects are ordered `(key, value)` vectors (no hash maps — the
//! determinism rule applies to this crate end to end), numbers are `f64`,
//! and errors carry a byte offset for readable failures.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // egeria-lint: allow(float-exact-eq): integrality test — a
            // fractional part of exactly 0.0 is the definition of "is an
            // integer", not a tolerance question.
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object members in source order, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // exports; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the remaining input.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one JSON document; trailing content is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after value"));
    }
    Ok(v)
}

/// What the validator learned about a trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceFileStats {
    /// Schema version from the meta line.
    pub schema_version: u64,
    /// `span` lines.
    pub spans: usize,
    /// `instant` lines.
    pub instants: usize,
    /// Events the ring evicted, from the meta line.
    pub dropped: u64,
}

fn validate_event_line(obj: &Value, lineno: usize, ty: &str) -> Result<(), String> {
    obj.get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {lineno}: {ty} missing string \"kind\""))?;
    obj.get("ts_us")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {lineno}: {ty} missing integer \"ts_us\""))?;
    if ty == "span" {
        obj.get("dur_us")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {lineno}: span missing integer \"dur_us\""))?;
    } else if obj.get("dur_us").is_some() {
        return Err(format!("line {lineno}: instant must not carry \"dur_us\""));
    }
    for key in ["iteration", "module"] {
        if let Some(v) = obj.get(key) {
            v.as_u64()
                .ok_or_else(|| format!("line {lineno}: \"{key}\" must be an integer"))?;
        }
    }
    if let Some(args) = obj.get("args") {
        args.as_obj()
            .ok_or_else(|| format!("line {lineno}: \"args\" must be an object"))?;
    }
    Ok(())
}

/// Validates a JSONL trace against the schema in DESIGN.md §5d:
/// a `meta` first line, `span`/`instant` event lines, and a final
/// `metrics` line. Returns counts on success and a line-addressed error
/// on the first violation.
pub fn validate_trace_jsonl(text: &str) -> Result<TraceFileStats, String> {
    let mut stats = TraceFileStats::default();
    let mut saw_meta = false;
    let mut saw_metrics = false;
    let mut lines = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        if saw_metrics {
            return Err(format!("line {lineno}: content after the metrics line"));
        }
        let obj = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ty = obj
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string \"type\""))?;
        match ty {
            "meta" => {
                if lines != 1 {
                    return Err(format!("line {lineno}: meta must be the first line"));
                }
                saw_meta = true;
                stats.schema_version = obj
                    .get("schema_version")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {lineno}: meta missing \"schema_version\""))?;
                if stats.schema_version != crate::export::SCHEMA_VERSION {
                    return Err(format!(
                        "line {lineno}: unsupported schema_version {}",
                        stats.schema_version
                    ));
                }
                stats.dropped = obj
                    .get("dropped")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {lineno}: meta missing \"dropped\""))?;
            }
            "span" | "instant" => {
                if !saw_meta {
                    return Err(format!("line {lineno}: event before the meta line"));
                }
                validate_event_line(&obj, lineno, ty)?;
                if ty == "span" {
                    stats.spans += 1;
                } else {
                    stats.instants += 1;
                }
            }
            "metrics" => {
                if !saw_meta {
                    return Err(format!("line {lineno}: metrics before the meta line"));
                }
                for key in ["counters", "gauges"] {
                    obj.get(key)
                        .and_then(Value::as_obj)
                        .ok_or_else(|| format!("line {lineno}: metrics missing object \"{key}\""))?;
                }
                obj.get("histograms")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("line {lineno}: metrics missing array \"histograms\""))?;
                saw_metrics = true;
            }
            other => return Err(format!("line {lineno}: unknown line type \"{other}\"")),
        }
    }
    if !saw_meta {
        return Err("trace has no meta line".to_string());
    }
    if !saw_metrics {
        return Err("trace has no metrics line".to_string());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_jsonl;
    use crate::telemetry::Telemetry;
    use crate::trace::ArgValue;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":[1,2.5,-3e2,true,null,"s\n"],"b":{"c":{}}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[4], Value::Null);
        assert_eq!(a[5].as_str(), Some("s\n"));
        assert!(v.get("b").unwrap().get("c").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{}x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn own_export_round_trips_through_validator() {
        let t = Telemetry::enabled();
        t.counter("cache.hits").inc();
        t.histogram("step_us").observe(42);
        {
            let _s = t.span("train_step").iteration(0).arg("fp_cached", true);
        }
        t.instant("freeze_decision", Some(0), Some(1), vec![("sp", ArgValue::F64(0.5))]);
        let stats = validate_trace_jsonl(&export_jsonl(&t)).unwrap();
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.schema_version, crate::export::SCHEMA_VERSION);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_trace_jsonl("").is_err());
        // No meta line.
        assert!(validate_trace_jsonl(
            "{\"type\":\"span\",\"kind\":\"x\",\"ts_us\":0,\"dur_us\":1}\n"
        )
        .is_err());
        // Span without duration.
        let bad = format!(
            "{{\"type\":\"meta\",\"schema_version\":{},\"events\":1,\"dropped\":0}}\n\
             {{\"type\":\"span\",\"kind\":\"x\",\"ts_us\":0}}\n\
             {{\"type\":\"metrics\",\"counters\":{{}},\"gauges\":{{}},\"histograms\":[]}}\n",
            crate::export::SCHEMA_VERSION
        );
        let err = validate_trace_jsonl(&bad).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // Content after metrics.
        let tail = format!(
            "{{\"type\":\"meta\",\"schema_version\":{},\"events\":0,\"dropped\":0}}\n\
             {{\"type\":\"metrics\",\"counters\":{{}},\"gauges\":{{}},\"histograms\":[]}}\n\
             {{\"type\":\"metrics\",\"counters\":{{}},\"gauges\":{{}},\"histograms\":[]}}\n",
            crate::export::SCHEMA_VERSION
        );
        assert!(validate_trace_jsonl(&tail).is_err());
    }
}
