//! Trace summarization: JSONL trace → the paper's per-layer frozen-time
//! breakdown plus the observed iteration split `simsys` calibrates
//! against. This is the library behind `bin/trace_report`.

use crate::jsonl::{parse, validate_trace_jsonl, Value};

/// Aggregate duration stats for one event kind.
#[derive(Debug, Clone, PartialEq)]
pub struct KindStat {
    /// Event kind name.
    pub kind: String,
    /// Number of events of this kind.
    pub count: u64,
    /// Total span time in µs (0 for instants).
    pub total_us: u64,
}

/// One observed `train_step` span.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStat {
    /// Iteration index.
    pub iteration: u64,
    /// Measured step duration in µs.
    pub dur_us: u64,
    /// Frozen prefix in force during the step.
    pub frozen_prefix: u64,
    /// Whether the frozen-prefix forward came from the activation cache.
    pub fp_cached: bool,
}

/// One freeze/unfreeze decision from the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FreezeDecision {
    /// Iteration the decision fired at.
    pub iteration: u64,
    /// Frozen prefix after the decision.
    pub frozen_prefix: u64,
    /// `"froze"` or `"unfroze"`.
    pub action: String,
    /// The triggering plasticity (SP/CKA) value, when recorded.
    pub value: Option<f64>,
}

/// Per-layer share of the run spent frozen — the paper's breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStat {
    /// Layer/module index.
    pub module: u64,
    /// Steps during which this layer was frozen.
    pub frozen_steps: u64,
    /// Total observed steps.
    pub total_steps: u64,
}

impl LayerStat {
    /// Fraction of observed steps this layer spent frozen.
    pub fn frozen_frac(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.frozen_steps as f64 / self.total_steps as f64
        }
    }
}

/// Mean observed step time grouped by `(frozen_prefix, fp_cached)` — the
/// shape `simsys::calibration` compares predictions against.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitStat {
    /// Frozen prefix.
    pub frozen_prefix: u64,
    /// Whether the frozen forward was cache-served.
    pub fp_cached: bool,
    /// Steps observed in this configuration.
    pub count: u64,
    /// Mean step duration in µs.
    pub mean_dur_us: f64,
}

/// Aggregates over the serving engine's `serve_batch` spans: how probe
/// requests coalesced and where their latency went (queue wait vs
/// execution).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeBatchStat {
    /// Executed serve batches (one span each).
    pub batches: u64,
    /// Probe requests across all batches.
    pub requests: u64,
    /// Coalesced sample rows across all batches.
    pub rows: u64,
    /// `(batch_size, count)` distribution, size-sorted.
    pub batch_size_hist: Vec<(u64, u64)>,
    /// Total leader queue-wait across batches in µs.
    pub total_queue_wait_us: u64,
    /// Total execution (span) time across batches in µs.
    pub total_exec_us: u64,
    /// Requests shed at admission (`serve.shed`): the queue was full and
    /// the caller degraded to the inline path.
    pub shed: u64,
    /// Probe captures that fell back to the inline reference forward
    /// (`serve.fallbacks`): serve failure, tripped breaker, or stale
    /// snapshot — bit-identical either way.
    pub fallbacks: u64,
}

impl ServeBatchStat {
    /// Mean requests coalesced per executed batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// One health-state transition from the trace's `health_transition`
/// instants, in trace order.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthTransition {
    /// `"degraded"`, `"recovered"`, or `"critical"`.
    pub edge: String,
    /// The degradation tag that moved.
    pub reason: String,
    /// Aggregate health level after the transition (0/1/2).
    pub level: u64,
}

/// Resilience-layer aggregates: circuit-breaker, watchdog, and health
/// counters plus the health-transition timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceStat {
    /// Breaker Closed→Open trips (`resil.breaker.trips`).
    pub breaker_trips: u64,
    /// Breaker HalfOpen→Closed recoveries (`resil.breaker.recoveries`).
    pub breaker_recoveries: u64,
    /// Probes rejected while the breaker was open
    /// (`resil.breaker.rejected`).
    pub breaker_rejected: u64,
    /// Watchdog-granted respawns (`resil.watchdog.respawns`).
    pub watchdog_respawns: u64,
    /// Watchdog budgets exhausted (`resil.watchdog.exhausted`).
    pub watchdog_exhausted: u64,
    /// Health degradations raised (`resil.health.degradations`).
    pub health_degradations: u64,
    /// Health degradations resolved (`resil.health.recoveries`).
    pub health_recoveries: u64,
    /// Critical conditions raised (`resil.health.criticals`).
    pub health_criticals: u64,
    /// The health-transition timeline in trace order.
    pub transitions: Vec<HealthTransition>,
}

impl ResilienceStat {
    /// Whether any resilience event occurred at all.
    pub fn any(&self) -> bool {
        self.breaker_trips
            + self.breaker_recoveries
            + self.breaker_rejected
            + self.watchdog_respawns
            + self.watchdog_exhausted
            + self.health_degradations
            + self.health_recoveries
            + self.health_criticals
            > 0
            || !self.transitions.is_empty()
    }
}

/// Chunked activation-store (cache v2) aggregates from the `store.*`
/// counters and gauges egeria-store mirrors into telemetry. All zero when
/// the run used the flat cache backend.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheV2Stat {
    /// Chunk blocks written to shard files (`store.chunks_written`).
    pub chunks_written: u64,
    /// Pre-codec payload bytes (`store.bytes_raw`).
    pub bytes_raw: u64,
    /// Post-codec bytes on disk (`store.bytes_encoded`).
    pub bytes_encoded: u64,
    /// Chunk blocks decoded from disk (`store.chunk_reads`).
    pub chunk_reads: u64,
    /// Multi-chunk reads served by one coalesced shard fetch
    /// (`store.coalesced_reads`).
    pub coalesced_reads: u64,
    /// Chunks evicted by the capacity bound (`store.evicted_chunks`).
    pub evicted_chunks: u64,
    /// Bytes freed by eviction (`store.evicted_bytes`).
    pub evicted_bytes: u64,
    /// Chunks quarantined for corruption (`store.corrupt_chunks`).
    pub corrupt_chunks: u64,
    /// Shard compactions run (`store.compactions`).
    pub compactions: u64,
    /// Final live on-disk bytes (gauge `store.live_bytes`).
    pub live_bytes: u64,
    /// Final shard-file count (gauge `store.shard_files`).
    pub shard_files: u64,
}

impl CacheV2Stat {
    /// Raw-to-encoded compression ratio (1.0 when nothing was written).
    pub fn codec_ratio(&self) -> f64 {
        if self.bytes_encoded == 0 {
            1.0
        } else {
            self.bytes_raw as f64 / self.bytes_encoded as f64
        }
    }

    /// Whether the chunked store was active at all this run.
    pub fn any(&self) -> bool {
        self.chunks_written + self.chunk_reads + self.corrupt_chunks + self.live_bytes > 0
    }
}

/// Everything `trace_report` prints, extracted from one JSONL trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Span + instant lines in the trace.
    pub total_events: usize,
    /// Events the recorder's ring evicted.
    pub dropped: u64,
    /// Per-kind counts and total span time, kind-sorted.
    pub kinds: Vec<KindStat>,
    /// Every observed `train_step`, iteration-sorted.
    pub iterations: Vec<IterationStat>,
    /// The freeze/unfreeze decision timeline in trace order.
    pub freeze_timeline: Vec<FreezeDecision>,
    /// Per-layer frozen share over the observed steps.
    pub layers: Vec<LayerStat>,
    /// Mean step time per `(frozen_prefix, fp_cached)` configuration.
    pub splits: Vec<SplitStat>,
    /// Serving-engine batch aggregates from `serve_batch` spans.
    pub serve: ServeBatchStat,
    /// Resilience-layer aggregates (breaker, watchdogs, health).
    pub resilience: ResilienceStat,
    /// Chunked activation-store aggregates (cache v2; zero when flat).
    pub cache_v2: CacheV2Stat,
    /// Final counter snapshot, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Final gauge snapshot, name-sorted.
    pub gauges: Vec<(String, f64)>,
}

fn arg_u64(obj: &Value, key: &str) -> Option<u64> {
    obj.get("args").and_then(|a| a.get(key)).and_then(Value::as_u64)
}

fn arg_f64(obj: &Value, key: &str) -> Option<f64> {
    obj.get("args").and_then(|a| a.get(key)).and_then(Value::as_f64)
}

fn arg_bool(obj: &Value, key: &str) -> Option<bool> {
    match obj.get("args").and_then(|a| a.get(key)) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Validates and summarizes a JSONL trace. Fails with the validator's
/// line-addressed error on malformed input.
pub fn summarize(text: &str) -> Result<TraceSummary, String> {
    let stats = validate_trace_jsonl(text)?;
    let mut summary = TraceSummary {
        dropped: stats.dropped,
        ..TraceSummary::default()
    };
    let mut kinds: Vec<KindStat> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let obj = parse(line)?;
        let ty = obj.get("type").and_then(Value::as_str).unwrap_or("");
        match ty {
            "span" | "instant" => {
                summary.total_events += 1;
                let kind = obj.get("kind").and_then(Value::as_str).unwrap_or("");
                let dur = obj.get("dur_us").and_then(Value::as_u64).unwrap_or(0);
                match kinds.iter_mut().find(|k| k.kind == kind) {
                    Some(k) => {
                        k.count += 1;
                        k.total_us += dur;
                    }
                    None => kinds.push(KindStat {
                        kind: kind.to_string(),
                        count: 1,
                        total_us: dur,
                    }),
                }
                if ty == "span" && kind == "train_step" {
                    summary.iterations.push(IterationStat {
                        iteration: obj.get("iteration").and_then(Value::as_u64).unwrap_or(0),
                        dur_us: dur,
                        frozen_prefix: arg_u64(&obj, "frozen_prefix").unwrap_or(0),
                        fp_cached: arg_bool(&obj, "fp_cached").unwrap_or(false),
                    });
                } else if ty == "span" && kind == "serve_batch" {
                    let requests = arg_u64(&obj, "requests").unwrap_or(1);
                    summary.serve.batches += 1;
                    summary.serve.requests += requests;
                    summary.serve.rows += arg_u64(&obj, "rows").unwrap_or(0);
                    summary.serve.total_queue_wait_us +=
                        arg_u64(&obj, "queue_wait_us").unwrap_or(0);
                    summary.serve.total_exec_us += dur;
                    match summary
                        .serve
                        .batch_size_hist
                        .iter_mut()
                        .find(|(size, _)| *size == requests)
                    {
                        Some((_, n)) => *n += 1,
                        None => summary.serve.batch_size_hist.push((requests, 1)),
                    }
                } else if ty == "instant" && kind == "health_transition" {
                    let arg_str = |key: &str| {
                        obj.get("args")
                            .and_then(|a| a.get(key))
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_string()
                    };
                    summary.resilience.transitions.push(HealthTransition {
                        edge: arg_str("edge"),
                        reason: arg_str("reason"),
                        level: arg_u64(&obj, "level").unwrap_or(0),
                    });
                } else if ty == "instant" && kind == "freeze_decision" {
                    summary.freeze_timeline.push(FreezeDecision {
                        iteration: obj.get("iteration").and_then(Value::as_u64).unwrap_or(0),
                        frozen_prefix: arg_u64(&obj, "frozen_prefix").unwrap_or(0),
                        action: obj
                            .get("args")
                            .and_then(|a| a.get("action"))
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        value: arg_f64(&obj, "value"),
                    });
                }
            }
            "metrics" => {
                if let Some(counters) = obj.get("counters").and_then(Value::as_obj) {
                    summary.counters = counters
                        .iter()
                        .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                        .collect();
                }
                if let Some(gauges) = obj.get("gauges").and_then(Value::as_obj) {
                    summary.gauges = gauges
                        .iter()
                        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                        .collect();
                }
            }
            _ => {}
        }
    }
    kinds.sort_by(|a, b| a.kind.cmp(&b.kind));
    summary.kinds = kinds;
    summary.serve.batch_size_hist.sort_by_key(|(size, _)| *size);
    summary.iterations.sort_by_key(|i| i.iteration);

    // Degradation and resilience counters from the final metrics snapshot.
    {
        let get = |name: &str| {
            summary
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let shed = get("serve.shed");
        let fallbacks = get("serve.fallbacks");
        let resil = ResilienceStat {
            breaker_trips: get("resil.breaker.trips"),
            breaker_recoveries: get("resil.breaker.recoveries"),
            breaker_rejected: get("resil.breaker.rejected"),
            watchdog_respawns: get("resil.watchdog.respawns"),
            watchdog_exhausted: get("resil.watchdog.exhausted"),
            health_degradations: get("resil.health.degradations"),
            health_recoveries: get("resil.health.recoveries"),
            health_criticals: get("resil.health.criticals"),
            transitions: Vec::new(),
        };
        summary.serve.shed = shed;
        summary.serve.fallbacks = fallbacks;
        let transitions = std::mem::take(&mut summary.resilience.transitions);
        summary.resilience = ResilienceStat {
            transitions,
            ..resil
        };
        let gauge = |name: &str| {
            summary
                .gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        summary.cache_v2 = CacheV2Stat {
            chunks_written: get("store.chunks_written"),
            bytes_raw: get("store.bytes_raw"),
            bytes_encoded: get("store.bytes_encoded"),
            chunk_reads: get("store.chunk_reads"),
            coalesced_reads: get("store.coalesced_reads"),
            evicted_chunks: get("store.evicted_chunks"),
            evicted_bytes: get("store.evicted_bytes"),
            corrupt_chunks: get("store.corrupt_chunks"),
            compactions: get("store.compactions"),
            live_bytes: gauge("store.live_bytes") as u64,
            shard_files: gauge("store.shard_files") as u64,
        };
    }

    // Per-layer frozen share: layer m is frozen during a step iff the
    // step's frozen_prefix exceeds m. Cover every layer up to the deepest
    // prefix ever reached so fully-plastic layers still show a row.
    let total_steps = summary.iterations.len() as u64;
    let max_prefix = summary
        .iterations
        .iter()
        .map(|i| i.frozen_prefix)
        .max()
        .unwrap_or(0);
    for module in 0..max_prefix {
        let frozen_steps = summary
            .iterations
            .iter()
            .filter(|i| i.frozen_prefix > module)
            .count() as u64;
        summary.layers.push(LayerStat {
            module,
            frozen_steps,
            total_steps,
        });
    }

    // Observed iteration split per (frozen_prefix, fp_cached).
    let mut splits: Vec<(u64, bool, u64, u64)> = Vec::new();
    for it in &summary.iterations {
        match splits
            .iter_mut()
            .find(|(p, c, _, _)| *p == it.frozen_prefix && *c == it.fp_cached)
        {
            Some((_, _, n, sum)) => {
                *n += 1;
                *sum += it.dur_us;
            }
            None => splits.push((it.frozen_prefix, it.fp_cached, 1, it.dur_us)),
        }
    }
    splits.sort_by_key(|(p, c, _, _)| (*p, *c));
    summary.splits = splits
        .into_iter()
        .map(|(frozen_prefix, fp_cached, count, sum)| SplitStat {
            frozen_prefix,
            fp_cached,
            count,
            mean_dur_us: sum as f64 / count as f64,
        })
        .collect();
    Ok(summary)
}

/// Renders the summary as the human-readable report `trace_report`
/// prints: per-kind totals, the freeze timeline, the per-layer
/// frozen-time breakdown, and the observed iteration split.
pub fn render(summary: &TraceSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events ({} dropped by ring)",
        summary.total_events, summary.dropped
    );
    let _ = writeln!(out, "\n== event kinds ==");
    let _ = writeln!(out, "{:<24} {:>8} {:>12}", "kind", "count", "total_us");
    for k in &summary.kinds {
        let _ = writeln!(out, "{:<24} {:>8} {:>12}", k.kind, k.count, k.total_us);
    }
    let _ = writeln!(out, "\n== freeze timeline ==");
    if summary.freeze_timeline.is_empty() {
        let _ = writeln!(out, "(no freeze decisions recorded)");
    }
    for d in &summary.freeze_timeline {
        match d.value {
            Some(v) => {
                let _ = writeln!(
                    out,
                    "iter {:>6}: {} -> prefix {} (plasticity {v:.6})",
                    d.iteration, d.action, d.frozen_prefix
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "iter {:>6}: {} -> prefix {}",
                    d.iteration, d.action, d.frozen_prefix
                );
            }
        }
    }
    let _ = writeln!(out, "\n== per-layer frozen time ==");
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>12} {:>10}",
        "layer", "frozen_steps", "total_steps", "frozen_%"
    );
    for l in &summary.layers {
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>12} {:>9.1}%",
            l.module,
            l.frozen_steps,
            l.total_steps,
            100.0 * l.frozen_frac()
        );
    }
    let _ = writeln!(out, "\n== observed iteration split ==");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>8} {:>14}",
        "frozen_prefix", "fp_cached", "steps", "mean_us"
    );
    for s in &summary.splits {
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>8} {:>14.1}",
            s.frozen_prefix, s.fp_cached, s.count, s.mean_dur_us
        );
    }
    let _ = writeln!(out, "\n== serve batches ==");
    if summary.serve.batches == 0 {
        let _ = writeln!(out, "(no serve_batch spans recorded)");
    } else {
        let s = &summary.serve;
        let _ = writeln!(
            out,
            "{} batches, {} requests ({} rows), mean batch size {:.2}",
            s.batches,
            s.requests,
            s.rows,
            s.mean_batch_size()
        );
        let _ = writeln!(out, "{:<12} {:>8}", "batch_size", "count");
        for (size, count) in &s.batch_size_hist {
            let _ = writeln!(out, "{size:<12} {count:>8}");
        }
        let total = (s.total_queue_wait_us + s.total_exec_us).max(1);
        let _ = writeln!(
            out,
            "latency split: queue wait {} us ({:.1}%), execute {} us ({:.1}%)",
            s.total_queue_wait_us,
            100.0 * s.total_queue_wait_us as f64 / total as f64,
            s.total_exec_us,
            100.0 * s.total_exec_us as f64 / total as f64
        );
    }
    let _ = writeln!(out, "shed at admission (overloaded): {}", summary.serve.shed);
    let _ = writeln!(out, "inline fallbacks: {}", summary.serve.fallbacks);
    let _ = writeln!(out, "\n== resilience ==");
    if !summary.resilience.any() {
        let _ = writeln!(out, "(no resilience events recorded)");
    } else {
        let r = &summary.resilience;
        let _ = writeln!(
            out,
            "breaker: {} trips, {} recoveries, {} rejected probes",
            r.breaker_trips, r.breaker_recoveries, r.breaker_rejected
        );
        let _ = writeln!(
            out,
            "watchdog: {} respawns, {} budgets exhausted",
            r.watchdog_respawns, r.watchdog_exhausted
        );
        let _ = writeln!(
            out,
            "health: {} degradations, {} recoveries, {} criticals",
            r.health_degradations, r.health_recoveries, r.health_criticals
        );
        for tr in &r.transitions {
            let _ = writeln!(
                out,
                "health {}: {} -> level {}",
                tr.edge, tr.reason, tr.level
            );
        }
    }
    let _ = writeln!(out, "\n== cache v2 ==");
    if !summary.cache_v2.any() {
        let _ = writeln!(out, "(no chunked-store activity recorded; flat backend or cache off)");
    } else {
        let c = &summary.cache_v2;
        let _ = writeln!(
            out,
            "codec: {} raw -> {} encoded bytes (ratio {:.2}x) over {} chunks",
            c.bytes_raw,
            c.bytes_encoded,
            c.codec_ratio(),
            c.chunks_written
        );
        let _ = writeln!(
            out,
            "reads: {} chunk decodes, {} coalesced shard fetches",
            c.chunk_reads, c.coalesced_reads
        );
        let _ = writeln!(
            out,
            "eviction: {} chunks ({} bytes) evicted, {} compactions",
            c.evicted_chunks, c.evicted_bytes, c.compactions
        );
        let _ = writeln!(out, "corrupt chunks quarantined: {}", c.corrupt_chunks);
        let _ = writeln!(
            out,
            "footprint: {} live bytes across {} shard files",
            c.live_bytes, c.shard_files
        );
    }
    let _ = writeln!(out, "\n== counters ==");
    for (name, v) in &summary.counters {
        let _ = writeln!(out, "{name} = {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_jsonl;
    use crate::telemetry::Telemetry;
    use crate::trace::ArgValue;

    fn demo_trace() -> String {
        let t = Telemetry::enabled();
        t.counter("cache.hits").add(3);
        t.counter("cache.misses").add(1);
        for it in 0..4u64 {
            let prefix = if it < 2 { 0u64 } else { 2u64 };
            let _s = t
                .span("train_step")
                .iteration(it)
                .arg("frozen_prefix", prefix)
                .arg("fp_cached", it == 3);
        }
        t.instant(
            "freeze_decision",
            Some(2),
            Some(2),
            vec![
                ("action", ArgValue::Str("froze")),
                ("frozen_prefix", ArgValue::U64(2)),
                ("value", ArgValue::F64(0.0125)),
            ],
        );
        for requests in [1u64, 3, 3] {
            let _s = t
                .span("serve_batch")
                .module(1)
                .arg("requests", requests)
                .arg("rows", requests * 2)
                .arg("queue_wait_us", 10u64);
        }
        t.counter("serve.shed").add(2);
        t.counter("serve.fallbacks").add(5);
        t.counter("store.chunks_written").add(10);
        t.counter("store.bytes_raw").add(4000);
        t.counter("store.bytes_encoded").add(1000);
        t.counter("store.chunk_reads").add(6);
        t.counter("store.coalesced_reads").add(2);
        t.counter("store.evicted_chunks").add(1);
        t.counter("store.evicted_bytes").add(100);
        t.counter("store.corrupt_chunks").add(1);
        t.gauge("store.live_bytes").set(900.0);
        t.gauge("store.shard_files").set(2.0);
        t.counter("resil.breaker.trips").add(1);
        t.counter("resil.breaker.recoveries").add(1);
        t.counter("resil.watchdog.respawns").add(2);
        t.counter("resil.health.degradations").add(1);
        t.counter("resil.health.recoveries").add(1);
        t.instant(
            "health_transition",
            None,
            None,
            vec![
                ("edge", ArgValue::Str("degraded")),
                ("reason", ArgValue::Str("serve-breaker-open")),
                ("level", ArgValue::U64(1)),
            ],
        );
        t.instant(
            "health_transition",
            None,
            None,
            vec![
                ("edge", ArgValue::Str("recovered")),
                ("reason", ArgValue::Str("serve-breaker-open")),
                ("level", ArgValue::U64(0)),
            ],
        );
        export_jsonl(&t)
    }

    #[test]
    fn summarizes_iterations_layers_and_timeline() {
        let s = summarize(&demo_trace()).unwrap();
        assert_eq!(s.iterations.len(), 4);
        assert_eq!(s.freeze_timeline.len(), 1);
        assert_eq!(s.freeze_timeline[0].action, "froze");
        assert_eq!(s.freeze_timeline[0].frozen_prefix, 2);
        assert_eq!(s.freeze_timeline[0].value, Some(0.0125));
        // Layers 0 and 1 are frozen for the last 2 of 4 steps.
        assert_eq!(s.layers.len(), 2);
        for l in &s.layers {
            assert_eq!(l.frozen_steps, 2);
            assert_eq!(l.total_steps, 4);
            assert!((l.frozen_frac() - 0.5).abs() < 1e-12);
        }
        // Splits: (0,false) x2, (2,false) x1, (2,true) x1.
        assert_eq!(s.splits.len(), 3);
        assert_eq!(s.splits[0].frozen_prefix, 0);
        assert_eq!(s.splits[0].count, 2);
        assert_eq!(s.splits[1].frozen_prefix, 2);
        assert!(!s.splits[1].fp_cached);
        assert!(s.splits[2].fp_cached);
        assert_eq!(s.counters.iter().find(|(n, _)| n == "cache.hits").unwrap().1, 3);
        // Serve batches: sizes 1, 3, 3 -> 3 batches, 7 requests, 14 rows.
        assert_eq!(s.serve.batches, 3);
        assert_eq!(s.serve.requests, 7);
        assert_eq!(s.serve.rows, 14);
        assert_eq!(s.serve.batch_size_hist, vec![(1, 1), (3, 2)]);
        assert_eq!(s.serve.total_queue_wait_us, 30);
        assert!((s.serve.mean_batch_size() - 7.0 / 3.0).abs() < 1e-12);
        // Degradation counters flow into the serve section.
        assert_eq!(s.serve.shed, 2);
        assert_eq!(s.serve.fallbacks, 5);
        // Resilience aggregates: counters plus the transition timeline.
        assert!(s.resilience.any());
        assert_eq!(s.resilience.breaker_trips, 1);
        assert_eq!(s.resilience.breaker_recoveries, 1);
        assert_eq!(s.resilience.watchdog_respawns, 2);
        assert_eq!(s.resilience.health_degradations, 1);
        assert_eq!(s.resilience.transitions.len(), 2);
        assert_eq!(s.resilience.transitions[0].edge, "degraded");
        assert_eq!(s.resilience.transitions[0].reason, "serve-breaker-open");
        assert_eq!(s.resilience.transitions[1].level, 0);
        // Cache v2 aggregates from the store.* counters and gauges.
        assert!(s.cache_v2.any());
        assert_eq!(s.cache_v2.chunks_written, 10);
        assert_eq!(s.cache_v2.bytes_raw, 4000);
        assert_eq!(s.cache_v2.bytes_encoded, 1000);
        assert!((s.cache_v2.codec_ratio() - 4.0).abs() < 1e-12);
        assert_eq!(s.cache_v2.chunk_reads, 6);
        assert_eq!(s.cache_v2.coalesced_reads, 2);
        assert_eq!(s.cache_v2.evicted_chunks, 1);
        assert_eq!(s.cache_v2.corrupt_chunks, 1);
        assert_eq!(s.cache_v2.live_bytes, 900);
        assert_eq!(s.cache_v2.shard_files, 2);
    }

    #[test]
    fn render_includes_all_sections() {
        let s = summarize(&demo_trace()).unwrap();
        let text = render(&s);
        for section in [
            "== event kinds ==",
            "== freeze timeline ==",
            "== per-layer frozen time ==",
            "== observed iteration split ==",
            "== serve batches ==",
            "== resilience ==",
            "== cache v2 ==",
            "== counters ==",
        ] {
            assert!(text.contains(section), "missing {section}:\n{text}");
        }
        assert!(text.contains("froze -> prefix 2"));
        assert!(text.contains("cache.hits = 3"));
        assert!(text.contains("3 batches, 7 requests (14 rows), mean batch size 2.33"));
        assert!(text.contains("latency split: queue wait 30 us"));
        assert!(text.contains("shed at admission (overloaded): 2"));
        assert!(text.contains("inline fallbacks: 5"));
        assert!(text.contains("breaker: 1 trips, 1 recoveries, 0 rejected probes"));
        assert!(text.contains("watchdog: 2 respawns, 0 budgets exhausted"));
        assert!(text.contains("health degraded: serve-breaker-open -> level 1"));
        assert!(text.contains("health recovered: serve-breaker-open -> level 0"));
        assert!(text.contains("codec: 4000 raw -> 1000 encoded bytes (ratio 4.00x) over 10 chunks"));
        assert!(text.contains("footprint: 900 live bytes across 2 shard files"));
    }

    #[test]
    fn quiet_trace_renders_empty_resilience_section() {
        let t = Telemetry::enabled();
        let _s = t.span("train_step").iteration(0);
        let s = summarize(&export_jsonl(&t)).unwrap();
        assert!(!s.resilience.any());
        let text = render(&s);
        assert!(text.contains("(no resilience events recorded)"));
    }

    #[test]
    fn summarize_rejects_invalid_input() {
        assert!(summarize("not json").is_err());
    }
}
