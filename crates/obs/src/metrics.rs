//! Lock-cheap metrics: counters, gauges, and log2-bucketed histograms.
//!
//! Handles are `Arc`-shared atomics — after registration (a short mutex
//! hold, done once per call site) every update is a single relaxed atomic
//! operation. Snapshots are sorted by metric name so two identical runs
//! serialize identically regardless of registration order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one per power of two of the recorded
/// value, so bucket `i` holds values `v` with `floor(log2(v)) == i - 1`
/// (bucket 0 holds `v == 0`). Fixed at compile time — bucket geometry is
/// part of the golden-run fingerprint and must never depend on the data.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter. Cloning shares the underlying cell;
/// a handle from a disabled [`crate::Telemetry`] is empty and every
/// operation on it is a no-op.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (what disabled telemetry hands out).
    pub fn noop() -> Self {
        Counter(None)
    }

    fn live(cell: Arc<AtomicU64>) -> Self {
        Counter(Some(cell))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }
}

/// A last-value-wins gauge storing an `f64` as bits.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    fn live(cell: Arc<AtomicU64>) -> Self {
        Gauge(Some(cell))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.0 {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }
}

/// Shared histogram cells: fixed log2 buckets plus count and integer sum.
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A histogram over `u64` samples with [`HISTOGRAM_BUCKETS`] fixed log2
/// buckets: bucket 0 counts zeros, bucket `i ≥ 1` counts samples whose
/// highest set bit is `i - 1` (i.e. `2^(i-1) ≤ v < 2^i`). The geometry is
/// data-independent, which keeps snapshots deterministic.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

/// The index of the log2 bucket a sample lands in.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// A no-op histogram.
    pub fn noop() -> Self {
        Histogram(None)
    }

    fn live(cells: Arc<HistogramCells>) -> Self {
        Histogram(Some(cells))
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            // bucket_index(u64::MAX) == 64 would overflow the array; clamp
            // the top bucket instead of branching on the caller.
            let idx = bucket_index(v).min(HISTOGRAM_BUCKETS - 1);
            h.buckets[idx].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map(|h| h.count.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Sum of all samples (wrapping on overflow, as counters do).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map(|h| h.sum.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Non-empty buckets as `(bucket index, count)` in ascending index
    /// order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        match &self.0 {
            None => Vec::new(),
            Some(h) => h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i, n))
                })
                .collect(),
        }
    }
}

enum MetricCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCells>),
}

/// The registry: name → metric. Registration scans a vector under a mutex
/// (metric sets are small and registration is once-per-call-site); updates
/// never touch the lock.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<(String, MetricCell)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Registering a name that already holds a different metric kind
    /// returns a fresh no-op handle rather than corrupting the registry.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        if let Some((_, cell)) = m.iter().find(|(n, _)| n == name) {
            return match cell {
                MetricCell::Counter(c) => Counter::live(Arc::clone(c)),
                _ => Counter::noop(),
            };
        }
        let cell = Arc::new(AtomicU64::new(0));
        m.push((name.to_string(), MetricCell::Counter(Arc::clone(&cell))));
        Counter::live(cell)
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        if let Some((_, cell)) = m.iter().find(|(n, _)| n == name) {
            return match cell {
                MetricCell::Gauge(c) => Gauge::live(Arc::clone(c)),
                _ => Gauge::noop(),
            };
        }
        let cell = Arc::new(AtomicU64::new(0.0f64.to_bits()));
        m.push((name.to_string(), MetricCell::Gauge(Arc::clone(&cell))));
        Gauge::live(cell)
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        if let Some((_, cell)) = m.iter().find(|(n, _)| n == name) {
            return match cell {
                MetricCell::Histogram(c) => Histogram::live(Arc::clone(c)),
                _ => Histogram::noop(),
            };
        }
        let cells = Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        });
        m.push((name.to_string(), MetricCell::Histogram(Arc::clone(&cells))));
        Histogram::live(cells)
    }

    /// A point-in-time snapshot, sorted by metric name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("metrics registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, cell) in m.iter() {
            match cell {
                MetricCell::Counter(c) => {
                    counters.push((name.clone(), c.load(Ordering::Relaxed)));
                }
                MetricCell::Gauge(c) => {
                    gauges.push((name.clone(), f64::from_bits(c.load(Ordering::Relaxed))));
                }
                MetricCell::Histogram(h) => {
                    let buckets = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then_some((i, n))
                        })
                        .collect();
                    histograms.push(HistogramSnapshot {
                        name: name.clone(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets,
                    });
                }
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One histogram's snapshot: sparse `(bucket, count)` pairs in bucket
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(usize, u64)>,
}

/// A deterministic point-in-time view of a registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, f64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of a counter, or `None` if it was never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of a gauge, or `None` if it was never registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_the_cell() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::noop();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(4.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::noop();
        h.observe(10);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn log2_buckets_are_fixed_and_exhaustive() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in [0u64, 1, 1, 3, 900, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let buckets = h.nonzero_buckets();
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 2), (2, 1), (10, 1), (HISTOGRAM_BUCKETS - 1, 1)]
        );
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.gauge("mid").set(1.5);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "alpha");
        assert_eq!(s.counters[1].0, "zeta");
        assert_eq!(s.gauge("mid"), Some(1.5));
    }

    #[test]
    fn kind_mismatch_yields_noop_not_corruption() {
        let r = MetricsRegistry::new();
        r.counter("m").inc();
        let g = r.gauge("m");
        g.set(9.0);
        assert_eq!(r.snapshot().counter("m"), Some(1));
        assert_eq!(r.snapshot().gauge("m"), None);
    }

    #[test]
    fn updates_race_free_across_threads() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
