//! Deterministic serialization of traces and metric snapshots.
//!
//! Two formats from the same data:
//!
//! - **JSONL** ([`export_jsonl`]): one JSON object per line — a `meta`
//!   header, one `span`/`instant` line per event, then one `metrics` line
//!   holding the final snapshot. This is what `trace_report` and the CI
//!   schema validator consume.
//! - **Chrome trace** ([`export_chrome_trace`]): a `trace_event` array
//!   loadable in `about://tracing` or Perfetto; spans become `"X"` events
//!   on a per-module track.
//!
//! Export must stay deterministic: no wall-clock reads, no hash-ordered
//! collections — metric maps are name-sorted vectors and float formatting
//! uses Rust's shortest-roundtrip `Display`.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::telemetry::Telemetry;
use crate::trace::{ArgValue, TraceEvent};

/// Schema version stamped into the `meta` line; bump when the line shape
/// changes so `trace_report` can reject traces it does not understand.
pub const SCHEMA_VERSION: u64 = 1;

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let mut num = format!("{v}");
        // `Display` prints integral floats without a fractional part
        // ("2"); keep them float-typed in JSON for schema stability.
        if !num.contains(['.', 'e', 'E']) {
            num.push_str(".0");
        }
        out.push_str(&num);
    } else {
        // JSON has no NaN/Inf; encode as null so parsers stay strict.
        out.push_str("null");
    }
}

fn push_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(u) => {
            let _ = write!(out, "{u}");
        }
        ArgValue::I64(i) => {
            let _ = write!(out, "{i}");
        }
        ArgValue::F64(f) => push_f64(out, *f),
        ArgValue::Str(s) => push_json_str(out, s),
        ArgValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn push_args_object(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_arg_value(out, v);
    }
    out.push('}');
}

fn push_event_line(out: &mut String, ev: &TraceEvent) {
    let ty = if ev.dur_us.is_some() { "span" } else { "instant" };
    let _ = write!(out, "{{\"type\":\"{ty}\",\"kind\":");
    push_json_str(out, ev.kind);
    let _ = write!(out, ",\"ts_us\":{}", ev.ts_us);
    if let Some(d) = ev.dur_us {
        let _ = write!(out, ",\"dur_us\":{d}");
    }
    if let Some(it) = ev.iteration {
        let _ = write!(out, ",\"iteration\":{it}");
    }
    if let Some(m) = ev.module {
        let _ = write!(out, ",\"module\":{m}");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":");
        push_args_object(out, &ev.args);
    }
    out.push('}');
}

fn push_metrics_line(out: &mut String, snap: &MetricsSnapshot) {
    out.push_str("{\"type\":\"metrics\",\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, name);
        out.push(':');
        push_f64(out, *v);
    }
    out.push_str("},\"histograms\":[");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(out, &h.name);
        let _ = write!(out, ",\"count\":{},\"sum\":{},\"buckets\":[", h.count, h.sum);
        for (j, (bucket, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{bucket},{n}]");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// Serializes a telemetry handle's trace and final metrics snapshot as
/// JSONL. Line 1 is a `meta` header; event lines follow in ring order;
/// the last line is the `metrics` snapshot. A disabled handle exports a
/// valid trace with zero events.
pub fn export_jsonl(telemetry: &Telemetry) -> String {
    let (events, dropped) = telemetry.trace_events();
    let snap = telemetry.metrics_snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"schema_version\":{SCHEMA_VERSION},\"events\":{},\"dropped\":{dropped}}}",
        events.len()
    );
    for ev in &events {
        push_event_line(&mut out, ev);
        out.push('\n');
    }
    push_metrics_line(&mut out, &snap);
    out.push('\n');
    out
}

/// Serializes the trace as a Chrome `trace_event` JSON document
/// (`{"traceEvents":[...]}`). Spans map to `"X"` complete events and
/// instants to `"i"`; the module index becomes the thread track so a
/// per-layer timeline renders as stacked rows.
pub fn export_chrome_trace(telemetry: &Telemetry) -> String {
    let (events, _) = telemetry.trace_events();
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, ev.kind);
        let tid = ev.module.unwrap_or(0);
        match ev.dur_us {
            Some(d) => {
                let _ = write!(
                    out,
                    ",\"ph\":\"X\",\"ts\":{},\"dur\":{d},\"pid\":1,\"tid\":{tid}",
                    ev.ts_us
                );
            }
            None => {
                let _ = write!(
                    out,
                    ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid}",
                    ev.ts_us
                );
            }
        }
        out.push_str(",\"args\":");
        let mut args: Vec<(&'static str, ArgValue)> = ev.args.clone();
        if let Some(it) = ev.iteration {
            args.push(("iteration", ArgValue::U64(it)));
        }
        push_args_object(&mut out, &args);
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ArgValue;

    #[test]
    fn jsonl_has_meta_events_and_metrics_lines() {
        let t = Telemetry::enabled();
        t.counter("cache.hits").add(2);
        t.gauge("pool.occupancy").set(0.75);
        t.histogram("step_us").observe(100);
        {
            let _s = t.span("train_step").iteration(0).arg("frozen_prefix", 1u64);
        }
        t.instant("freeze_decision", Some(0), Some(2), vec![("sp", ArgValue::F64(0.25))]);
        let jsonl = export_jsonl(&t);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"type\":\"meta\""));
        assert!(lines[1].contains("\"type\":\"span\""));
        assert!(lines[1].contains("\"kind\":\"train_step\""));
        assert!(lines[2].contains("\"type\":\"instant\""));
        assert!(lines[2].contains("\"sp\":0.25"));
        assert!(lines[3].contains("\"cache.hits\":2"));
        assert!(lines[3].contains("\"pool.occupancy\":0.75"));
        assert!(lines[3].contains("\"step_us\""));
    }

    #[test]
    fn integral_floats_stay_float_typed() {
        let t = Telemetry::enabled();
        t.gauge("g").set(2.0);
        let jsonl = export_jsonl(&t);
        assert!(jsonl.contains("\"g\":2.0"), "{jsonl}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let t = Telemetry::enabled();
        t.gauge("bad").set(f64::NAN);
        let jsonl = export_jsonl(&t);
        assert!(jsonl.contains("\"bad\":null"), "{jsonl}");
    }

    #[test]
    fn chrome_trace_uses_module_as_track() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("fwd").module(3);
        }
        t.instant("mark", None, None, vec![]);
        let doc = export_chrome_trace(&t);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"tid\":3"));
        assert!(doc.contains("\"ph\":\"i\""));
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
