//! Weight initialization schemes.

use egeria_tensor::{Rng, Tensor};

/// Kaiming/He normal initialization for ReLU networks: `N(0, 2/fan_in)`.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(dims, rng).mul_scalar(std)
}

/// Xavier/Glorot uniform initialization: `U(−a, a)`, `a = sqrt(6/(fan_in+fan_out))`.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// Fan-in for a conv weight `(c_out, c_in, kh, kw)` or linear `(out, in)`.
pub fn fan_in_of(dims: &[usize]) -> usize {
    match dims.len() {
        2 => dims[1],
        4 => dims[1] * dims[2] * dims[3],
        _ => dims.iter().skip(1).product::<usize>().max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_variance_tracks_fan_in() {
        let mut rng = Rng::new(1);
        let w = kaiming_normal(&[64, 128], 128, &mut rng);
        let var = w.sq_norm() / w.numel() as f32;
        let expected = 2.0 / 128.0;
        assert!((var - expected).abs() < expected * 0.3, "var {var}");
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = Rng::new(2);
        let w = xavier_uniform(&[32, 32], 32, 32, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(w.max() <= a && w.min() >= -a);
    }

    #[test]
    fn fan_in_for_linear_and_conv() {
        assert_eq!(fan_in_of(&[10, 20]), 20);
        assert_eq!(fan_in_of(&[8, 3, 3, 3]), 27);
    }
}
