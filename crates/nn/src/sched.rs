//! Learning-rate schedules used by the paper's workloads (§6.1):
//! step decay for CV training, inverse-square-root for Transformer,
//! linear for BERT fine-tuning, plus cosine annealing and arbitrary
//! lambda schedules (DeepLabv3's polynomial decay).

/// A learning-rate schedule mapping a step index to a learning rate.
///
/// "Step" granularity is the caller's choice — the CV schedules in the paper
/// are per-epoch, the NLP schedules per-iteration.
pub trait LrSchedule: Send {
    /// Learning rate at `step` (0-based).
    fn lr(&self, step: usize) -> f32;

    /// Base (initial) learning rate, used by Egeria's unfreeze trigger to
    /// detect a 10× decay (§4.2.2).
    fn base_lr(&self) -> f32;
}

/// Step decay: multiply by `gamma` every `step_size` steps.
pub struct StepDecay {
    base: f32,
    gamma: f32,
    step_size: usize,
}

impl StepDecay {
    /// Creates a step-decay schedule (`step_size` must be non-zero).
    pub fn new(base: f32, gamma: f32, step_size: usize) -> Self {
        StepDecay {
            base,
            gamma,
            step_size: step_size.max(1),
        }
    }
}

impl LrSchedule for StepDecay {
    fn lr(&self, step: usize) -> f32 {
        self.base * self.gamma.powi((step / self.step_size) as i32)
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

/// Decay by `gamma` at an explicit list of milestones (the ResNet "/10 at
/// epoch 100 and 150" schedule).
pub struct MultiStepDecay {
    base: f32,
    gamma: f32,
    milestones: Vec<usize>,
}

impl MultiStepDecay {
    /// Creates a multi-step decay; milestones are sorted internally.
    pub fn new(base: f32, gamma: f32, mut milestones: Vec<usize>) -> Self {
        milestones.sort_unstable();
        MultiStepDecay {
            base,
            gamma,
            milestones,
        }
    }
}

impl LrSchedule for MultiStepDecay {
    fn lr(&self, step: usize) -> f32 {
        let hits = self.milestones.iter().filter(|&&m| step >= m).count();
        self.base * self.gamma.powi(hits as i32)
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

/// Inverse-square-root schedule with linear warmup (Transformer training).
pub struct InverseSqrt {
    base: f32,
    warmup: usize,
}

impl InverseSqrt {
    /// Creates the schedule; `base` is the LR reached at the end of warmup.
    pub fn new(base: f32, warmup: usize) -> Self {
        InverseSqrt {
            base,
            warmup: warmup.max(1),
        }
    }
}

impl LrSchedule for InverseSqrt {
    fn lr(&self, step: usize) -> f32 {
        let s = step.max(1) as f32;
        let w = self.warmup as f32;
        if step < self.warmup {
            self.base * s / w
        } else {
            self.base * (w / s).sqrt()
        }
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

/// Linear decay to zero over `total` steps (BERT fine-tuning).
pub struct LinearDecay {
    base: f32,
    total: usize,
}

impl LinearDecay {
    /// Creates a linear decay over `total` steps.
    pub fn new(base: f32, total: usize) -> Self {
        LinearDecay {
            base,
            total: total.max(1),
        }
    }
}

impl LrSchedule for LinearDecay {
    fn lr(&self, step: usize) -> f32 {
        let frac = 1.0 - (step.min(self.total) as f32 / self.total as f32);
        self.base * frac
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

/// Cosine annealing between `base` and `eta_min` with period `t_max`
/// (SGDR-style warm restarts when `step` wraps past `t_max`).
pub struct CosineAnnealing {
    base: f32,
    eta_min: f32,
    t_max: usize,
}

impl CosineAnnealing {
    /// Creates a cosine-annealing schedule.
    pub fn new(base: f32, eta_min: f32, t_max: usize) -> Self {
        CosineAnnealing {
            base,
            eta_min,
            t_max: t_max.max(1),
        }
    }
}

impl LrSchedule for CosineAnnealing {
    fn lr(&self, step: usize) -> f32 {
        let pos = (step % self.t_max) as f32 / self.t_max as f32;
        self.eta_min
            + 0.5 * (self.base - self.eta_min) * (1.0 + (std::f32::consts::PI * pos).cos())
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

/// An arbitrary user-supplied schedule (the paper's "Lambda" scheduler for
/// DeepLabv3).
pub struct LambdaLr {
    base: f32,
    f: Box<dyn Fn(usize) -> f32 + Send>,
}

impl LambdaLr {
    /// Creates a schedule whose LR is `base * f(step)`.
    pub fn new(base: f32, f: impl Fn(usize) -> f32 + Send + 'static) -> Self {
        LambdaLr { base, f: Box::new(f) }
    }
}

impl LrSchedule for LambdaLr {
    fn lr(&self, step: usize) -> f32 {
        self.base * (self.f)(step)
    }

    fn base_lr(&self) -> f32 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_decay_divides_on_schedule() {
        let s = StepDecay::new(0.1, 0.1, 30);
        assert!((s.lr(0) - 0.1).abs() < 1e-7);
        assert!((s.lr(29) - 0.1).abs() < 1e-7);
        assert!((s.lr(30) - 0.01).abs() < 1e-7);
        assert!((s.lr(60) - 0.001).abs() < 1e-7);
    }

    #[test]
    fn multistep_hits_milestones() {
        let s = MultiStepDecay::new(0.1, 0.1, vec![150, 100]);
        assert!((s.lr(99) - 0.1).abs() < 1e-7);
        assert!((s.lr(100) - 0.01).abs() < 1e-7);
        assert!((s.lr(150) - 0.001).abs() < 1e-7);
    }

    #[test]
    fn inverse_sqrt_warms_up_then_decays() {
        let s = InverseSqrt::new(1e-3, 100);
        assert!(s.lr(10) < s.lr(50));
        assert!((s.lr(100) - 1e-3).abs() < 1e-8);
        assert!(s.lr(400) < s.lr(100));
        assert!((s.lr(400) - 0.5e-3).abs() < 1e-7);
    }

    #[test]
    fn linear_reaches_zero() {
        let s = LinearDecay::new(3e-5, 1000);
        assert!((s.lr(0) - 3e-5).abs() < 1e-10);
        assert!((s.lr(500) - 1.5e-5).abs() < 1e-9);
        assert_eq!(s.lr(1000), 0.0);
        assert_eq!(s.lr(2000), 0.0);
    }

    #[test]
    fn cosine_cycles() {
        let s = CosineAnnealing::new(0.1, 0.0, 100);
        assert!((s.lr(0) - 0.1).abs() < 1e-6);
        assert!(s.lr(50) < 0.06);
        // Warm restart at the period boundary.
        assert!((s.lr(100) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn lambda_applies_user_function() {
        // DeepLab-style polynomial decay.
        let s = LambdaLr::new(0.01, |step| (1.0 - step as f32 / 100.0).max(0.0).powf(0.9));
        assert!((s.lr(0) - 0.01).abs() < 1e-8);
        assert!(s.lr(50) < 0.01);
        assert_eq!(s.lr(100), 0.0);
    }
}
