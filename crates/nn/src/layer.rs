//! The layer trait and sequential composition.

use crate::param::Parameter;
use egeria_tensor::{Result, Tensor};

/// Forward-pass mode.
///
/// `Eval` disables dropout and makes BatchNorm use running statistics — the
/// same switch Egeria flips on frozen BatchNorm layers (§4.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: batch statistics, active dropout.
    Train,
    /// Inference: running statistics, identity dropout.
    Eval,
}

/// A differentiable layer: caches its forward context and implements an
/// explicit backward pass.
///
/// Contract:
///
/// - `backward` must be called at most once per `forward`, with a gradient
///   whose shape matches the forward output;
/// - parameter gradients are *accumulated* into [`Parameter::grad`];
/// - layers must honour `Parameter::requires_grad == false` by skipping the
///   accumulation (input gradients are still propagated — the trainer stops
///   backpropagation at the module boundary, not the layer).
pub trait Layer: Send {
    /// Computes the layer output, caching whatever `backward` needs.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Backpropagates `grad_out`, accumulating parameter gradients and
    /// returning the gradient with respect to the forward input.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Immutable views of the layer's parameters (possibly empty).
    fn params(&self) -> Vec<&Parameter>;

    /// Mutable views of the layer's parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Parameter>;

    /// A short type name for diagnostics, e.g. `"Conv2d"`.
    fn kind(&self) -> &'static str;

    /// Non-parameter state buffers (e.g. BatchNorm running statistics) in a
    /// stable order; empty for stateless layers.
    ///
    /// Snapshot copies must include these or frozen BatchNorm layers in the
    /// copy would normalize with stale statistics.
    fn state_buffers(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable view of [`Layer::state_buffers`].
    fn state_buffers_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Sets `requires_grad` on every parameter of this layer.
    fn set_trainable(&mut self, trainable: bool) {
        for p in self.params_mut() {
            p.requires_grad = trainable;
        }
    }

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Clears all accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

/// A chain of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn params(&self) -> Vec<&Parameter> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn state_buffers(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.state_buffers()).collect()
    }

    fn state_buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.state_buffers_mut())
            .collect()
    }

    fn kind(&self) -> &'static str {
        "Sequential"
    }
}

/// The identity layer (useful as a residual shortcut placeholder).
pub struct Identity;

impl Layer for Identity {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        Ok(x.clone())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        Ok(grad_out.clone())
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn kind(&self) -> &'static str {
        "Identity"
    }
}

/// Numerically checks a layer's input gradient against central finite
/// differences of a random linear functional of the output.
///
/// Intended for tests: returns the maximum absolute deviation over `probes`
/// random input coordinates.
pub fn gradcheck_input(
    layer: &mut dyn Layer,
    x: &Tensor,
    probes: &[usize],
    eps: f32,
) -> Result<f32> {
    use egeria_tensor::Rng;
    let y = layer.forward(x, Mode::Train)?;
    let mut rng = Rng::new(0xBEEF);
    let c = Tensor::randn(y.dims(), &mut rng);
    let gx = layer.backward(&c)?;
    let mut worst = 0.0f32;
    for &p in probes {
        let mut xp = x.clone();
        xp.data_mut()[p] += eps;
        let yp = layer.forward(&xp, Mode::Train)?.dot(&c)?;
        let mut xm = x.clone();
        xm.data_mut()[p] -= eps;
        let ym = layer.forward(&xm, Mode::Train)?.dot(&c)?;
        let numeric = (yp - ym) / (2.0 * eps);
        worst = worst.max((numeric - gx.data()[p]).abs());
    }
    // Restore the cached forward context for the caller.
    let _ = layer.forward(x, Mode::Train)?;
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use egeria_tensor::Rng;

    #[test]
    fn identity_round_trips() {
        let mut id = Identity;
        let x = Tensor::arange(4);
        assert_eq!(id.forward(&x, Mode::Train).unwrap(), x);
        assert_eq!(id.backward(&x).unwrap(), x);
        assert_eq!(id.param_count(), 0);
    }

    #[test]
    fn sequential_composes_forward_and_backward() {
        let mut rng = Rng::new(1);
        let mut seq = Sequential::new()
            .push(Box::new(Linear::new("l1", 4, 8, true, &mut rng)))
            .push(Box::new(Linear::new("l2", 8, 2, true, &mut rng)));
        assert_eq!(seq.len(), 2);
        let x = Tensor::randn(&[3, 4], &mut rng);
        let y = seq.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        let gx = seq.backward(&Tensor::ones(&[3, 2])).unwrap();
        assert_eq!(gx.dims(), &[3, 4]);
        // Both layers should have gradients on weight and bias.
        assert_eq!(seq.params().len(), 4);
        assert!(seq.params().iter().all(|p| p.grad.is_some()));
    }

    #[test]
    fn set_trainable_freezes_everything() {
        let mut rng = Rng::new(2);
        let mut seq = Sequential::new().push(Box::new(Linear::new("l", 3, 3, true, &mut rng)));
        seq.set_trainable(false);
        assert!(seq.params().iter().all(|p| !p.requires_grad));
        let x = Tensor::randn(&[2, 3], &mut rng);
        let _ = seq.forward(&x, Mode::Train).unwrap();
        let _ = seq.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert!(seq.params().iter().all(|p| p.grad.is_none()));
    }

    #[test]
    fn zero_grad_clears_gradients() {
        let mut rng = Rng::new(3);
        let mut seq = Sequential::new().push(Box::new(Linear::new("l", 3, 3, true, &mut rng)));
        let x = Tensor::randn(&[2, 3], &mut rng);
        let _ = seq.forward(&x, Mode::Train).unwrap();
        let _ = seq.backward(&Tensor::ones(&[2, 3])).unwrap();
        seq.zero_grad();
        assert!(seq.params().iter().all(|p| p.grad.is_none()));
    }
}
