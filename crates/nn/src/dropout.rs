//! Inverted dropout with a deterministic per-forward seed stream.

use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use egeria_tensor::{Result, Rng, Tensor, TensorError};

/// Inverted dropout: zeroes activations with probability `p` during training
/// and scales survivors by `1/(1−p)`; identity in eval mode.
///
/// The mask stream is driven by an owned deterministic [`Rng`], so whole
/// training runs replay exactly given the same seed — a prerequisite for
/// validating the activation cache bit-for-bit.
pub struct Dropout {
    p: f32,
    rng: Rng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32, rng: Rng) -> Self {
        Dropout {
            p: p.clamp(0.0, 0.999),
            rng,
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        // egeria-lint: allow(float-exact-eq): p is a user-set hyperparameter
        // clamped at construction; exact 0.0 means "dropout disabled", and
        // the identity fast path multiplies no data (NaNs pass through).
        if mode == Mode::Eval || self.p == 0.0 {
            self.mask = None;
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.dims());
        for m in mask.data_mut() {
            *m = if self.rng.uniform() < keep { scale } else { 0.0 };
        }
        let y = x.mul(&mask)?;
        self.mask = Some(mask);
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match &self.mask {
            Some(mask) => {
                if mask.dims() != grad_out.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "dropout backward",
                        lhs: mask.dims().to_vec(),
                        rhs: grad_out.dims().to_vec(),
                    });
                }
                grad_out.mul(mask)
            }
            None => Ok(grad_out.clone()),
        }
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn kind(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, Rng::new(1));
        let x = Tensor::arange(10);
        assert_eq!(d.forward(&x, Mode::Eval).unwrap(), x);
        assert_eq!(d.backward(&x).unwrap(), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, Rng::new(2));
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, Rng::new(3));
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[100])).unwrap();
        // Zero positions in y must be zero in the gradient too.
        for (yv, gv) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, Rng::new(4));
        let x = Tensor::arange(5);
        assert_eq!(d.forward(&x, Mode::Train).unwrap(), x);
    }
}
