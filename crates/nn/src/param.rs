//! Trainable parameters.

use egeria_tensor::{Result, Tensor, TensorError};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A trainable tensor: value, accumulated gradient, and freezing state.
///
/// `requires_grad == false` is exactly the paper's freezing mechanism (§5:
/// "we essentially set the `requires_grad` flag of all its parameters to
/// false"). Layers must skip gradient accumulation for frozen parameters;
/// optimizers must skip their update.
#[derive(Debug, Clone)]
pub struct Parameter {
    /// Stable identity used by optimizers to key per-parameter state.
    id: u64,
    /// Human-readable name, e.g. `"layer2.3.conv1.weight"`.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient; `None` until the first backward pass.
    pub grad: Option<Tensor>,
    /// Whether this parameter participates in backward/update.
    pub requires_grad: bool,
}

impl Parameter {
    /// Creates a named parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Parameter {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            value,
            grad: None,
            requires_grad: true,
        }
    }

    /// The parameter's stable id (unique per process).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Accumulates `g` into the gradient buffer (no-op when frozen).
    pub fn accumulate_grad(&mut self, g: &Tensor) -> Result<()> {
        if !self.requires_grad {
            return Ok(());
        }
        if g.dims() != self.value.dims() {
            return Err(TensorError::ShapeMismatch {
                op: "accumulate_grad",
                lhs: self.value.dims().to_vec(),
                rhs: g.dims().to_vec(),
            });
        }
        match &mut self.grad {
            Some(acc) => acc.axpy_inplace(1.0, g)?,
            None => self.grad = Some(g.clone()),
        }
        Ok(())
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Parameter::new("a", Tensor::zeros(&[2]));
        let b = Parameter::new("b", Tensor::zeros(&[2]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn accumulate_sums_gradients() {
        let mut p = Parameter::new("p", Tensor::zeros(&[3]));
        let g = Tensor::ones(&[3]);
        p.accumulate_grad(&g).unwrap();
        p.accumulate_grad(&g).unwrap();
        assert_eq!(p.grad.as_ref().unwrap().data(), &[2.0; 3]);
        p.zero_grad();
        assert!(p.grad.is_none());
    }

    #[test]
    fn frozen_parameter_ignores_gradients() {
        let mut p = Parameter::new("p", Tensor::zeros(&[3]));
        p.requires_grad = false;
        p.accumulate_grad(&Tensor::ones(&[3])).unwrap();
        assert!(p.grad.is_none());
    }

    #[test]
    fn accumulate_rejects_shape_mismatch() {
        let mut p = Parameter::new("p", Tensor::zeros(&[3]));
        assert!(p.accumulate_grad(&Tensor::ones(&[4])).is_err());
    }
}
