//! Elementwise activation layers.
//!
//! The transcendental activations (GELU/Tanh/Sigmoid) and softmax route
//! their exp/tanh sweeps through [`egeria_tensor::simd`]: under
//! `EGERIA_SIMD=scalar` that layer calls libm exactly like the seed code
//! (bit-identical, golden-run-pinned); under a vector ISA it runs the
//! polynomial kernels (toleranced — DESIGN §5g). The surrounding
//! per-element arithmetic here replicates the scalar reference expressions
//! [`Activation::apply`]/[`Activation::derivative`] operation-for-operation
//! so the only numerical difference between ISAs is inside exp/tanh.

use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use egeria_tensor::{simd, Result, Tensor, TensorError};

/// √(2/π), the GELU tanh-approximation constant.
const GELU_C: f32 = 0.797_884_6;

/// Which nonlinearity an [`Activation`] layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// `max(0, x)`.
    Relu,
    /// `min(max(0, x), 6)` (MobileNetV2's clipped ReLU).
    Relu6,
    /// The tanh-approximated Gaussian error linear unit (Transformers/BERT).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// A stateless elementwise activation with cached-input backward.
pub struct Activation {
    act: Act,
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(act: Act) -> Self {
        Activation {
            act,
            cached_input: None,
        }
    }

    /// Applies the activation to a raw value (the scalar reference for the
    /// vectorized tensor paths below).
    pub fn apply(act: Act, x: f32) -> f32 {
        match act {
            Act::Relu => x.max(0.0),
            Act::Relu6 => x.clamp(0.0, 6.0),
            Act::Gelu => {
                // tanh approximation: 0.5x(1 + tanh(√(2/π)(x + 0.044715x³))).
                0.5 * x * (1.0 + (GELU_C * (x + 0.044_715 * x * x * x)).tanh())
            }
            Act::Tanh => x.tanh(),
            Act::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative of the activation at a raw input value.
    pub fn derivative(act: Act, x: f32) -> f32 {
        match act {
            Act::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Act::Relu6 => {
                if x > 0.0 && x < 6.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Act::Gelu => {
                let inner = GELU_C * (x + 0.044_715 * x * x * x);
                let t = inner.tanh();
                let dinner = GELU_C * (1.0 + 3.0 * 0.044_715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
            }
            Act::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Act::Sigmoid => {
                let s = Self::apply(Act::Sigmoid, x);
                s * (1.0 - s)
            }
        }
    }
}

/// The GELU inner argument `√(2/π)(x + 0.044715x³)` for every element of
/// `x`, ready for one vectorized tanh sweep.
fn gelu_inner(x: &Tensor) -> Tensor {
    x.map(|v| GELU_C * (v + 0.044_715 * v * v * v))
}

/// `tanh(x)` elementwise through the SIMD layer.
fn tanh_tensor(x: &Tensor) -> Tensor {
    let mut t = x.clone();
    simd::tanh_inplace(t.data_mut());
    t
}

/// `sigmoid(x)` elementwise: one vectorized exp sweep, then the same
/// `1 / (1 + e)` arithmetic as the scalar reference.
fn sigmoid_tensor(x: &Tensor) -> Tensor {
    let mut e = x.map(|v| -v);
    simd::exp_inplace(e.data_mut());
    e.map_inplace(|ev| 1.0 / (1.0 + ev));
    e
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.cached_input = Some(x.clone());
        let act = self.act;
        Ok(match act {
            Act::Relu | Act::Relu6 => x.map(|v| Self::apply(act, v)),
            Act::Tanh => tanh_tensor(x),
            Act::Sigmoid => sigmoid_tensor(x),
            Act::Gelu => {
                let mut t = gelu_inner(x);
                simd::tanh_inplace(t.data_mut());
                for (tv, &xv) in t.data_mut().iter_mut().zip(x.data().iter()) {
                    *tv = 0.5 * xv * (1.0 + *tv);
                }
                t
            }
        })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| TensorError::Numerical("Activation::backward before forward".into()))?;
        if x.dims() != grad_out.dims() {
            return Err(TensorError::ShapeMismatch {
                op: "activation backward",
                lhs: x.dims().to_vec(),
                rhs: grad_out.dims().to_vec(),
            });
        }
        let act = self.act;
        let mut g = grad_out.clone();
        match act {
            Act::Relu | Act::Relu6 => {
                for (gv, &xv) in g.data_mut().iter_mut().zip(x.data().iter()) {
                    *gv *= Self::derivative(act, xv);
                }
            }
            Act::Tanh => {
                let t = tanh_tensor(x);
                for (gv, &tv) in g.data_mut().iter_mut().zip(t.data().iter()) {
                    *gv *= 1.0 - tv * tv;
                }
            }
            Act::Sigmoid => {
                let s = sigmoid_tensor(x);
                for (gv, &sv) in g.data_mut().iter_mut().zip(s.data().iter()) {
                    *gv *= sv * (1.0 - sv);
                }
            }
            Act::Gelu => {
                let mut t = gelu_inner(x);
                simd::tanh_inplace(t.data_mut());
                for ((gv, &tv), &xv) in g
                    .data_mut()
                    .iter_mut()
                    .zip(t.data().iter())
                    .zip(x.data().iter())
                {
                    let dinner = GELU_C * (1.0 + 3.0 * 0.044_715 * xv * xv);
                    *gv *= 0.5 * (1.0 + tv) + 0.5 * xv * (1.0 - tv * tv) * dinner;
                }
            }
        }
        Ok(g)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn kind(&self) -> &'static str {
        match self.act {
            Act::Relu => "ReLU",
            Act::Relu6 => "ReLU6",
            Act::Gelu => "GELU",
            Act::Tanh => "Tanh",
            Act::Sigmoid => "Sigmoid",
        }
    }
}

/// Numerically stable softmax over the last axis.
pub fn softmax_last(x: &Tensor) -> Result<Tensor> {
    let k = *x.dims().last().ok_or(TensorError::ShapeMismatch {
        op: "softmax",
        lhs: x.dims().to_vec(),
        rhs: vec![],
    })?;
    if k == 0 {
        return Err(TensorError::Numerical("softmax over empty axis".into()));
    }
    let rows = x.numel() / k;
    let mut out = x.clone();
    for r in 0..rows {
        simd::softmax_row(&mut out.data_mut()[r * k..(r + 1) * k]);
    }
    Ok(out)
}

/// Backward of [`softmax_last`]: `dx = p ∘ (dy − rowsum(dy ∘ p))`.
pub fn softmax_last_grad(probs: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
    if probs.dims() != grad_out.dims() {
        return Err(TensorError::ShapeMismatch {
            op: "softmax grad",
            lhs: probs.dims().to_vec(),
            rhs: grad_out.dims().to_vec(),
        });
    }
    let k = *probs.dims().last().expect("shape checked");
    let rows = probs.numel() / k;
    let mut gx = grad_out.clone();
    for r in 0..rows {
        let p = &probs.data()[r * k..(r + 1) * k];
        let g = &mut gx.data_mut()[r * k..(r + 1) * k];
        let dot: f32 = p.iter().zip(g.iter()).map(|(&pv, &gv)| pv * gv).sum();
        for (gv, &pv) in g.iter_mut().zip(p.iter()) {
            *gv = pv * (*gv - dot);
        }
    }
    Ok(gx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck_input;
    use egeria_tensor::Rng;

    #[test]
    fn relu_clips_negatives() {
        let mut a = Activation::new(Act::Relu);
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(a.forward(&x, Mode::Train).unwrap().data(), &[0.0, 0.0, 2.0]);
        let g = a.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn relu6_clips_both_ends() {
        let mut a = Activation::new(Act::Relu6);
        let x = Tensor::from_vec(vec![-1.0, 3.0, 9.0], &[3]).unwrap();
        assert_eq!(a.forward(&x, Mode::Train).unwrap().data(), &[0.0, 3.0, 6.0]);
        let g = a.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn smooth_activations_pass_gradcheck() {
        let mut rng = Rng::new(1);
        for act in [Act::Gelu, Act::Tanh, Act::Sigmoid] {
            let mut a = Activation::new(act);
            let x = Tensor::randn(&[10], &mut rng);
            let worst = gradcheck_input(&mut a, &x, &[0, 3, 7], 1e-3).unwrap();
            assert!(worst < 1e-2, "{act:?} deviation {worst}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[4, 7], &mut rng);
        let p = softmax_last(&x).unwrap();
        for r in 0..4 {
            let s: f32 = p.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.min() >= 0.0);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let shifted = x.add_scalar(100.0);
        assert!(softmax_last(&x)
            .unwrap()
            .allclose(&softmax_last(&shifted).unwrap(), 1e-5));
    }

    #[test]
    fn softmax_grad_matches_finite_difference() {
        let mut rng = Rng::new(3);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let c = Tensor::randn(&[2, 5], &mut rng);
        let p = softmax_last(&x).unwrap();
        let gx = softmax_last_grad(&p, &c).unwrap();
        let eps = 1e-3;
        for probe in [0usize, 4, 7] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let num = (softmax_last(&xp).unwrap().dot(&c).unwrap()
                - softmax_last(&xm).unwrap().dot(&c).unwrap())
                / (2.0 * eps);
            assert!((num - gx.data()[probe]).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut a = Activation::new(Act::Relu);
        assert!(a.backward(&Tensor::ones(&[2])).is_err());
    }
}
