//! Loss functions returning `(scalar loss, gradient w.r.t. input)`.

use crate::activation::softmax_last;
use egeria_tensor::{Result, Tensor, TensorError};

/// Softmax cross-entropy over the last axis with optional label smoothing.
///
/// `logits` has shape `(rows, k)` after flattening leading dimensions;
/// `targets` supplies one class id per row. Returns the mean loss and the
/// gradient w.r.t. the logits (already divided by the row count).
pub fn cross_entropy(logits: &Tensor, targets: &[usize], smoothing: f32) -> Result<(f32, Tensor)> {
    let k = *logits.dims().last().ok_or(TensorError::ShapeMismatch {
        op: "cross_entropy",
        lhs: logits.dims().to_vec(),
        rhs: vec![],
    })?;
    let rows = logits.numel() / k;
    if targets.len() != rows {
        return Err(TensorError::ShapeMismatch {
            op: "cross_entropy targets",
            lhs: vec![rows],
            rhs: vec![targets.len()],
        });
    }
    if !(0.0..1.0).contains(&smoothing) {
        return Err(TensorError::Numerical(format!(
            "label smoothing {smoothing} outside [0, 1)"
        )));
    }
    let probs = softmax_last(logits)?;
    let on = 1.0 - smoothing;
    let off = smoothing / k as f32;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (r, &target) in targets.iter().enumerate() {
        if target >= k {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![target],
                shape: vec![k],
            });
        }
        let row = &probs.data()[r * k..(r + 1) * k];
        let grow = &mut grad.data_mut()[r * k..(r + 1) * k];
        for (j, gv) in grow.iter_mut().enumerate() {
            // Soft target distribution: `on` at the label, `off` elsewhere.
            let y = if j == target { on + off } else { off };
            let p = row[j].max(1e-12);
            loss -= (y as f64) * (p as f64).ln();
            *gv -= y;
        }
    }
    let inv = 1.0 / rows as f32;
    grad.scale_inplace(inv);
    Ok(((loss / rows as f64) as f32, grad))
}

/// Mean squared error between `pred` and `target` (same shapes).
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    if pred.dims() != target.dims() {
        return Err(TensorError::ShapeMismatch {
            op: "mse",
            lhs: pred.dims().to_vec(),
            rhs: target.dims().to_vec(),
        });
    }
    let n = pred.numel().max(1) as f32;
    let diff = pred.sub(target)?;
    let loss = diff.sq_norm() / n;
    let grad = diff.mul_scalar(2.0 / n);
    Ok((loss, grad))
}

/// Perplexity corresponding to a mean cross-entropy in nats.
pub fn perplexity(mean_ce: f32) -> f32 {
    mean_ce.exp()
}

/// Classification accuracy of `(rows, k)` logits against targets.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> Result<f32> {
    let preds = logits.argmax_last()?;
    if preds.len() != targets.len() {
        return Err(TensorError::ShapeMismatch {
            op: "accuracy",
            lhs: vec![preds.len()],
            rhs: vec![targets.len()],
        });
    }
    if targets.is_empty() {
        return Ok(0.0);
    }
    let correct = preds.iter().zip(targets.iter()).filter(|(p, t)| p == t).count();
    Ok(correct as f32 / targets.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    #[test]
    fn uniform_logits_give_log_k_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3], 0.0).unwrap();
        assert!((loss - (10f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.set(&[0, 0], 20.0).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0], 0.0).unwrap();
        assert!(loss < 1e-3);
        let (wrong, _) = cross_entropy(&logits, &[1], 0.0).unwrap();
        assert!(wrong > 10.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng::new(1);
        let logits = Tensor::randn(&[3, 4], &mut rng);
        let targets = [2usize, 0, 3];
        let (_, grad) = cross_entropy(&logits, &targets, 0.1).unwrap();
        let eps = 1e-3;
        for probe in [0usize, 5, 11] {
            let mut lp = logits.clone();
            lp.data_mut()[probe] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[probe] -= eps;
            let (loss_p, _) = cross_entropy(&lp, &targets, 0.1).unwrap();
            let (loss_m, _) = cross_entropy(&lm, &targets, 0.1).unwrap();
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[probe]).abs() < 1e-3,
                "{} vs {numeric}",
                grad.data()[probe]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = Rng::new(2);
        let logits = Tensor::randn(&[2, 5], &mut rng);
        let (_, grad) = cross_entropy(&logits, &[1, 4], 0.0).unwrap();
        for r in 0..2 {
            let s: f32 = grad.data()[r * 5..(r + 1) * 5].iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_bad_targets_and_smoothing() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy(&logits, &[0], 0.0).is_err());
        assert!(cross_entropy(&logits, &[0, 3], 0.0).is_err());
        assert!(cross_entropy(&logits, &[0, 1], 1.0).is_err());
    }

    #[test]
    fn mse_loss_and_grad() {
        let p = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 4.0], &[2]).unwrap();
        let (loss, grad) = mse(&p, &t).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, -2.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]).unwrap(), 0.5);
    }

    #[test]
    fn perplexity_is_exp() {
        assert!((perplexity(0.0) - 1.0).abs() < 1e-6);
        assert!((perplexity(1.0) - std::f32::consts::E).abs() < 1e-5);
    }
}
