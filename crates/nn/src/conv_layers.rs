//! Convolution and pooling layers (NCHW).

use crate::init;
use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use egeria_tensor::conv::{
    avg_pool2d, avg_pool2d_grad, conv2d, conv2d_grad_input, conv2d_grad_weight,
    depthwise_conv2d, depthwise_grad_input, depthwise_grad_weight, global_avg_pool,
    global_avg_pool_grad, upsample_nearest, upsample_nearest_grad, Conv2dSpec,
};
use egeria_tensor::{Result, Rng, Tensor, TensorError};

/// A 2-D convolution layer.
pub struct Conv2d {
    weight: Parameter,
    bias: Option<Parameter>,
    spec: Conv2dSpec,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights.
    ///
    /// # Panics
    /// Panics if `stride == 0` (a construction-time programmer error).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let dims = [c_out, c_in, kernel, kernel];
        let weight = Parameter::new(
            format!("{name}.weight"),
            init::kaiming_normal(&dims, init::fan_in_of(&dims), rng),
        );
        let bias = bias.then(|| Parameter::new(format!("{name}.bias"), Tensor::zeros(&[c_out])));
        Conv2d {
            weight,
            bias,
            spec: Conv2dSpec::new(stride, padding).expect("stride > 0"),
            cached_input: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Immutable access to the weight parameter (used by quantization).
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Immutable access to the bias parameter, if present.
    pub fn bias(&self) -> Option<&Parameter> {
        self.bias.as_ref()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = conv2d(x, &self.weight.value, self.bias.as_ref().map(|b| &b.value), self.spec)?;
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self.cached_input.as_ref().ok_or_else(|| {
            TensorError::Numerical("Conv2d::backward before forward".into())
        })?;
        if self.weight.requires_grad {
            let gw = conv2d_grad_weight(grad_out, x, self.weight.value.dims(), self.spec)?;
            self.weight.accumulate_grad(&gw)?;
        }
        if let Some(b) = &mut self.bias {
            if b.requires_grad {
                // Bias gradient: sum over batch and spatial dims.
                let (n, c, oh, ow) = {
                    let d = grad_out.dims();
                    (d[0], d[1], d[2], d[3])
                };
                let mut gb = vec![0.0f32; c];
                for ni in 0..n {
                    for (ci, g) in gb.iter_mut().enumerate() {
                        let base = (ni * c + ci) * oh * ow;
                        *g += grad_out.data()[base..base + oh * ow].iter().sum::<f32>();
                    }
                }
                b.accumulate_grad(&Tensor::from_vec(gb, &[c])?)?;
            }
        }
        conv2d_grad_input(grad_out, &self.weight.value, x.dims(), self.spec)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn kind(&self) -> &'static str {
        "Conv2d"
    }
}

/// A depthwise 2-D convolution layer (one filter per channel).
pub struct DepthwiseConv2d {
    weight: Parameter,
    spec: Conv2dSpec,
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution over `c` channels.
    ///
    /// # Panics
    /// Panics if `stride == 0` (a construction-time programmer error).
    pub fn new(name: &str, c: usize, kernel: usize, stride: usize, padding: usize, rng: &mut Rng) -> Self {
        let dims = [c, 1, kernel, kernel];
        DepthwiseConv2d {
            weight: Parameter::new(
                format!("{name}.weight"),
                init::kaiming_normal(&dims, kernel * kernel, rng),
            ),
            spec: Conv2dSpec::new(stride, padding).expect("stride > 0"),
            cached_input: None,
        }
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = depthwise_conv2d(x, &self.weight.value, None, self.spec)?;
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self.cached_input.as_ref().ok_or_else(|| {
            TensorError::Numerical("DepthwiseConv2d::backward before forward".into())
        })?;
        if self.weight.requires_grad {
            let gw = depthwise_grad_weight(grad_out, x, self.weight.value.dims(), self.spec)?;
            self.weight.accumulate_grad(&gw)?;
        }
        depthwise_grad_input(grad_out, &self.weight.value, x.dims(), self.spec)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.weight]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight]
    }

    fn kind(&self) -> &'static str {
        "DepthwiseConv2d"
    }
}

/// Non-overlapping average pooling.
pub struct AvgPool2d {
    k: usize,
    cached_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates a pool over `k×k` windows with stride `k`.
    pub fn new(k: usize) -> Self {
        AvgPool2d { k, cached_dims: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.cached_dims = Some(x.dims().to_vec());
        avg_pool2d(x, self.k)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self.cached_dims.as_ref().ok_or_else(|| {
            TensorError::Numerical("AvgPool2d::backward before forward".into())
        })?;
        avg_pool2d_grad(grad_out, self.k, dims)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn kind(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Global average pooling `(n, c, h, w) → (n, c)`.
pub struct GlobalAvgPool {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_dims: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.cached_dims = Some(x.dims().to_vec());
        global_avg_pool(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self.cached_dims.as_ref().ok_or_else(|| {
            TensorError::Numerical("GlobalAvgPool::backward before forward".into())
        })?;
        global_avg_pool_grad(grad_out, dims)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn kind(&self) -> &'static str {
        "GlobalAvgPool"
    }
}

/// Nearest-neighbour upsampling (for segmentation heads).
pub struct UpsampleNearest {
    factor: usize,
}

impl UpsampleNearest {
    /// Creates an upsampler by integer `factor`.
    pub fn new(factor: usize) -> Self {
        UpsampleNearest { factor }
    }
}

impl Layer for UpsampleNearest {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        upsample_nearest(x, self.factor)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        upsample_nearest_grad(grad_out, self.factor)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn kind(&self) -> &'static str {
        "UpsampleNearest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck_input;

    #[test]
    fn conv_output_shape_follows_spec() {
        let mut rng = Rng::new(1);
        let mut c = Conv2d::new("c", 3, 8, 3, 2, 1, true, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let y = c.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = Rng::new(2);
        let mut c = Conv2d::new("c", 2, 3, 3, 1, 1, true, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let worst = gradcheck_input(&mut c, &x, &[0, 13, 29, 49], 1e-2).unwrap();
        assert!(worst < 2e-2, "conv gradcheck deviation {worst}");
    }

    #[test]
    fn conv_bias_gradient_counts_positions() {
        let mut rng = Rng::new(3);
        let mut c = Conv2d::new("c", 1, 1, 1, 1, 0, true, &mut rng);
        let x = Tensor::randn(&[2, 1, 3, 3], &mut rng);
        let _ = c.forward(&x, Mode::Train).unwrap();
        let _ = c.backward(&Tensor::ones(&[2, 1, 3, 3])).unwrap();
        // Bias grad = number of output positions = 2*3*3.
        assert_eq!(c.bias.as_ref().unwrap().grad.as_ref().unwrap().data(), &[18.0]);
    }

    #[test]
    fn frozen_conv_accumulates_no_grads_but_propagates() {
        let mut rng = Rng::new(4);
        let mut c = Conv2d::new("c", 2, 2, 3, 1, 1, true, &mut rng);
        c.set_trainable(false);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let _ = c.forward(&x, Mode::Train).unwrap();
        let gx = c.backward(&Tensor::ones(&[1, 2, 4, 4])).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert!(c.params().iter().all(|p| p.grad.is_none()));
    }

    #[test]
    fn pool_layers_gradcheck() {
        let mut rng = Rng::new(5);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let mut p = AvgPool2d::new(2);
        assert!(gradcheck_input(&mut p, &x, &[0, 7, 15], 1e-2).unwrap() < 1e-2);
        let mut g = GlobalAvgPool::new();
        assert!(gradcheck_input(&mut g, &x, &[0, 9, 21], 1e-2).unwrap() < 1e-2);
        let mut u = UpsampleNearest::new(2);
        assert!(gradcheck_input(&mut u, &x, &[0, 9, 21], 1e-2).unwrap() < 1e-2);
    }
}
