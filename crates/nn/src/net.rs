//! A network of named, freezable layer blocks.
//!
//! [`Network`] is the structure Egeria's `EgeriaModule` wraps: an ordered
//! list of *blocks* (the paper's "layer modules"), each of which can be
//! frozen independently. The network enforces the paper's invariants:
//!
//! - freezing always covers a *prefix* of blocks (§4.2.2: "KGT monitors the
//!   frontmost active layer module to avoid a fragmented frozen model"),
//! - frozen blocks run forward in `Eval` mode, which turns BatchNorm into
//!   dataset-statistics normalization and disables dropout (§4.3) — the
//!   property that makes their outputs cacheable,
//! - backward stops at the frozen/active boundary, skipping the frozen
//!   prefix's gradient computation entirely.

use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use egeria_tensor::{Result, Tensor, TensorError};

/// A named freezable unit of the network.
pub struct Block {
    /// Block name, e.g. `"layer2"` or `"encoder.3"`.
    pub name: String,
    layer: Box<dyn Layer>,
    frozen: bool,
    param_count: usize,
}

impl Block {
    /// Whether the block is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Total scalar parameters in the block.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Immutable access to the wrapped layer.
    pub fn layer(&self) -> &dyn Layer {
        self.layer.as_ref()
    }

    /// Mutable access to the wrapped layer.
    pub fn layer_mut(&mut self) -> &mut dyn Layer {
        self.layer.as_mut()
    }
}

/// An ordered sequence of freezable blocks.
pub struct Network {
    blocks: Vec<Block>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network { blocks: Vec::new() }
    }

    /// Appends a named block.
    pub fn add_block(&mut self, name: impl Into<String>, layer: Box<dyn Layer>) {
        let param_count = layer.param_count();
        self.blocks.push(Block {
            name: name.into(),
            layer,
            frozen: false,
            param_count,
        });
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks, in order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mutable access to a block by index.
    pub fn block_mut(&mut self, idx: usize) -> Option<&mut Block> {
        self.blocks.get_mut(idx)
    }

    /// Length of the frozen prefix (0 = nothing frozen).
    pub fn frozen_prefix(&self) -> usize {
        self.blocks.iter().take_while(|b| b.frozen).count()
    }

    /// Freezes exactly the first `k` blocks and thaws the rest.
    ///
    /// Returns an error if `k` exceeds the block count or would freeze the
    /// entire network (the last block must stay active — Algorithm 1 asserts
    /// `l` is never the last layer).
    pub fn freeze_prefix(&mut self, k: usize) -> Result<()> {
        if k >= self.blocks.len() && !(k == 0 && self.blocks.is_empty()) {
            return Err(TensorError::Numerical(format!(
                "cannot freeze {k} of {} blocks: the last block must stay active",
                self.blocks.len()
            )));
        }
        for (i, b) in self.blocks.iter_mut().enumerate() {
            let frozen = i < k;
            if b.frozen != frozen {
                b.frozen = frozen;
                b.layer.set_trainable(!frozen);
            }
        }
        Ok(())
    }

    /// Unfreezes every block (the LR-annealing unfreeze of §4.2.2).
    pub fn unfreeze_all(&mut self) {
        for b in &mut self.blocks {
            if b.frozen {
                b.frozen = false;
                b.layer.set_trainable(true);
            }
        }
    }

    /// Forward through all blocks; frozen blocks run in `Eval` mode.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        self.forward_from(0, x, mode)
    }

    /// Forward starting at block `start` from a given activation.
    ///
    /// This is the cached-FP entry point: when the frozen prefix's output
    /// was prefetched from the activation cache, training resumes here
    /// (§4.3 of the paper).
    pub fn forward_from(&mut self, start: usize, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if start > self.blocks.len() {
            return Err(TensorError::AxisOutOfRange {
                axis: start,
                rank: self.blocks.len(),
            });
        }
        let mut cur = x.clone();
        for b in &mut self.blocks[start..] {
            let m = if b.frozen { Mode::Eval } else { mode };
            cur = b.layer.forward(&cur, m)?;
        }
        Ok(cur)
    }

    /// Forward that additionally captures the output activation of block
    /// `capture` (the forward hook used for plasticity evaluation).
    pub fn forward_capture(
        &mut self,
        x: &Tensor,
        mode: Mode,
        capture: usize,
    ) -> Result<(Tensor, Tensor)> {
        if capture >= self.blocks.len() {
            return Err(TensorError::AxisOutOfRange {
                axis: capture,
                rank: self.blocks.len(),
            });
        }
        let mut cur = x.clone();
        let mut captured = None;
        for (i, b) in self.blocks.iter_mut().enumerate() {
            let m = if b.frozen { Mode::Eval } else { mode };
            cur = b.layer.forward(&cur, m)?;
            if i == capture {
                captured = Some(cur.clone());
            }
        }
        Ok((cur, captured.expect("capture index checked")))
    }

    /// Forward that stops after block `until`, returning its output.
    ///
    /// The reference model only needs the activation of the module under
    /// plasticity evaluation, so its forward pass ends there (§4.1.2).
    pub fn forward_until(&mut self, x: &Tensor, mode: Mode, until: usize) -> Result<Tensor> {
        if until >= self.blocks.len() {
            return Err(TensorError::AxisOutOfRange {
                axis: until,
                rank: self.blocks.len(),
            });
        }
        let mut cur = x.clone();
        for b in &mut self.blocks[..=until] {
            let m = if b.frozen { Mode::Eval } else { mode };
            cur = b.layer.forward(&cur, m)?;
        }
        Ok(cur)
    }

    /// Backward from the loss gradient, stopping at the frozen/active
    /// boundary. Returns the number of blocks whose backward ran.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<usize> {
        let stop = self.frozen_prefix();
        let mut g = grad_out.clone();
        let mut ran = 0usize;
        for i in (stop..self.blocks.len()).rev() {
            // The frontmost active block still computes parameter grads but
            // its input gradient is discarded — backpropagation ends here.
            g = self.blocks[i].layer.backward(&g)?;
            ran += 1;
        }
        Ok(ran)
    }

    /// All parameters, frozen or not.
    pub fn params(&self) -> Vec<&Parameter> {
        self.blocks.iter().flat_map(|b| b.layer.params()).collect()
    }

    /// All parameters, mutably (the optimizer's view).
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.blocks
            .iter_mut()
            .flat_map(|b| b.layer.params_mut())
            .collect()
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for b in &mut self.blocks {
            b.layer.zero_grad();
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.blocks.iter().map(|b| b.param_count).sum()
    }

    /// Fraction of parameters that are still trainable (Figure 12's y-axis).
    pub fn active_param_fraction(&self) -> f32 {
        let total = self.param_count();
        if total == 0 {
            return 1.0;
        }
        let active: usize = self
            .blocks
            .iter()
            .filter(|b| !b.frozen)
            .map(|b| b.param_count)
            .sum();
        active as f32 / total as f32
    }

    /// All non-parameter state buffers (BatchNorm running statistics) in
    /// block order.
    pub fn state_buffers(&self) -> Vec<&Tensor> {
        self.blocks
            .iter()
            .flat_map(|b| b.layer.state_buffers())
            .collect()
    }

    /// Mutable view of [`Network::state_buffers`].
    pub fn state_buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.blocks
            .iter_mut()
            .flat_map(|b| b.layer.state_buffers_mut())
            .collect()
    }

    /// Copies non-parameter state (BatchNorm running statistics) from
    /// `other`; architectures must match.
    pub fn copy_running_stats_from(&mut self, other: &Network) -> Result<()> {
        let src: Vec<&Tensor> = other.state_buffers();
        let mut dst: Vec<&mut Tensor> = self.state_buffers_mut();
        if src.len() != dst.len() {
            return Err(TensorError::ShapeMismatch {
                op: "copy_running_stats_from",
                lhs: vec![dst.len()],
                rhs: vec![src.len()],
            });
        }
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            **d = (*s).clone();
        }
        Ok(())
    }

    /// Copies every parameter value from `other` (architectures must match).
    ///
    /// Used to refresh reference-model snapshots.
    pub fn copy_params_from(&mut self, other: &Network) -> Result<()> {
        let src = other.params();
        let mut dst = self.params_mut();
        if src.len() != dst.len() {
            return Err(TensorError::ShapeMismatch {
                op: "copy_params_from",
                lhs: vec![dst.len()],
                rhs: vec![src.len()],
            });
        }
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            if d.value.dims() != s.value.dims() {
                return Err(TensorError::ShapeMismatch {
                    op: "copy_params_from",
                    lhs: d.value.dims().to_vec(),
                    rhs: s.value.dims().to_vec(),
                });
            }
            d.value = s.value.clone();
        }
        Ok(())
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Act, Activation};
    use crate::linear::Linear;
    use egeria_tensor::Rng;

    fn three_block_net(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.add_block("b0", Box::new(Linear::new("b0", 4, 8, true, rng)));
        net.add_block("b1", Box::new(Linear::new("b1", 8, 8, true, rng)));
        net.add_block("b2", Box::new(Linear::new("b2", 8, 3, true, rng)));
        net
    }

    #[test]
    fn forward_backward_all_blocks() {
        let mut rng = Rng::new(1);
        let mut net = three_block_net(&mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        let ran = net.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(ran, 3);
        assert!(net.params().iter().all(|p| p.grad.is_some()));
    }

    #[test]
    fn freeze_prefix_skips_backward_for_frozen_blocks() {
        let mut rng = Rng::new(2);
        let mut net = three_block_net(&mut rng);
        net.freeze_prefix(2).unwrap();
        assert_eq!(net.frozen_prefix(), 2);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let _ = net.forward(&x, Mode::Train).unwrap();
        let ran = net.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(ran, 1);
        // Frozen blocks have no grads; active block does.
        let grads: Vec<bool> = net.params().iter().map(|p| p.grad.is_some()).collect();
        assert_eq!(grads, vec![false, false, false, false, true, true]);
    }

    #[test]
    fn cannot_freeze_everything() {
        let mut rng = Rng::new(3);
        let mut net = three_block_net(&mut rng);
        assert!(net.freeze_prefix(3).is_err());
        assert!(net.freeze_prefix(2).is_ok());
    }

    #[test]
    fn unfreeze_all_restores_training() {
        let mut rng = Rng::new(4);
        let mut net = three_block_net(&mut rng);
        net.freeze_prefix(2).unwrap();
        net.unfreeze_all();
        assert_eq!(net.frozen_prefix(), 0);
        assert!(net.params().iter().all(|p| p.requires_grad));
    }

    #[test]
    fn forward_from_matches_full_forward() {
        let mut rng = Rng::new(5);
        let mut net = three_block_net(&mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let (full, mid) = net.forward_capture(&x, Mode::Train, 0).unwrap();
        let resumed = net.forward_from(1, &mid, Mode::Train).unwrap();
        assert!(full.allclose(&resumed, 1e-6));
    }

    #[test]
    fn active_param_fraction_tracks_freezing() {
        let mut rng = Rng::new(6);
        let mut net = three_block_net(&mut rng);
        assert!((net.active_param_fraction() - 1.0).abs() < 1e-6);
        net.freeze_prefix(1).unwrap();
        let expected = 1.0 - net.blocks()[0].param_count() as f32 / net.param_count() as f32;
        assert!((net.active_param_fraction() - expected).abs() < 1e-6);
    }

    #[test]
    fn copy_params_from_clones_values() {
        let mut rng = Rng::new(7);
        let src = three_block_net(&mut rng);
        let mut dst = three_block_net(&mut rng);
        assert_ne!(dst.params()[0].value, src.params()[0].value);
        dst.copy_params_from(&src).unwrap();
        for (d, s) in dst.params().iter().zip(src.params().iter()) {
            assert_eq!(d.value, s.value);
        }
    }

    #[test]
    fn frozen_block_with_nonparam_layer() {
        let mut rng = Rng::new(8);
        let mut net = Network::new();
        net.add_block("act", Box::new(Activation::new(Act::Relu)));
        net.add_block("head", Box::new(Linear::new("h", 4, 2, true, &mut rng)));
        net.freeze_prefix(1).unwrap();
        let x = Tensor::randn(&[2, 4], &mut rng);
        let _ = net.forward(&x, Mode::Train).unwrap();
        assert_eq!(net.backward(&Tensor::ones(&[2, 2])).unwrap(), 1);
    }
}
