//! Reverse-mode neural-network engine for the Egeria reproduction.
//!
//! Rather than a general tape autograd, every [`Layer`] caches whatever it
//! needs during `forward` and implements an explicit `backward`. This makes
//! the training-loop surgery Egeria performs — freezing a prefix of layer
//! modules, stopping backpropagation at the frontmost active module,
//! switching frozen BatchNorm layers to inference mode, and splicing cached
//! activations into the forward pass — first-class operations instead of
//! graph rewrites.
//!
//! Contents:
//!
//! - [`param::Parameter`]: a tensor with gradient storage, a stable id, and a
//!   `requires_grad` flag (the freezing switch, mirroring PyTorch §5 of the
//!   paper),
//! - [`layer::Layer`]: the forward/backward object trait plus
//!   [`layer::Sequential`],
//! - concrete layers: linear, conv, norms, activations, embedding,
//!   multi-head attention, dropout,
//! - [`loss`]: cross-entropy (with label smoothing) and MSE,
//! - [`optim`]: SGD with momentum/weight-decay and Adam,
//! - [`sched`]: the LR schedules used by the paper's workloads (step decay,
//!   inverse-sqrt, linear, cosine annealing, lambda),
//! - [`net::Network`]: a named sequence of freezable blocks with forward
//!   hooks — the structure `EgeriaModule` wraps.

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod activation;
pub mod attention;
pub mod conv_layers;
pub mod dropout;
pub mod embedding;
pub mod init;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod net;
pub mod norm;
pub mod optim;
pub mod param;
pub mod sched;

pub use layer::{Layer, Mode, Sequential};
pub use net::{Block, Network};
pub use param::Parameter;

/// Crate-wide result alias (errors are tensor errors).
pub type Result<T> = egeria_tensor::Result<T>;
