//! Normalization layers: BatchNorm2d and LayerNorm.

use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use egeria_tensor::{Result, Tensor, TensorError};

/// Batch normalization over NCHW feature maps.
///
/// In `Mode::Train` the layer normalizes with mini-batch statistics and
/// updates exponential running statistics; in `Mode::Eval` it uses the
/// running statistics. Egeria additionally forces frozen BatchNorm layers to
/// eval-mode normalization even inside a training forward (§4.3 of the
/// paper, following transfer-learning practice) — [`BatchNorm2d::set_frozen_stats`].
pub struct BatchNorm2d {
    gamma: Parameter,
    beta: Parameter,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    /// When set, normalize with running stats even in training mode.
    frozen_stats: bool,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a BatchNorm over `c` channels.
    pub fn new(name: &str, c: usize) -> Self {
        BatchNorm2d {
            gamma: Parameter::new(format!("{name}.gamma"), Tensor::ones(&[c])),
            beta: Parameter::new(format!("{name}.beta"), Tensor::zeros(&[c])),
            running_mean: Tensor::zeros(&[c]),
            running_var: Tensor::ones(&[c]),
            momentum: 0.1,
            eps: 1e-5,
            frozen_stats: false,
            cache: None,
        }
    }

    /// Forces (or releases) inference-mode statistics during training.
    ///
    /// This is the switch Egeria flips when the enclosing module is frozen so
    /// that cached activations stay valid across epochs.
    pub fn set_frozen_stats(&mut self, frozen: bool) {
        self.frozen_stats = frozen;
    }

    /// Whether the layer currently normalizes with running statistics.
    pub fn uses_running_stats(&self, mode: Mode) -> bool {
        self.frozen_stats || mode == Mode::Eval
    }

    /// Read access to the running mean (for tests and quantization).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Read access to the running variance.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if x.rank() != 4 || x.dims()[1] != self.gamma.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "batchnorm2d",
                lhs: x.dims().to_vec(),
                rhs: self.gamma.value.dims().to_vec(),
            });
        }
        let (n, c, h, w) = {
            let d = x.dims();
            (d[0], d[1], d[2], d[3])
        };
        let count = (n * h * w) as f32;
        let use_running = self.uses_running_stats(mode);
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        if use_running {
            mean.copy_from_slice(self.running_mean.data());
            var.copy_from_slice(self.running_var.data());
        } else {
            for (ci, m) in mean.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    acc += x.data()[base..base + h * w].iter().map(|&v| v as f64).sum::<f64>();
                }
                *m = (acc / count as f64) as f32;
            }
            for ci in 0..c {
                let m = mean[ci] as f64;
                let mut acc = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    for &v in &x.data()[base..base + h * w] {
                        let d = v as f64 - m;
                        acc += d * d;
                    }
                }
                var[ci] = (acc / count as f64) as f32;
            }
            // Update running statistics.
            for ci in 0..c {
                let rm = self.running_mean.data()[ci];
                let rv = self.running_var.data()[ci];
                self.running_mean.data_mut()[ci] = (1.0 - self.momentum) * rm + self.momentum * mean[ci];
                self.running_var.data_mut()[ci] = (1.0 - self.momentum) * rv + self.momentum * var[ci];
            }
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = x.clone();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let (m, is) = (mean[ci], inv_std[ci]);
                for v in &mut x_hat.data_mut()[base..base + h * w] {
                    *v = (*v - m) * is;
                }
            }
        }
        let mut y = x_hat.clone();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let (g, b) = (self.gamma.value.data()[ci], self.beta.value.data()[ci]);
                for v in &mut y.data_mut()[base..base + h * w] {
                    *v = *v * g + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std,
            dims: x.dims().to_vec(),
        });
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| {
            TensorError::Numerical("BatchNorm2d::backward before forward".into())
        })?;
        if grad_out.dims() != cache.dims.as_slice() {
            return Err(TensorError::ShapeMismatch {
                op: "batchnorm2d backward",
                lhs: cache.dims.clone(),
                rhs: grad_out.dims().to_vec(),
            });
        }
        let (n, c, h, w) = (cache.dims[0], cache.dims[1], cache.dims[2], cache.dims[3]);
        let count = (n * h * w) as f32;
        let mut g_gamma = vec![0.0f32; c];
        let mut g_beta = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in 0..h * w {
                    let g = grad_out.data()[base + i];
                    g_gamma[ci] += g * cache.x_hat.data()[base + i];
                    g_beta[ci] += g;
                }
            }
        }
        // Input gradient. With batch statistics the mean/var depend on x:
        // dx = (gamma * inv_std / m) * (m*dy − sum(dy) − x_hat * sum(dy*x_hat)).
        // With running (frozen) statistics the map is affine per channel:
        // dx = gamma * inv_std * dy.
        let mut gx = grad_out.clone();
        let affine = self.frozen_stats;
        // Note: we detect the stats mode used at forward time via the cache:
        // frozen/eval forwards stored inv_std computed from running stats and
        // must take the affine path. We conservatively treat `frozen_stats`
        // as the flag; Eval-mode backward is not used by the trainer.
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let gamma = self.gamma.value.data()[ci];
                let is = cache.inv_std[ci];
                if affine {
                    for i in 0..h * w {
                        gx.data_mut()[base + i] = grad_out.data()[base + i] * gamma * is;
                    }
                } else {
                    for i in 0..h * w {
                        let dy = grad_out.data()[base + i];
                        let xh = cache.x_hat.data()[base + i];
                        gx.data_mut()[base + i] = gamma * is / count
                            * (count * dy - g_beta[ci] - xh * g_gamma[ci]);
                    }
                }
            }
        }
        if self.gamma.requires_grad {
            self.gamma.accumulate_grad(&Tensor::from_vec(g_gamma, &[c])?)?;
        }
        if self.beta.requires_grad {
            self.beta.accumulate_grad(&Tensor::from_vec(g_beta, &[c])?)?;
        }
        Ok(gx)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn state_buffers(&self) -> Vec<&Tensor> {
        vec![&self.running_mean, &self.running_var]
    }

    fn state_buffers_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.running_mean, &mut self.running_var]
    }

    fn kind(&self) -> &'static str {
        "BatchNorm2d"
    }
}

/// Layer normalization over the last dimension (Transformer blocks).
pub struct LayerNorm {
    gamma: Parameter,
    beta: Parameter,
    eps: f32,
    cache: Option<LnCache>,
}

struct LnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a LayerNorm over feature width `d`.
    pub fn new(name: &str, d: usize) -> Self {
        LayerNorm {
            gamma: Parameter::new(format!("{name}.gamma"), Tensor::ones(&[d])),
            beta: Parameter::new(format!("{name}.beta"), Tensor::zeros(&[d])),
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        let d = self.gamma.numel();
        if x.dims().last() != Some(&d) {
            return Err(TensorError::ShapeMismatch {
                op: "layernorm",
                lhs: x.dims().to_vec(),
                rhs: vec![d],
            });
        }
        let rows = x.numel() / d;
        let mut x_hat = x.clone();
        let mut inv_std = vec![0.0f32; rows];
        for (r, slot) in inv_std.iter_mut().enumerate() {
            let row = &mut x_hat.data_mut()[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            *slot = is;
            for v in row.iter_mut() {
                *v = (*v - mean) * is;
            }
        }
        let mut y = x_hat.clone();
        for r in 0..rows {
            let row = &mut y.data_mut()[r * d..(r + 1) * d];
            for (j, v) in row.iter_mut().enumerate() {
                *v = *v * self.gamma.value.data()[j] + self.beta.value.data()[j];
            }
        }
        self.cache = Some(LnCache { x_hat, inv_std });
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| {
            TensorError::Numerical("LayerNorm::backward before forward".into())
        })?;
        let d = self.gamma.numel();
        if grad_out.dims() != cache.x_hat.dims() {
            return Err(TensorError::ShapeMismatch {
                op: "layernorm backward",
                lhs: cache.x_hat.dims().to_vec(),
                rhs: grad_out.dims().to_vec(),
            });
        }
        let rows = grad_out.numel() / d;
        let mut g_gamma = vec![0.0f32; d];
        let mut g_beta = vec![0.0f32; d];
        let mut gx = grad_out.clone();
        for r in 0..rows {
            let gy = &grad_out.data()[r * d..(r + 1) * d];
            let xh = &cache.x_hat.data()[r * d..(r + 1) * d];
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for j in 0..d {
                let gj = gy[j] * self.gamma.value.data()[j];
                sum_g += gj;
                sum_gx += gj * xh[j];
                g_gamma[j] += gy[j] * xh[j];
                g_beta[j] += gy[j];
            }
            let is = cache.inv_std[r];
            let row = &mut gx.data_mut()[r * d..(r + 1) * d];
            for j in 0..d {
                let gj = gy[j] * self.gamma.value.data()[j];
                row[j] = is * (gj - sum_g / d as f32 - xh[j] * sum_gx / d as f32);
            }
        }
        if self.gamma.requires_grad {
            self.gamma.accumulate_grad(&Tensor::from_vec(g_gamma, &[d])?)?;
        }
        if self.beta.requires_grad {
            self.beta.accumulate_grad(&Tensor::from_vec(g_beta, &[d])?)?;
        }
        Ok(gx)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn kind(&self) -> &'static str {
        "LayerNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck_input;
    use egeria_tensor::Rng;

    #[test]
    fn batchnorm_normalizes_batch_statistics() {
        let mut rng = Rng::new(1);
        let mut bn = BatchNorm2d::new("bn", 3);
        let x = Tensor::randn(&[4, 3, 5, 5], &mut rng).add_scalar(2.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel mean ≈ 0 and var ≈ 1 after normalization (gamma=1, beta=0).
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..4 {
                let base = (n * 3 + c) * 25;
                vals.extend_from_slice(&y.data()[base..base + 25]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = Rng::new(2);
        let mut bn = BatchNorm2d::new("bn", 2);
        // Train a few batches to move the running stats off their init.
        for _ in 0..20 {
            let x = Tensor::randn(&[8, 2, 4, 4], &mut rng).add_scalar(5.0);
            let _ = bn.forward(&x, Mode::Train).unwrap();
        }
        let x = Tensor::full(&[1, 2, 4, 4], 5.0);
        let y_eval = bn.forward(&x, Mode::Eval).unwrap();
        // With running mean ≈ 5, output ≈ 0.
        assert!(y_eval.data().iter().all(|&v| v.abs() < 1.0), "{:?}", y_eval.data());
    }

    #[test]
    fn frozen_stats_match_eval_inside_train_mode() {
        let mut rng = Rng::new(3);
        let mut bn = BatchNorm2d::new("bn", 2);
        for _ in 0..5 {
            let x = Tensor::randn(&[8, 2, 4, 4], &mut rng);
            let _ = bn.forward(&x, Mode::Train).unwrap();
        }
        let x = Tensor::randn(&[4, 2, 4, 4], &mut rng);
        let y_eval = bn.forward(&x, Mode::Eval).unwrap();
        bn.set_frozen_stats(true);
        let y_frozen_train = bn.forward(&x, Mode::Train).unwrap();
        assert!(y_eval.allclose(&y_frozen_train, 1e-6));
    }

    #[test]
    fn batchnorm_gradcheck_train_mode() {
        let mut rng = Rng::new(4);
        let mut bn = BatchNorm2d::new("bn", 2);
        let x = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let worst = gradcheck_input(&mut bn, &x, &[0, 11, 23, 40], 1e-2).unwrap();
        assert!(worst < 3e-2, "bn gradcheck deviation {worst}");
    }

    #[test]
    fn layernorm_rows_are_normalized() {
        let mut rng = Rng::new(5);
        let mut ln = LayerNorm::new("ln", 16);
        let x = Tensor::randn(&[4, 16], &mut rng).mul_scalar(3.0).add_scalar(1.0);
        let y = ln.forward(&x, Mode::Train).unwrap();
        for r in 0..4 {
            let row = &y.data()[r * 16..(r + 1) * 16];
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut rng = Rng::new(6);
        let mut ln = LayerNorm::new("ln", 8);
        let x = Tensor::randn(&[3, 8], &mut rng);
        let worst = gradcheck_input(&mut ln, &x, &[0, 7, 13, 23], 1e-2).unwrap();
        assert!(worst < 2e-2, "ln gradcheck deviation {worst}");
    }

    #[test]
    fn batchnorm_rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new("bn", 3);
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Train).is_err());
    }
}
