//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers keep per-parameter state keyed by [`Parameter::id`], so they
//! survive the parameter-list reshuffles that happen when Egeria rebuilds
//! its gradient buckets after a freeze/unfreeze event (§5 of the paper).

use crate::param::Parameter;
use egeria_tensor::{Result, Tensor};
use std::collections::HashMap;

/// Stochastic gradient descent with momentum and decoupled weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (driven by a schedule each step/epoch).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update to every parameter that has a gradient and
    /// requires one. Frozen parameters are skipped entirely, which is what
    /// removes their update cost.
    pub fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        for p in params.iter_mut() {
            if !p.requires_grad {
                continue;
            }
            let Some(grad) = p.grad.clone() else { continue };
            let mut d = grad;
            if self.weight_decay != 0.0 {
                d.axpy_inplace(self.weight_decay, &p.value)?;
            }
            if self.momentum != 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| Tensor::zeros(p.value.dims()));
                v.scale_inplace(self.momentum);
                v.axpy_inplace(1.0, &d)?;
                d = v.clone();
            }
            p.value.axpy_inplace(-self.lr, &d)?;
        }
        Ok(())
    }

    /// Drops momentum state for parameters no longer present (housekeeping
    /// after model surgery).
    pub fn retain_state(&mut self, live_ids: &[u64]) {
        let live: std::collections::HashSet<u64> = live_ids.iter().copied().collect();
        self.velocity.retain(|id, _| live.contains(id));
    }
}

/// Adam with bias correction (Kingma & Ba).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<u64, Tensor>,
    v: HashMap<u64, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam update; frozen or gradient-less parameters are
    /// skipped.
    pub fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            if !p.requires_grad {
                continue;
            }
            let Some(grad) = p.grad.clone() else { continue };
            let mut g = grad;
            if self.weight_decay != 0.0 {
                g.axpy_inplace(self.weight_decay, &p.value)?;
            }
            let m = self
                .m
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(p.value.dims()));
            m.scale_inplace(self.beta1);
            m.axpy_inplace(1.0 - self.beta1, &g)?;
            let v = self
                .v
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(p.value.dims()));
            for (vv, &gv) in v.data_mut().iter_mut().zip(g.data().iter()) {
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let lr = self.lr;
            let eps = self.eps;
            for ((pv, &mv), &vv) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(m.data().iter())
                .zip(v.data().iter())
            {
                let m_hat = mv / bc1;
                let v_hat = vv / bc2;
                *pv -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Parameter) -> Tensor {
        // d/dx of 0.5 * ||x||² is x.
        p.value.clone()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut p = Parameter::new("x", Tensor::full(&[4], 10.0));
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        for _ in 0..200 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.norm() < 1e-3, "norm {}", p.value.norm());
    }

    #[test]
    fn momentum_accelerates_descent() {
        let run = |momentum: f32| {
            let mut p = Parameter::new("x", Tensor::full(&[1], 10.0));
            let mut opt = Sgd::new(0.01, momentum, 0.0);
            for _ in 0..50 {
                p.zero_grad();
                let g = quadratic_grad(&p);
                p.accumulate_grad(&g).unwrap();
                opt.step(&mut [&mut p]).unwrap();
            }
            p.value.data()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient_signal() {
        let mut p = Parameter::new("x", Tensor::full(&[1], 1.0));
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        for _ in 0..10 {
            p.zero_grad();
            p.accumulate_grad(&Tensor::zeros(&[1])).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.data()[0] < 1.0);
    }

    #[test]
    fn frozen_parameters_are_not_updated() {
        let mut p = Parameter::new("x", Tensor::full(&[2], 3.0));
        p.accumulate_grad(&Tensor::ones(&[2])).unwrap();
        p.requires_grad = false;
        let before = p.value.clone();
        Sgd::new(0.5, 0.9, 0.0).step(&mut [&mut p]).unwrap();
        assert_eq!(p.value, before);
        Adam::new(0.5, 0.0).step(&mut [&mut p]).unwrap();
        assert_eq!(p.value, before);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = Parameter::new("x", Tensor::full(&[4], 5.0));
        let mut opt = Adam::new(0.1, 0.0);
        for _ in 0..300 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.norm() < 1e-2, "norm {}", p.value.norm());
    }

    #[test]
    fn retain_state_drops_dead_ids() {
        let mut p = Parameter::new("x", Tensor::ones(&[1]));
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        p.accumulate_grad(&Tensor::ones(&[1])).unwrap();
        opt.step(&mut [&mut p]).unwrap();
        assert_eq!(opt.velocity.len(), 1);
        opt.retain_state(&[]);
        assert!(opt.velocity.is_empty());
    }
}
