//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers keep per-parameter state keyed by [`Parameter::id`], so they
//! survive the parameter-list reshuffles that happen when Egeria rebuilds
//! its gradient buckets after a freeze/unfreeze event (§5 of the paper).

use crate::param::Parameter;
use egeria_tensor::{Result, Tensor, TensorError};
use std::collections::HashMap;

/// Portable snapshot of an optimizer's mutable state.
///
/// Per-parameter slots are keyed by parameter *name*, not [`Parameter::id`]:
/// ids are assigned from a process-local counter, so they differ between the
/// run that wrote a checkpoint and the run that resumes from it. Names are
/// stable across process restarts as long as the model is constructed the
/// same way.
#[derive(Debug, Clone, Default)]
pub struct OptimizerState {
    /// Optimizer kind tag (`"sgd"` or `"adam"`); checked on load.
    pub kind: String,
    /// Learning rate at snapshot time.
    pub lr: f32,
    /// Adam's bias-correction step counter (0 for SGD).
    pub step_count: u64,
    /// Named state slots (`"velocity"`, `"m"`, `"v"`), each mapping
    /// parameter name → state tensor.
    pub slots: Vec<(String, Vec<(String, Tensor)>)>,
}

impl OptimizerState {
    fn slot(&self, name: &str) -> &[(String, Tensor)] {
        self.slots
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, entries)| entries.as_slice())
            .unwrap_or(&[])
    }
}

/// Turns an id-keyed state map into a name-keyed slot, sorted for
/// deterministic checkpoint bytes. State for ids not in `params` (stale
/// entries from removed parameters) is dropped.
fn export_slot(state: &HashMap<u64, Tensor>, params: &[&Parameter]) -> Vec<(String, Tensor)> {
    let mut entries: Vec<(String, Tensor)> = params
        .iter()
        .filter_map(|p| state.get(&p.id()).map(|t| (p.name.clone(), t.clone())))
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

/// Rebuilds an id-keyed state map from a name-keyed slot. Names absent from
/// `params` are ignored (the model may have been rebuilt without them);
/// shape mismatches are an error since silently mis-sized state would
/// corrupt the update math.
fn import_slot(
    entries: &[(String, Tensor)],
    params: &[&Parameter],
) -> Result<HashMap<u64, Tensor>> {
    let by_name: HashMap<&str, &Parameter> =
        params.iter().map(|p| (p.name.as_str(), *p)).collect();
    let mut state = HashMap::new();
    for (name, tensor) in entries {
        let Some(p) = by_name.get(name.as_str()) else {
            continue;
        };
        if tensor.dims() != p.value.dims() {
            return Err(TensorError::ShapeMismatch {
                op: "optimizer state load",
                lhs: p.value.dims().to_vec(),
                rhs: tensor.dims().to_vec(),
            });
        }
        state.insert(p.id(), tensor.clone());
    }
    Ok(state)
}

/// Stochastic gradient descent with momentum and decoupled weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (driven by a schedule each step/epoch).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update to every parameter that has a gradient and
    /// requires one. Frozen parameters are skipped entirely, which is what
    /// removes their update cost.
    pub fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        for p in params.iter_mut() {
            if !p.requires_grad {
                continue;
            }
            let Some(grad) = p.grad.clone() else { continue };
            let mut d = grad;
            // egeria-lint: allow(float-exact-eq): weight_decay is a user-set
            // hyperparameter, not data; exact 0.0 means "decay disabled" and
            // skipping adds no 0·x term that could mask a NaN parameter.
            if self.weight_decay != 0.0 {
                d.axpy_inplace(self.weight_decay, &p.value)?;
            }
            // egeria-lint: allow(float-exact-eq): momentum is a user-set
            // hyperparameter; exact 0.0 selects plain SGD and must not
            // allocate velocity state.
            if self.momentum != 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| Tensor::zeros(p.value.dims()));
                v.decay_axpy_inplace(self.momentum, 1.0, &d)?;
                d = v.clone();
            }
            p.value.axpy_inplace(-self.lr, &d)?;
        }
        Ok(())
    }

    /// Drops momentum state for parameters no longer present (housekeeping
    /// after model surgery).
    pub fn retain_state(&mut self, live_ids: &[u64]) {
        let live: std::collections::HashSet<u64> = live_ids.iter().copied().collect();
        self.velocity.retain(|id, _| live.contains(id));
    }

    /// Snapshots the momentum state, keyed by parameter name.
    pub fn export_state(&self, params: &[&Parameter]) -> OptimizerState {
        OptimizerState {
            kind: "sgd".into(),
            lr: self.lr,
            step_count: 0,
            slots: vec![("velocity".into(), export_slot(&self.velocity, params))],
        }
    }

    /// Restores momentum state from a snapshot taken by [`Sgd::export_state`].
    pub fn load_state(&mut self, state: &OptimizerState, params: &[&Parameter]) -> Result<()> {
        if state.kind != "sgd" {
            return Err(TensorError::Corrupt(format!(
                "optimizer kind mismatch: checkpoint has {:?}, expected \"sgd\"",
                state.kind
            )));
        }
        self.lr = state.lr;
        self.velocity = import_slot(state.slot("velocity"), params)?;
        Ok(())
    }
}

/// Adam with bias correction (Kingma & Ba).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<u64, Tensor>,
    v: HashMap<u64, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam update; frozen or gradient-less parameters are
    /// skipped.
    pub fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            if !p.requires_grad {
                continue;
            }
            let Some(grad) = p.grad.clone() else { continue };
            let mut g = grad;
            // egeria-lint: allow(float-exact-eq): weight_decay is a user-set
            // hyperparameter, not data; exact 0.0 means "decay disabled" and
            // skipping adds no 0·x term that could mask a NaN parameter.
            if self.weight_decay != 0.0 {
                g.axpy_inplace(self.weight_decay, &p.value)?;
            }
            let m = self
                .m
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(p.value.dims()));
            m.decay_axpy_inplace(self.beta1, 1.0 - self.beta1, &g)?;
            let v = self
                .v
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(p.value.dims()));
            v.ema_sq_inplace(self.beta2, &g)?;
            p.value
                .adam_update_inplace(self.lr, self.eps, bc1, bc2, m, v)?;
        }
        Ok(())
    }

    /// Snapshots the moment estimates and step counter, keyed by parameter
    /// name.
    pub fn export_state(&self, params: &[&Parameter]) -> OptimizerState {
        OptimizerState {
            kind: "adam".into(),
            lr: self.lr,
            step_count: self.t,
            slots: vec![
                ("m".into(), export_slot(&self.m, params)),
                ("v".into(), export_slot(&self.v, params)),
            ],
        }
    }

    /// Restores state from a snapshot taken by [`Adam::export_state`].
    pub fn load_state(&mut self, state: &OptimizerState, params: &[&Parameter]) -> Result<()> {
        if state.kind != "adam" {
            return Err(TensorError::Corrupt(format!(
                "optimizer kind mismatch: checkpoint has {:?}, expected \"adam\"",
                state.kind
            )));
        }
        self.lr = state.lr;
        self.t = state.step_count;
        self.m = import_slot(state.slot("m"), params)?;
        self.v = import_slot(state.slot("v"), params)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Parameter) -> Tensor {
        // d/dx of 0.5 * ||x||² is x.
        p.value.clone()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut p = Parameter::new("x", Tensor::full(&[4], 10.0));
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        for _ in 0..200 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.norm() < 1e-3, "norm {}", p.value.norm());
    }

    #[test]
    fn momentum_accelerates_descent() {
        let run = |momentum: f32| {
            let mut p = Parameter::new("x", Tensor::full(&[1], 10.0));
            let mut opt = Sgd::new(0.01, momentum, 0.0);
            for _ in 0..50 {
                p.zero_grad();
                let g = quadratic_grad(&p);
                p.accumulate_grad(&g).unwrap();
                opt.step(&mut [&mut p]).unwrap();
            }
            p.value.data()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient_signal() {
        let mut p = Parameter::new("x", Tensor::full(&[1], 1.0));
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        for _ in 0..10 {
            p.zero_grad();
            p.accumulate_grad(&Tensor::zeros(&[1])).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.data()[0] < 1.0);
    }

    #[test]
    fn frozen_parameters_are_not_updated() {
        let mut p = Parameter::new("x", Tensor::full(&[2], 3.0));
        p.accumulate_grad(&Tensor::ones(&[2])).unwrap();
        p.requires_grad = false;
        let before = p.value.clone();
        Sgd::new(0.5, 0.9, 0.0).step(&mut [&mut p]).unwrap();
        assert_eq!(p.value, before);
        Adam::new(0.5, 0.0).step(&mut [&mut p]).unwrap();
        assert_eq!(p.value, before);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = Parameter::new("x", Tensor::full(&[4], 5.0));
        let mut opt = Adam::new(0.1, 0.0);
        for _ in 0..300 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.norm() < 1e-2, "norm {}", p.value.norm());
    }

    #[test]
    fn sgd_state_round_trips_across_fresh_parameter_ids() {
        // Train one parameter, export, then rebuild the "same" parameter
        // (new process-local id) and confirm the restored optimizer takes
        // identical steps — the resume-exactness requirement.
        let mut p = Parameter::new("x", Tensor::full(&[3], 4.0));
        let mut opt = Sgd::new(0.1, 0.9, 0.01);
        for _ in 0..5 {
            p.zero_grad();
            p.accumulate_grad(&p.value.clone()).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        let state = opt.export_state(&[&p]);

        let mut p2 = Parameter::new("x", p.value.clone());
        assert_ne!(p.id(), p2.id());
        let mut opt2 = Sgd::new(0.1, 0.9, 0.01);
        opt2.load_state(&state, &[&p2]).unwrap();

        for _ in 0..5 {
            p.zero_grad();
            p.accumulate_grad(&p.value.clone()).unwrap();
            opt.step(&mut [&mut p]).unwrap();
            p2.zero_grad();
            p2.accumulate_grad(&p2.value.clone()).unwrap();
            opt2.step(&mut [&mut p2]).unwrap();
        }
        assert_eq!(p.value, p2.value);
    }

    #[test]
    fn adam_state_round_trips_across_fresh_parameter_ids() {
        let mut p = Parameter::new("x", Tensor::full(&[3], 4.0));
        let mut opt = Adam::new(0.05, 0.01);
        for _ in 0..5 {
            p.zero_grad();
            p.accumulate_grad(&p.value.clone()).unwrap();
            opt.step(&mut [&mut p]).unwrap();
        }
        let state = opt.export_state(&[&p]);
        assert_eq!(state.step_count, 5);

        let mut p2 = Parameter::new("x", p.value.clone());
        let mut opt2 = Adam::new(0.05, 0.01);
        opt2.load_state(&state, &[&p2]).unwrap();

        for _ in 0..5 {
            p.zero_grad();
            p.accumulate_grad(&p.value.clone()).unwrap();
            opt.step(&mut [&mut p]).unwrap();
            p2.zero_grad();
            p2.accumulate_grad(&p2.value.clone()).unwrap();
            opt2.step(&mut [&mut p2]).unwrap();
        }
        assert_eq!(p.value, p2.value);
    }

    #[test]
    fn load_state_rejects_kind_and_shape_mismatch() {
        let p = Parameter::new("x", Tensor::ones(&[2]));
        let sgd_state = Sgd::new(0.1, 0.9, 0.0).export_state(&[&p]);
        assert!(Adam::new(0.1, 0.0).load_state(&sgd_state, &[&p]).is_err());

        let mut mismatched = sgd_state.clone();
        mismatched.slots = vec![("velocity".into(), vec![("x".into(), Tensor::ones(&[5]))])];
        assert!(Sgd::new(0.1, 0.9, 0.0)
            .load_state(&mismatched, &[&p])
            .is_err());
    }

    #[test]
    fn load_state_ignores_unknown_parameter_names() {
        let p = Parameter::new("x", Tensor::ones(&[2]));
        let state = OptimizerState {
            kind: "sgd".into(),
            lr: 0.2,
            step_count: 0,
            slots: vec![("velocity".into(), vec![("gone".into(), Tensor::ones(&[7]))])],
        };
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        opt.load_state(&state, &[&p]).unwrap();
        assert_eq!(opt.lr(), 0.2);
        assert!(opt.velocity.is_empty());
    }

    #[test]
    fn retain_state_drops_dead_ids() {
        let mut p = Parameter::new("x", Tensor::ones(&[1]));
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        p.accumulate_grad(&Tensor::ones(&[1])).unwrap();
        opt.step(&mut [&mut p]).unwrap();
        assert_eq!(opt.velocity.len(), 1);
        opt.retain_state(&[]);
        assert!(opt.velocity.is_empty());
    }
}
