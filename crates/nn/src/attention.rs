//! Multi-head scaled dot-product attention.

use crate::activation::{softmax_last, softmax_last_grad};
use crate::layer::{Layer, Mode};
use crate::linear::Linear;
use crate::param::Parameter;
use egeria_tensor::{Result, Rng, Tensor, TensorError};

/// Multi-head attention with optional causal masking.
///
/// Covers both self-attention (`ctx == x`) and encoder–decoder
/// cross-attention (`ctx` = encoder memory). The [`Layer`] impl is the
/// self-attention specialization; cross-attention callers use
/// [`MultiHeadAttention::forward_attn`] / [`MultiHeadAttention::backward_attn`]
/// which also return the gradient flowing into the context.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
    causal: bool,
    cache: Option<AttnCache>,
}

struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Tensor,
    b: usize,
    t: usize,
    s: usize,
    self_attention: bool,
}

/// Splits `(b, t, d)` into `(b*heads, t, d/heads)`.
fn split_heads(x: &Tensor, heads: usize) -> Result<Tensor> {
    let (b, t, d) = dims3(x)?;
    let dh = d / heads;
    x.reshape(&[b, t, heads, dh])?
        .permute(&[0, 2, 1, 3])?
        .reshape(&[b * heads, t, dh])
}

/// Inverse of [`split_heads`].
fn merge_heads(x: &Tensor, heads: usize, b: usize) -> Result<Tensor> {
    let t = x.dims()[1];
    let dh = x.dims()[2];
    x.reshape(&[b, heads, t, dh])?
        .permute(&[0, 2, 1, 3])?
        .reshape(&[b, t, heads * dh])
}

fn dims3(x: &Tensor) -> Result<(usize, usize, usize)> {
    if x.rank() != 3 {
        return Err(TensorError::ShapeMismatch {
            op: "attention",
            lhs: x.dims().to_vec(),
            rhs: vec![],
        });
    }
    Ok((x.dims()[0], x.dims()[1], x.dims()[2]))
}

impl MultiHeadAttention {
    /// Creates an attention block.
    ///
    /// Returns an error if `d_model` is not divisible by `heads`.
    pub fn new(name: &str, d_model: usize, heads: usize, causal: bool, rng: &mut Rng) -> Result<Self> {
        if heads == 0 || !d_model.is_multiple_of(heads) {
            return Err(TensorError::Numerical(format!(
                "d_model {d_model} not divisible by heads {heads}"
            )));
        }
        Ok(MultiHeadAttention {
            wq: Linear::new(&format!("{name}.wq"), d_model, d_model, true, rng),
            wk: Linear::new(&format!("{name}.wk"), d_model, d_model, true, rng),
            wv: Linear::new(&format!("{name}.wv"), d_model, d_model, true, rng),
            wo: Linear::new(&format!("{name}.wo"), d_model, d_model, true, rng),
            heads,
            d_model,
            causal,
            cache: None,
        })
    }

    /// Attention forward with separate query input and key/value context.
    pub fn forward_attn(&mut self, x: &Tensor, ctx: &Tensor, mode: Mode) -> Result<Tensor> {
        let (b, t, d) = dims3(x)?;
        let (cb, s, cd) = dims3(ctx)?;
        if d != self.d_model || cd != self.d_model || cb != b {
            return Err(TensorError::ShapeMismatch {
                op: "attention",
                lhs: x.dims().to_vec(),
                rhs: ctx.dims().to_vec(),
            });
        }
        let self_attention = std::ptr::eq(x, ctx) || x == ctx;
        let q = split_heads(&self.wq.forward(x, mode)?, self.heads)?;
        let k = split_heads(&self.wk.forward(ctx, mode)?, self.heads)?;
        let v = split_heads(&self.wv.forward(ctx, mode)?, self.heads)?;
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut scores = q.bmm_tb(&k)?.mul_scalar(scale);
        if self.causal {
            // Mask future positions with a large negative logit.
            let bh = scores.dims()[0];
            for m in 0..bh {
                for i in 0..t {
                    for j in (i + 1)..s {
                        scores.data_mut()[(m * t + i) * s + j] = -1e9;
                    }
                }
            }
        }
        let probs = softmax_last(&scores)?;
        let ctx_out = probs.bmm(&v)?;
        let merged = merge_heads(&ctx_out, self.heads, b)?;
        let out = self.wo.forward(&merged, mode)?;
        self.cache = Some(AttnCache {
            q,
            k,
            v,
            probs,
            b,
            t,
            s,
            self_attention,
        });
        Ok(out)
    }

    /// Attention backward; returns `(grad_x, grad_ctx)`.
    ///
    /// For a self-attention forward the context gradient is already folded
    /// into `grad_x` and the second tensor is zero-shaped like `x`.
    pub fn backward_attn(&mut self, grad_out: &Tensor) -> Result<(Tensor, Tensor)> {
        let cache = self.cache.take().ok_or_else(|| {
            TensorError::Numerical("attention backward before forward".into())
        })?;
        let b = cache.b;
        let dh = self.d_model / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let g_merged = self.wo.backward(grad_out)?;
        let g_ctx_out = split_heads(&g_merged, self.heads)?;
        // O = P·V.
        let g_probs = g_ctx_out.bmm_tb(&cache.v)?;
        let g_v = cache.probs.bmm_ta(&g_ctx_out)?;
        let g_scores = softmax_last_grad(&cache.probs, &g_probs)?.mul_scalar(scale);
        // S = Q·Kᵀ (scaled).
        let g_q = g_scores.bmm(&cache.k)?;
        let g_k = g_scores.bmm_ta(&cache.q)?;
        let g_q = merge_heads(&g_q, self.heads, b)?;
        let g_k = merge_heads(&g_k, self.heads, b)?;
        let g_v = merge_heads(&g_v, self.heads, b)?;
        let gx_q = self.wq.backward(&g_q)?;
        let gctx_k = self.wk.backward(&g_k)?;
        let gctx_v = self.wv.backward(&g_v)?;
        let gctx = gctx_k.add(&gctx_v)?;
        if cache.self_attention {
            Ok((gx_q.add(&gctx)?, Tensor::zeros(&[cache.b, cache.s, self.d_model])))
        } else {
            let _ = cache.t;
            Ok((gx_q, gctx))
        }
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let ctx = x.clone();
        self.forward_attn(x, &ctx, mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (gx, _) = self.backward_attn(grad_out)?;
        Ok(gx)
    }

    fn params(&self) -> Vec<&Parameter> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = self.wq.params_mut();
        v.extend(self.wk.params_mut());
        v.extend(self.wv.params_mut());
        v.extend(self.wo.params_mut());
        v
    }

    fn kind(&self) -> &'static str {
        "MultiHeadAttention"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck_input;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = Rng::new(1);
        let mut a = MultiHeadAttention::new("a", 8, 2, false, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 5, 8], &mut rng);
        let y = a.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 5, 8]);
    }

    #[test]
    fn rejects_indivisible_heads() {
        let mut rng = Rng::new(2);
        assert!(MultiHeadAttention::new("a", 7, 2, false, &mut rng).is_err());
        assert!(MultiHeadAttention::new("a", 8, 0, false, &mut rng).is_err());
    }

    #[test]
    fn causal_mask_blocks_future_tokens() {
        let mut rng = Rng::new(3);
        let mut a = MultiHeadAttention::new("a", 4, 1, true, &mut rng).unwrap();
        // Changing a future token must not change the first position output.
        let x1 = Tensor::randn(&[1, 3, 4], &mut rng);
        let mut x2 = x1.clone();
        for j in 0..4 {
            x2.set(&[0, 2, j], 99.0).unwrap();
        }
        let y1 = a.forward(&x1, Mode::Train).unwrap();
        let y2 = a.forward(&x2, Mode::Train).unwrap();
        let first1 = y1.narrow(1, 0, 1).unwrap();
        let first2 = y2.narrow(1, 0, 1).unwrap();
        assert!(first1.allclose(&first2, 1e-5));
        // Without the mask it would change.
        let mut nc = MultiHeadAttention::new("b", 4, 1, false, &mut rng).unwrap();
        let z1 = nc.forward(&x1, Mode::Train).unwrap().narrow(1, 0, 1).unwrap();
        let z2 = nc.forward(&x2, Mode::Train).unwrap().narrow(1, 0, 1).unwrap();
        assert!(!z1.allclose(&z2, 1e-3));
    }

    #[test]
    fn self_attention_gradcheck() {
        let mut rng = Rng::new(4);
        let mut a = MultiHeadAttention::new("a", 6, 2, false, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 3, 6], &mut rng);
        let worst = gradcheck_input(&mut a, &x, &[0, 5, 11, 17], 1e-2).unwrap();
        assert!(worst < 3e-2, "attention gradcheck deviation {worst}");
    }

    #[test]
    fn cross_attention_context_gradient_matches_finite_difference() {
        let mut rng = Rng::new(5);
        let mut a = MultiHeadAttention::new("a", 4, 2, false, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 2, 4], &mut rng);
        let ctx = Tensor::randn(&[1, 3, 4], &mut rng);
        let y = a.forward_attn(&x, &ctx, Mode::Train).unwrap();
        let c = Tensor::randn(y.dims(), &mut rng);
        let (_, gctx) = a.backward_attn(&c).unwrap();
        let eps = 1e-2;
        for probe in [0usize, 5, 11] {
            let mut cp = ctx.clone();
            cp.data_mut()[probe] += eps;
            let yp = a.forward_attn(&x, &cp, Mode::Train).unwrap().dot(&c).unwrap();
            let mut cm = ctx.clone();
            cm.data_mut()[probe] -= eps;
            let ym = a.forward_attn(&x, &cm, Mode::Train).unwrap().dot(&c).unwrap();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (numeric - gctx.data()[probe]).abs() < 2e-2,
                "ctx grad {probe}: {} vs {numeric}",
                gctx.data()[probe]
            );
        }
    }

    #[test]
    fn split_merge_heads_round_trip() {
        let mut rng = Rng::new(6);
        let x = Tensor::randn(&[2, 3, 8], &mut rng);
        let s = split_heads(&x, 4).unwrap();
        assert_eq!(s.dims(), &[8, 3, 2]);
        let m = merge_heads(&s, 4, 2).unwrap();
        assert_eq!(m, x);
    }
}
