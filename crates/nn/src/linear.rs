//! Fully-connected layer.

use crate::init;
use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use egeria_tensor::{Result, Rng, Tensor, TensorError};

/// A dense affine map `y = x·Wᵀ + b`.
///
/// Accepts inputs of shape `(..., in_features)`; leading dimensions are
/// flattened into a batch for the matmul and restored on output, so the same
/// layer serves `(b, d)` classifier heads and `(b, t, d)` token streams.
pub struct Linear {
    weight: Parameter,
    bias: Option<Parameter>,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-normal weights.
    pub fn new(name: &str, in_features: usize, out_features: usize, bias: bool, rng: &mut Rng) -> Self {
        let weight = Parameter::new(
            format!("{name}.weight"),
            init::kaiming_normal(&[out_features, in_features], in_features, rng),
        );
        let bias = bias.then(|| Parameter::new(format!("{name}.bias"), Tensor::zeros(&[out_features])));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter (used by quantization).
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Immutable access to the bias parameter, if present.
    pub fn bias(&self) -> Option<&Parameter> {
        self.bias.as_ref()
    }

    fn flatten_batch(&self, x: &Tensor) -> Result<(Tensor, Vec<usize>)> {
        let dims = x.dims().to_vec();
        let last = *dims.last().ok_or(TensorError::ShapeMismatch {
            op: "linear",
            lhs: dims.clone(),
            rhs: vec![self.in_features],
        })?;
        if last != self.in_features {
            return Err(TensorError::ShapeMismatch {
                op: "linear",
                lhs: dims.clone(),
                rhs: vec![self.in_features],
            });
        }
        let rows = x.numel() / last;
        Ok((x.reshape(&[rows, last])?, dims))
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        let (x2, dims) = self.flatten_batch(x)?;
        // x·Wᵀ reading W through its transpose — no materialized copy.
        let mut y = x2.matmul_tb(&self.weight.value)?;
        if let Some(b) = &self.bias {
            y = y.add(&b.value)?;
        }
        self.cached_input = Some(x2);
        let mut out_dims = dims;
        *out_dims.last_mut().expect("checked non-empty") = self.out_features;
        y.reshape(&out_dims)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x2 = self.cached_input.as_ref().ok_or_else(|| {
            TensorError::Numerical("Linear::backward before forward".into())
        })?;
        let rows = x2.dims()[0];
        let g2 = grad_out.reshape(&[rows, self.out_features])?;
        // dW = gᵀ·x, db = colsum(g), dx = g·W.
        if self.weight.requires_grad {
            let gw = g2.matmul_ta(x2)?;
            self.weight.accumulate_grad(&gw)?;
        }
        if let Some(b) = &mut self.bias {
            if b.requires_grad {
                let gb = g2.sum_axis(0)?;
                b.accumulate_grad(&gb)?;
            }
        }
        let gx = g2.matmul(&self.weight.value)?;
        // Restore the caller's input shape.
        let mut dims = grad_out.dims().to_vec();
        *dims.last_mut().expect("non-empty") = self.in_features;
        gx.reshape(&dims)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn kind(&self) -> &'static str {
        "Linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck_input;

    #[test]
    fn forward_matches_manual_affine() {
        let mut rng = Rng::new(1);
        let mut l = Linear::new("l", 2, 3, true, &mut rng);
        l.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        l.bias.as_mut().unwrap().value = Tensor::from_vec(vec![0.5, -0.5, 0.0], &[3]).unwrap();
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[2.5, 2.5, 5.0]);
    }

    #[test]
    fn supports_rank3_token_streams() {
        let mut rng = Rng::new(2);
        let mut l = Linear::new("l", 4, 6, true, &mut rng);
        let x = Tensor::randn(&[2, 5, 4], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 5, 6]);
        let gx = l.backward(&Tensor::ones(&[2, 5, 6])).unwrap();
        assert_eq!(gx.dims(), &[2, 5, 4]);
    }

    #[test]
    fn gradcheck_input_gradient() {
        let mut rng = Rng::new(3);
        let mut l = Linear::new("l", 5, 4, true, &mut rng);
        let x = Tensor::randn(&[3, 5], &mut rng);
        let worst = gradcheck_input(&mut l, &x, &[0, 4, 9, 14], 1e-2).unwrap();
        assert!(worst < 1e-2, "gradcheck deviation {worst}");
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = Rng::new(4);
        let mut l = Linear::new("l", 3, 2, false, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let c = Tensor::randn(&[4, 2], &mut rng);
        let _ = l.forward(&x, Mode::Train).unwrap();
        let _ = l.backward(&c).unwrap();
        let analytic = l.weight.grad.clone().unwrap();
        let eps = 1e-2;
        for probe in [0, 3, 5] {
            let orig = l.weight.value.data()[probe];
            l.weight.value.data_mut()[probe] = orig + eps;
            let yp = l.forward(&x, Mode::Train).unwrap().dot(&c).unwrap();
            l.weight.value.data_mut()[probe] = orig - eps;
            let ym = l.forward(&x, Mode::Train).unwrap().dot(&c).unwrap();
            l.weight.value.data_mut()[probe] = orig;
            let numeric = (yp - ym) / (2.0 * eps);
            assert!((numeric - analytic.data()[probe]).abs() < 1e-2);
        }
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let mut rng = Rng::new(5);
        let mut l = Linear::new("l", 3, 2, true, &mut rng);
        assert!(l.forward(&Tensor::zeros(&[2, 4]), Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = Rng::new(6);
        let mut l = Linear::new("l", 3, 2, true, &mut rng);
        assert!(l.backward(&Tensor::zeros(&[2, 2])).is_err());
    }
}
