//! Token embedding with learned table plus fixed sinusoidal positions.

use crate::init;
use crate::layer::Mode;
use crate::param::Parameter;
use egeria_tensor::{Result, Rng, Tensor, TensorError};

/// A learned token-embedding table.
///
/// Unlike most layers this one consumes *token ids* (`&[Vec<usize>]`,
/// `(batch, time)`), so it does not implement [`crate::Layer`]; sequence
/// models call [`Embedding::forward_ids`]/[`Embedding::backward_ids`]
/// directly.
pub struct Embedding {
    /// The `(vocab, d_model)` embedding table.
    pub table: Parameter,
    d_model: usize,
    cached_ids: Option<Vec<Vec<usize>>>,
    /// Whether to add sinusoidal position encodings to the output.
    pub with_positions: bool,
}

impl Embedding {
    /// Creates an embedding table for `vocab` tokens of width `d_model`.
    pub fn new(name: &str, vocab: usize, d_model: usize, with_positions: bool, rng: &mut Rng) -> Self {
        Embedding {
            table: Parameter::new(
                format!("{name}.table"),
                init::kaiming_normal(&[vocab, d_model], d_model, rng),
            ),
            d_model,
            cached_ids: None,
            with_positions,
        }
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.dims()[0]
    }

    /// The sinusoidal position encoding value at `(pos, dim)`.
    fn position_encoding(pos: usize, dim: usize, d_model: usize) -> f32 {
        let i = (dim / 2) as f32;
        let angle = pos as f32 / (10_000f32).powf(2.0 * i / d_model as f32);
        if dim.is_multiple_of(2) {
            angle.sin()
        } else {
            angle.cos()
        }
    }

    /// Embeds a batch of token id sequences into `(batch, time, d_model)`.
    pub fn forward_ids(&mut self, ids: &[Vec<usize>], _mode: Mode) -> Result<Tensor> {
        let b = ids.len();
        let t = ids.first().map(|s| s.len()).unwrap_or(0);
        if b == 0 || t == 0 {
            return Err(TensorError::Numerical("empty id batch".into()));
        }
        let vocab = self.vocab();
        let d = self.d_model;
        let mut out = vec![0.0f32; b * t * d];
        for (bi, seq) in ids.iter().enumerate() {
            if seq.len() != t {
                return Err(TensorError::ShapeMismatch {
                    op: "embedding",
                    lhs: vec![t],
                    rhs: vec![seq.len()],
                });
            }
            for (ti, &id) in seq.iter().enumerate() {
                if id >= vocab {
                    return Err(TensorError::IndexOutOfBounds {
                        index: vec![id],
                        shape: vec![vocab],
                    });
                }
                let dst = (bi * t + ti) * d;
                let src = id * d;
                out[dst..dst + d].copy_from_slice(&self.table.value.data()[src..src + d]);
                if self.with_positions {
                    for j in 0..d {
                        out[dst + j] += Self::position_encoding(ti, j, d);
                    }
                }
            }
        }
        self.cached_ids = Some(ids.to_vec());
        Tensor::from_vec(out, &[b, t, d])
    }

    /// Scatters `grad_out` back into the table gradient.
    pub fn backward_ids(&mut self, grad_out: &Tensor) -> Result<()> {
        let ids = self.cached_ids.as_ref().ok_or_else(|| {
            TensorError::Numerical("Embedding::backward before forward".into())
        })?;
        if !self.table.requires_grad {
            return Ok(());
        }
        let d = self.d_model;
        let t = ids[0].len();
        let mut grad = Tensor::zeros(self.table.value.dims());
        for (bi, seq) in ids.iter().enumerate() {
            for (ti, &id) in seq.iter().enumerate() {
                let src = (bi * t + ti) * d;
                let dst = id * d;
                for j in 0..d {
                    grad.data_mut()[dst + j] += grad_out.data()[src + j];
                }
            }
        }
        self.table.accumulate_grad(&grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_looks_up_rows() {
        let mut rng = Rng::new(1);
        let mut e = Embedding::new("e", 10, 4, false, &mut rng);
        let ids = vec![vec![3usize, 7], vec![0, 3]];
        let y = e.forward_ids(&ids, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 2, 4]);
        let row3 = &e.table.value.data()[12..16];
        assert_eq!(&y.data()[0..4], row3);
        assert_eq!(&y.data()[12..16], row3);
    }

    #[test]
    fn positions_make_identical_tokens_differ() {
        let mut rng = Rng::new(2);
        let mut e = Embedding::new("e", 5, 8, true, &mut rng);
        let y = e.forward_ids(&[vec![2, 2]], Mode::Train).unwrap();
        let first = &y.data()[0..8];
        let second = &y.data()[8..16];
        assert_ne!(first, second);
    }

    #[test]
    fn backward_accumulates_repeated_tokens() {
        let mut rng = Rng::new(3);
        let mut e = Embedding::new("e", 4, 2, false, &mut rng);
        let _ = e.forward_ids(&[vec![1, 1, 2]], Mode::Train).unwrap();
        let g = Tensor::ones(&[1, 3, 2]);
        e.backward_ids(&g).unwrap();
        let grad = e.table.grad.as_ref().unwrap();
        // Token 1 appears twice, token 2 once, others never.
        assert_eq!(&grad.data()[2..4], &[2.0, 2.0]);
        assert_eq!(&grad.data()[4..6], &[1.0, 1.0]);
        assert_eq!(&grad.data()[0..2], &[0.0, 0.0]);
    }

    #[test]
    fn rejects_out_of_vocab_and_ragged() {
        let mut rng = Rng::new(4);
        let mut e = Embedding::new("e", 4, 2, false, &mut rng);
        assert!(e.forward_ids(&[vec![9]], Mode::Train).is_err());
        assert!(e.forward_ids(&[vec![1, 2], vec![1]], Mode::Train).is_err());
        assert!(e.forward_ids(&[], Mode::Train).is_err());
    }

    #[test]
    fn frozen_table_skips_gradient() {
        let mut rng = Rng::new(5);
        let mut e = Embedding::new("e", 4, 2, false, &mut rng);
        e.table.requires_grad = false;
        let _ = e.forward_ids(&[vec![0]], Mode::Train).unwrap();
        e.backward_ids(&Tensor::ones(&[1, 1, 2])).unwrap();
        assert!(e.table.grad.is_none());
    }
}
