//! Property-based tests for the autograd layers: gradcheck on random
//! shapes, freezing invariants, schedule laws.

use egeria_nn::activation::{softmax_last, Act, Activation};
use egeria_nn::layer::{gradcheck_input, Layer, Mode};
use egeria_nn::linear::Linear;
use egeria_nn::norm::LayerNorm;
use egeria_nn::sched::{CosineAnnealing, InverseSqrt, LinearDecay, LrSchedule, MultiStepDecay};
use egeria_nn::Sequential;
use egeria_tensor::{Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_gradcheck_random_shapes(seed in any::<u64>(), d_in in 2usize..6, d_out in 2usize..6, b in 1usize..4) {
        let mut rng = Rng::new(seed);
        let mut l = Linear::new("l", d_in, d_out, true, &mut rng);
        let x = Tensor::randn(&[b, d_in], &mut rng);
        let probes: Vec<usize> = (0..x.numel()).step_by(3).collect();
        let worst = gradcheck_input(&mut l, &x, &probes, 1e-2).unwrap();
        prop_assert!(worst < 2e-2, "deviation {}", worst);
    }

    #[test]
    fn layernorm_output_rows_are_standardized(seed in any::<u64>(), d in 4usize..16, rows in 1usize..5) {
        let mut rng = Rng::new(seed);
        let mut ln = LayerNorm::new("ln", d);
        let x = Tensor::randn(&[rows, d], &mut rng).mul_scalar(4.0).add_scalar(2.0);
        let y = ln.forward(&x, Mode::Train).unwrap();
        for r in 0..rows {
            let row = &y.data()[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            prop_assert!(mean.abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(seed in any::<u64>(), k in 2usize..10, rows in 1usize..5) {
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[rows, k], &mut rng).mul_scalar(5.0);
        let p = softmax_last(&x).unwrap();
        prop_assert!(p.min() >= 0.0);
        for r in 0..rows {
            let s: f32 = p.data()[r * k..(r + 1) * k].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn frozen_layers_never_accumulate_grads(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let mut seq = Sequential::new()
            .push(Box::new(Linear::new("a", 4, 6, true, &mut rng)))
            .push(Box::new(Activation::new(Act::Relu)))
            .push(Box::new(Linear::new("b", 6, 3, true, &mut rng)));
        seq.set_trainable(false);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let _ = seq.forward(&x, Mode::Train).unwrap();
        let _ = seq.backward(&Tensor::ones(&[2, 3])).unwrap();
        prop_assert!(seq.params().iter().all(|p| p.grad.is_none()));
    }

    #[test]
    fn schedules_are_nonnegative_and_bounded(step in 0usize..100_000, base in 1e-6f32..1.0) {
        let schedules: Vec<Box<dyn LrSchedule>> = vec![
            Box::new(MultiStepDecay::new(base, 0.1, vec![100, 200])),
            Box::new(InverseSqrt::new(base, 50)),
            Box::new(LinearDecay::new(base, 1000)),
            Box::new(CosineAnnealing::new(base, 0.0, 500)),
        ];
        for s in &schedules {
            let lr = s.lr(step);
            prop_assert!(lr >= 0.0);
            prop_assert!(lr <= base * 1.0001, "lr {} above base {}", lr, base);
        }
    }

    #[test]
    fn multistep_is_monotone_nonincreasing(base in 1e-4f32..1.0) {
        let s = MultiStepDecay::new(base, 0.1, vec![10, 20, 30]);
        let mut prev = f32::INFINITY;
        for step in 0..50 {
            let lr = s.lr(step);
            prop_assert!(lr <= prev + 1e-9);
            prev = lr;
        }
    }
}
