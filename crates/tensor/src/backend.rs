//! Runtime-selectable compute backend for the GEMM-bound kernels.
//!
//! `Blocked` (the default) routes `matmul`/`bmm`/`conv2d` through the
//! parallel cache-blocked GEMM in [`crate::gemm`]; `Reference` routes them
//! through the seed repo's serial triple loops. The switch exists so perf
//! benches can measure the speedup against the seed kernels in-process and
//! so regressions can be bisected with `EGERIA_COMPUTE_BACKEND=reference`.
//!
//! Elementwise and reduction kernels are not switched: their parallel forms
//! are deterministic by construction (fixed chunk geometry, ordered partial
//! folds) and strictly faster.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation the GEMM-bound tensor kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Parallel blocked GEMM (production path).
    Blocked,
    /// Seed serial triple loops (baseline / bisection path).
    Reference,
}

const UNSET: u8 = u8::MAX;
static BACKEND: AtomicU8 = AtomicU8::new(UNSET);

/// The active backend. First call reads `EGERIA_COMPUTE_BACKEND`
/// (`"reference"` selects [`Backend::Reference`]; anything else, or unset,
/// selects [`Backend::Blocked`]).
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => Backend::Blocked,
        1 => Backend::Reference,
        _ => {
            let b = match std::env::var("EGERIA_COMPUTE_BACKEND").as_deref() {
                Ok("reference") => Backend::Reference,
                _ => Backend::Blocked,
            };
            set_backend(b);
            b
        }
    }
}

/// Overrides the active backend (used by benches for in-process A/B runs).
pub fn set_backend(b: Backend) {
    let v = match b {
        Backend::Blocked => 0,
        Backend::Reference => 1,
    };
    BACKEND.store(v, Ordering::Relaxed);
}
