//! Cache-blocked, register-tiled f32 GEMM with operand packing.
//!
//! This is the single compute primitive under `matmul`, `bmm`, the linear
//! and attention layers, and (via im2col) all convolution kernels. The
//! layering follows the classic Goto/BLIS scheme:
//!
//! - **B packing**: the right-hand matrix is repacked once per call into
//!   column panels of [`NR`] interleaved columns so the microkernel streams
//!   it contiguously.
//! - **Cache blocking**: the k dimension is processed in [`KC`]-sized blocks
//!   and the rows of A in [`MC`]-sized blocks, keeping the packed A block
//!   and the active B panel resident in cache.
//! - **Register tiling**: the [`MR`]`×`[`NR`] microkernel in
//!   [`crate::simd`] accumulates into a tile of 8-lane vector registers,
//!   dispatched once per process to the detected ISA (bit-identical across
//!   ISAs — DESIGN §5g).
//!
//! Parallelism: row blocks of A are dispatched as pool tasks; each task owns
//! a disjoint stripe of C. Determinism: every C element accumulates its k
//! products in the same order (k blocks ascending, then k ascending within
//! the microkernel) regardless of thread count or stripe assignment, so the
//! output is bit-identical for any pool size.

use crate::pool::ThreadPool;
use crate::simd;

// Microkernel tile geometry is owned by the SIMD layer (the tile is two
// 8-lane registers wide per row); re-exported here for the packing code and
// the shape-aware callers/tests.
pub use crate::simd::{MR, NR};
/// Rows of A per cache block (multiple of [`MR`]).
const MC: usize = 64;
/// Depth of one k block: `KC × NR` floats of packed B plus `MC × KC` of
/// packed A stay well inside L2.
const KC: usize = 256;

/// How one operand matrix is laid out relative to the logical GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// The slice stores the logical operand row-major.
    RowMajor,
    /// The slice stores the *transpose* of the logical operand row-major
    /// (i.e. the logical operand column-major).
    Transposed,
}

#[inline(always)]
fn read(m: &[f32], layout: Layout, rows_ld: usize, cols_ld: usize, r: usize, c: usize) -> f32 {
    match layout {
        Layout::RowMajor => m[r * cols_ld + c],
        Layout::Transposed => {
            let _ = rows_ld;
            m[c * rows_ld + r]
        }
    }
}

/// Packs columns `[0, n)` of logical B (`k × n`) into NR-wide panels for the
/// k range `[kb, kb+kc)`. Output layout: panel-major, then k-major, then the
/// NR interleaved columns; short trailing panels are zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_b_block(
    packed: &mut [f32],
    b: &[f32],
    layout: Layout,
    k_total: usize,
    n: usize,
    kb: usize,
    kc: usize,
    panel: usize,
) {
    let j0 = panel * NR;
    let width = NR.min(n - j0);
    let dst = &mut packed[..kc * NR];
    match layout {
        Layout::RowMajor if width == NR => {
            // Hot case: copy NR contiguous values per k row.
            for p in 0..kc {
                let src = &b[(kb + p) * n + j0..(kb + p) * n + j0 + NR];
                dst[p * NR..(p + 1) * NR].copy_from_slice(src);
            }
        }
        _ => {
            for p in 0..kc {
                for c in 0..NR {
                    dst[p * NR + c] = if c < width {
                        read(b, layout, k_total, n, kb + p, j0 + c)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs rows `[i0, i0+rows)` of logical A (`m × k`) for the k range
/// `[kb, kb+kc)` into MR-row strips; short trailing strips are zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_a_block(
    packed: &mut [f32],
    a: &[f32],
    layout: Layout,
    m: usize,
    k_total: usize,
    i0: usize,
    rows: usize,
    kb: usize,
    kc: usize,
) {
    let strips = rows.div_ceil(MR);
    for s in 0..strips {
        let r0 = i0 + s * MR;
        let live = MR.min(i0 + rows - r0);
        let dst = &mut packed[s * MR * kc..(s + 1) * MR * kc];
        for p in 0..kc {
            for r in 0..MR {
                dst[p * MR + r] = if r < live {
                    read(a, layout, m, k_total, r0 + r, kb + p)
                } else {
                    0.0
                };
            }
        }
    }
}

/// `c += a · b` where logical A is `m × k`, logical B is `k × n` and `c` is
/// `m × n` row-major. `Layout::Transposed` operands are read through their
/// transpose without materializing it.
///
/// `c` is accumulated into (callers start from a zeroed buffer); element
/// accumulation order is fixed, so results are bit-identical for every pool
/// size.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    pool: &ThreadPool,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    c: &mut [f32],
) {
    // egeria-lint: allow(panic-reachable-from-kernel): documented shape
    // preconditions at the public kernel boundary — a mismatched buffer is
    // a caller bug that must fail loudly before any partial accumulation.
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length"); // egeria-lint: allow(panic-reachable-from-kernel): shape precondition, as above
    assert_eq!(c.len(), m * n, "gemm: C length"); // egeria-lint: allow(panic-reachable-from-kernel): shape precondition, as above
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return;
    }

    // Phase 1: pack all of B once, panels in parallel (disjoint writes).
    let panels = n.div_ceil(NR);
    let mut packed_b = vec![0.0f32; panels * k * NR];
    {
        let pb = SendSlice(packed_b.as_mut_ptr());
        pool.run(panels, &|j| {
            // SAFETY: each task writes only its own disjoint, in-bounds
            // `k * NR` panel of packed_b, which outlives the blocking run.
            let dst = unsafe { std::slice::from_raw_parts_mut(pb.get().add(j * k * NR), k * NR) };
            let mut kb = 0;
            while kb < k {
                let kc = KC.min(k - kb);
                pack_b_block(
                    &mut dst[kb * NR..(kb + kc) * NR],
                    b,
                    b_layout,
                    k,
                    n,
                    kb,
                    kc,
                    j,
                );
                kb += kc;
            }
        });
    }

    // Phase 2: row stripes of C in parallel; each task packs its own A
    // block per k-block and runs the microkernel grid.
    let row_blocks = m.div_ceil(MC);
    let cp = SendSlice(c.as_mut_ptr());
    pool.run(row_blocks, &|blk| {
        let i0 = blk * MC;
        let rows = MC.min(m - i0);
        let strips = rows.div_ceil(MR);
        let mut packed_a = vec![0.0f32; strips.max(1) * MR * KC];
        let mut kb = 0;
        while kb < k {
            let kc = KC.min(k - kb);
            pack_a_block(&mut packed_a, a, a_layout, m, k, i0, rows, kb, kc);
            for j in 0..panels {
                let b_panel = &packed_b[j * k * NR + kb * NR..j * k * NR + (kb + kc) * NR];
                let j0 = j * NR;
                let width = NR.min(n - j0);
                for s in 0..strips {
                    let a_strip = &packed_a[s * MR * kc..(s + 1) * MR * kc];
                    let mut acc = [0.0f32; MR * NR];
                    simd::microkernel(kc, a_strip, b_panel, &mut acc);
                    let r0 = i0 + s * MR;
                    let live = MR.min(i0 + rows - r0);
                    for r in 0..live {
                        // SAFETY: row stripes of C are disjoint per task and
                        // the width-bounded segment is in-bounds; C outlives
                        // the blocking run.
                        let row = unsafe {
                            std::slice::from_raw_parts_mut(cp.get().add((r0 + r) * n + j0), width)
                        };
                        for (dst, &v) in row.iter_mut().zip(acc[r * NR..r * NR + width].iter()) {
                            *dst += v;
                        }
                    }
                }
            }
            kb += kc;
        }
    });
}

/// Reference GEMM: the seed repo's serial i-k-j triple loop (minus its
/// `0.0`-skip, which broke `0 · NaN` propagation). Kept as the numerical
/// baseline for property tests and as the "seed serial kernel" timed by the
/// perf benches.
#[allow(clippy::too_many_arguments)]
pub fn gemm_reference(
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    c: &mut [f32],
) {
    // egeria-lint: allow(panic-reachable-from-kernel): shape precondition
    // at the public kernel boundary, same contract as `gemm` above.
    assert_eq!(c.len(), m * n, "gemm_reference: C length");
    for i in 0..m {
        for p in 0..k {
            let av = read(a, a_layout, m, k, i, p);
            for j in 0..n {
                c[i * n + j] += av * read(b, b_layout, k, n, p, j);
            }
        }
    }
}

#[derive(Clone, Copy)]
struct SendSlice(*mut f32);
// SAFETY: a SendSlice is only handed to pool tasks that write disjoint,
// in-bounds regions of the buffer it points into, and the dispatching call
// blocks until every task finishes — no aliasing or dangling access.
unsafe impl Send for SendSlice {}
// SAFETY: as for Send — concurrent tasks touch disjoint regions only.
unsafe impl Sync for SendSlice {}
impl SendSlice {
    /// Method (not field) access so closures capture the whole wrapper,
    /// keeping it `Sync` under edition-2021 disjoint capture.
    fn get(self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal()).collect()
    }

    fn run_both(
        m: usize,
        n: usize,
        k: usize,
        a_layout: Layout,
        b_layout: Layout,
        threads: usize,
        seed: u64,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Rng::new(seed);
        let a = random(m * k, &mut rng);
        let b = random(k * n, &mut rng);
        let pool = ThreadPool::new(threads);
        let mut c = vec![0.0f32; m * n];
        gemm(&pool, &a, a_layout, &b, b_layout, m, n, k, &mut c);
        let mut c_ref = vec![0.0f32; m * n];
        gemm_reference(&a, a_layout, &b, b_layout, m, n, k, &mut c_ref);
        (c, c_ref)
    }

    #[test]
    fn matches_reference_on_odd_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (MR, NR, KC),
            (MC + 3, NR * 2 + 5, KC + 9),
            (130, 70, 33),
        ] {
            for &(la, lb) in &[
                (Layout::RowMajor, Layout::RowMajor),
                (Layout::Transposed, Layout::RowMajor),
                (Layout::RowMajor, Layout::Transposed),
                (Layout::Transposed, Layout::Transposed),
            ] {
                let (c, c_ref) = run_both(m, n, k, la, lb, 3, 42);
                for (i, (&x, &y)) in c.iter().zip(c_ref.iter()).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-3 * (1.0 + y.abs()),
                        "({m},{n},{k}) {la:?}/{lb:?} elem {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let (m, n, k) = (77, 53, 129);
        let base = run_both(m, n, k, Layout::RowMajor, Layout::RowMajor, 1, 7).0;
        for threads in [2usize, 7, 8] {
            let c = run_both(m, n, k, Layout::RowMajor, Layout::RowMajor, threads, 7).0;
            for (a, b) in base.iter().zip(c.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let pool = ThreadPool::new(1);
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 4.0];
        let mut c = vec![10.0f32];
        gemm(
            &pool,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            1,
            1,
            2,
            &mut c,
        );
        assert_eq!(c[0], 10.0 + 3.0 + 8.0);
    }

    #[test]
    fn nan_propagates_through_gemm() {
        let pool = ThreadPool::new(2);
        let mut a = vec![0.0f32; 4];
        a[0] = f32::NAN;
        let b = vec![0.0f32; 4];
        let mut c = vec![0.0f32; 4];
        gemm(
            &pool,
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            2,
            2,
            2,
            &mut c,
        );
        assert!(c[0].is_nan(), "0 · NaN must stay NaN");
        assert!(c[1].is_nan());
        assert!(!c[2].is_nan());
    }
}
