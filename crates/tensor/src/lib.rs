//! Pure-Rust n-dimensional tensor library for the Egeria reproduction.
//!
//! This crate is the numerical substrate under the autograd engine, the model
//! zoo, and the analysis metrics. It provides:
//!
//! - a contiguous row-major [`Tensor`] of `f32` with NumPy-style broadcasting,
//! - dense linear algebra: blocked [`matmul`](Tensor::matmul), Householder QR,
//!   one-sided Jacobi SVD, and linear least squares (used by PWCCA and the
//!   freezing slope fit),
//! - convolution/pooling kernels (forward and the gradient kernels used by the
//!   autograd layer implementations),
//! - deterministic random tensor constructors seeded explicitly (training runs
//!   must be reproducible so the cache/prefetch path can be validated
//!   bit-for-bit),
//! - serialization of tensors to/from byte buffers (the on-disk activation
//!   cache format).
//!
//! Everything is `f32`: the paper trains in fp32 and emulates reduced
//! precision (int8/f16) in `egeria-quant` on top of this crate.

// The only crate allowed `unsafe` (pool dispatch and the SIMD intrinsic
// layer under crates/tensor/src/simd/); every site carries a // SAFETY:
// comment, enforced by egeria-lint, and `std::arch` intrinsics are confined
// to the simd module by the arch-intrinsics-confined lint rule.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
pub mod conv;
pub mod error;
pub mod gemm;
pub mod linalg;
pub mod pool;
pub mod rng;
pub mod serialize;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use error::{Result, TensorError};
pub use pool::{PoolStatsSnapshot, ThreadPool};
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;
