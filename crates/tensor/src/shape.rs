//! Shape and stride arithmetic for contiguous row-major tensors.

use crate::error::{Result, TensorError};

/// A tensor shape: the extent of each dimension, outermost first.
///
/// Shapes are small (rank ≤ 4 in practice: `(batch, channel, height, width)`),
/// so a plain `Vec<usize>` is used for storage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// The last dimension always has stride 1; a zero-rank shape yields an
    /// empty stride vector.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1usize;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// Returns an error if the index rank differs from the shape rank or any
    /// coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.0.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.0.clone(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(self.0.iter()).zip(strides.iter()) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.0.clone(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Computes the broadcast shape of `self` and `other` under NumPy rules.
    ///
    /// Dimensions are aligned from the trailing end; extents must match or one
    /// of them must be 1.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for (i, dim) in dims.iter_mut().enumerate() {
            let a = if i < rank - self.rank() { 1 } else { self.0[i - (rank - self.rank())] };
            let b = if i < rank - other.rank() { 1 } else { other.0[i - (rank - other.rank())] };
            *dim = if a == b || b == 1 {
                a
            } else if a == 1 {
                b
            } else {
                return Err(TensorError::ShapeMismatch {
                    op: "broadcast",
                    lhs: self.0.clone(),
                    rhs: other.0.clone(),
                });
            };
        }
        Ok(Shape(dims))
    }

    /// Strides to iterate this shape as if broadcast to `target` (stride 0 on
    /// broadcast dimensions).
    ///
    /// `target` must be a valid broadcast result that includes this shape.
    pub fn broadcast_strides(&self, target: &Shape) -> Result<Vec<usize>> {
        if self.rank() > target.rank() {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast_strides",
                lhs: self.0.clone(),
                rhs: target.0.clone(),
            });
        }
        let own = self.strides();
        let offset = target.rank() - self.rank();
        let mut out = vec![0usize; target.rank()];
        for i in 0..target.rank() {
            if i < offset {
                out[i] = 0;
            } else {
                let d = self.0[i - offset];
                let t = target.0[i];
                if d == t {
                    out[i] = own[i - offset];
                } else if d == 1 {
                    out[i] = 0;
                } else {
                    return Err(TensorError::ShapeMismatch {
                        op: "broadcast_strides",
                        lhs: self.0.clone(),
                        rhs: target.0.clone(),
                    });
                }
            }
        }
        Ok(out)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn numel_counts_elements() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
        assert_eq!(Shape::new(&[]).numel(), 1);
        assert_eq!(Shape::new(&[0, 7]).numel(), 0);
    }

    #[test]
    fn offset_round_trips_indices() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn broadcast_matches_numpy_rules() {
        let a = Shape::new(&[4, 1, 3]);
        let b = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[4, 2, 3]));
        let scalar = Shape::new(&[]);
        assert_eq!(a.broadcast(&scalar).unwrap(), a);
    }

    #[test]
    fn broadcast_rejects_incompatible() {
        let a = Shape::new(&[4, 3]);
        let b = Shape::new(&[2, 3]);
        assert!(a.broadcast(&b).is_err());
    }

    #[test]
    fn broadcast_strides_zero_on_expanded_dims() {
        let a = Shape::new(&[1, 3]);
        let t = Shape::new(&[4, 2, 3]);
        assert_eq!(a.broadcast_strides(&t).unwrap(), vec![0, 0, 1]);
    }
}
