//! Error types for tensor operations.

use std::fmt;

/// Result alias used across the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor operations.
///
/// All fallible tensor APIs return [`Result`]; shape errors carry the
/// offending shapes so callers can produce actionable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes were incompatible for the attempted operation.
    ShapeMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Left-hand / first shape involved.
        lhs: Vec<usize>,
        /// Right-hand / second shape involved.
        rhs: Vec<usize>,
    },
    /// A reshape target had a different element count than the source.
    InvalidReshape {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An axis argument was out of range for the tensor rank.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// An index was out of bounds along some dimension.
    IndexOutOfBounds {
        /// The offending multi-dimensional index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A numerical routine failed to converge or met a singular input.
    Numerical(String),
    /// Deserialization found a malformed byte buffer.
    Corrupt(String),
    /// An underlying I/O operation failed (disk full, unreadable file, …).
    Io(String),
}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e.to_string())
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}: element counts differ")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::Numerical(msg) => write!(f, "numerical error: {msg}"),
            TensorError::Corrupt(msg) => write!(f, "corrupt tensor buffer: {msg}"),
            TensorError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch_names_op_and_shapes() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
        assert!(s.contains("[4, 5]"));
    }

    #[test]
    fn display_invalid_reshape_mentions_both_shapes() {
        let e = TensorError::InvalidReshape {
            from: vec![6],
            to: vec![4],
        };
        assert!(e.to_string().contains("[6]"));
        assert!(e.to_string().contains("[4]"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TensorError::Numerical("x".into()));
    }
}
