//! Tensor serialization: the on-disk format of the activation cache and the
//! building block of checkpoint files.
//!
//! Layout (little-endian), format version 2:
//!
//! ```text
//! magic        u32  = 0x45474552 ("EGER")
//! version      u8   = 2
//! payload_len  u64  (bytes of payload following the crc field)
//! crc32        u32  (IEEE CRC-32 of the payload)
//! payload:
//!   rank   u32
//!   dims   u64 × rank
//!   data   f32 × numel
//! ```
//!
//! The header makes three classes of disk corruption detectable before any
//! payload byte is interpreted: truncation (`payload_len` disagrees with the
//! buffer), bit flips (`crc32` mismatch), and format drift (`version`
//! mismatch). All three surface as [`TensorError::Corrupt`], never as a
//! panic or a silently misread tensor; callers such as the activation cache
//! degrade to recomputation on that error.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic number prefixed to every serialized tensor.
pub const MAGIC: u32 = 0x4547_4552;

/// Current wire-format version.
pub const FORMAT_VERSION: u8 = 2;

/// Fixed header size: magic + version + payload_len + crc32.
const HEADER_LEN: usize = 4 + 1 + 8 + 4;

/// IEEE CRC-32 (the zlib/PNG polynomial), used by both the tensor format
/// and the checkpoint container.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Serializes a tensor to a byte buffer.
pub fn to_bytes(t: &Tensor) -> Bytes {
    let payload_len = 4 + t.rank() * 8 + t.numel() * 4;
    let mut payload = BytesMut::with_capacity(payload_len);
    payload.put_u32_le(t.rank() as u32);
    for &d in t.dims() {
        payload.put_u64_le(d as u64);
    }
    for &v in t.data() {
        payload.put_f32_le(v);
    }
    let payload = payload.freeze();

    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.put_u32_le(MAGIC);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u64_le(payload.len() as u64);
    buf.put_u32_le(crc32(&payload));
    buf.put_slice(&payload);
    buf.freeze()
}

/// Deserializes a tensor from a byte buffer produced by [`to_bytes`].
pub fn from_bytes(mut buf: &[u8]) -> Result<Tensor> {
    if buf.remaining() < HEADER_LEN {
        return Err(TensorError::Corrupt("buffer shorter than header".into()));
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(TensorError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let version = buf.get_u8();
    if version != FORMAT_VERSION {
        return Err(TensorError::Corrupt(format!(
            "unsupported format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let payload_len = buf.get_u64_le();
    let expected_crc = buf.get_u32_le();
    if buf.remaining() as u64 != payload_len {
        return Err(TensorError::Corrupt(format!(
            "payload is {} bytes, header declares {}",
            buf.remaining(),
            payload_len
        )));
    }
    let actual_crc = crc32(buf);
    if actual_crc != expected_crc {
        return Err(TensorError::Corrupt(format!(
            "checksum mismatch: stored {expected_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }

    if buf.remaining() < 4 {
        return Err(TensorError::Corrupt("payload shorter than rank field".into()));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(TensorError::Corrupt(format!("implausible rank {rank}")));
    }
    if buf.remaining() < rank * 8 {
        return Err(TensorError::Corrupt("truncated dims".into()));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u64_le() as usize);
    }
    let numel: usize = dims.iter().product();
    if buf.remaining() != numel * 4 {
        return Err(TensorError::Corrupt(format!(
            "tensor data is {} bytes, expected {}",
            buf.remaining(),
            numel * 4
        )));
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(buf.get_f32_le());
    }
    Tensor::from_vec(data, &dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn round_trip_preserves_tensor_exactly() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn(&[3, 4, 5], &mut rng);
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn round_trip_scalar_and_empty() {
        let s = Tensor::scalar(7.0);
        assert_eq!(from_bytes(&to_bytes(&s)).unwrap(), s);
        let e = Tensor::zeros(&[0, 3]);
        assert_eq!(from_bytes(&to_bytes(&e)).unwrap(), e);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&Tensor::zeros(&[2])).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(from_bytes(&bytes), Err(TensorError::Corrupt(_))));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = to_bytes(&Tensor::zeros(&[2])).to_vec();
        bytes[4] = FORMAT_VERSION + 1;
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_truncated_payload() {
        let bytes = to_bytes(&Tensor::zeros(&[4]));
        assert!(from_bytes(&bytes[..bytes.len() - 2]).is_err());
        assert!(from_bytes(&bytes[..6]).is_err());
    }

    #[test]
    fn rejects_any_single_bit_flip_in_payload() {
        let mut rng = Rng::new(3);
        let t = Tensor::randn(&[2, 3], &mut rng);
        let clean = to_bytes(&t).to_vec();
        for byte in HEADER_LEN..clean.len() {
            let mut bytes = clean.clone();
            bytes[byte] ^= 0x10;
            assert!(
                from_bytes(&bytes).is_err(),
                "flip at payload byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn rejects_length_field_tampering() {
        let mut bytes = to_bytes(&Tensor::zeros(&[4])).to_vec();
        bytes[5] ^= 0x01;
        assert!(matches!(from_bytes(&bytes), Err(TensorError::Corrupt(_))));
    }

    #[test]
    fn rejects_implausible_rank() {
        // A payload declaring rank 100, correctly checksummed: the rank
        // sanity check must still fire.
        let mut payload = Vec::new();
        payload.extend_from_slice(&100u32.to_le_bytes());
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(FORMAT_VERSION);
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = from_bytes(&buf).unwrap_err();
        assert!(err.to_string().contains("rank"), "{err}");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
