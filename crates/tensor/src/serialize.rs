//! Tensor serialization: the on-disk format of the activation cache.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  u32  = 0x45474552 ("EGER")
//! rank   u32
//! dims   u64 × rank
//! data   f32 × numel
//! ```
//!
//! The format is self-describing so the prefetcher can validate cache entries
//! written by an earlier epoch before handing them to the training loop.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic number prefixed to every serialized tensor.
pub const MAGIC: u32 = 0x4547_4552;

/// Serializes a tensor to a byte buffer.
pub fn to_bytes(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + t.rank() * 8 + t.numel() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(t.rank() as u32);
    for &d in t.dims() {
        buf.put_u64_le(d as u64);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserializes a tensor from a byte buffer produced by [`to_bytes`].
pub fn from_bytes(mut buf: &[u8]) -> Result<Tensor> {
    if buf.remaining() < 8 {
        return Err(TensorError::Corrupt("buffer shorter than header".into()));
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(TensorError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(TensorError::Corrupt(format!("implausible rank {rank}")));
    }
    if buf.remaining() < rank * 8 {
        return Err(TensorError::Corrupt("truncated dims".into()));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u64_le() as usize);
    }
    let numel: usize = dims.iter().product();
    if buf.remaining() != numel * 4 {
        return Err(TensorError::Corrupt(format!(
            "payload is {} bytes, expected {}",
            buf.remaining(),
            numel * 4
        )));
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(buf.get_f32_le());
    }
    Tensor::from_vec(data, &dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn round_trip_preserves_tensor_exactly() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn(&[3, 4, 5], &mut rng);
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn round_trip_scalar_and_empty() {
        let s = Tensor::scalar(7.0);
        assert_eq!(from_bytes(&to_bytes(&s)).unwrap(), s);
        let e = Tensor::zeros(&[0, 3]);
        assert_eq!(from_bytes(&to_bytes(&e)).unwrap(), e);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&Tensor::zeros(&[2])).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(from_bytes(&bytes), Err(TensorError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncated_payload() {
        let bytes = to_bytes(&Tensor::zeros(&[4]));
        assert!(from_bytes(&bytes[..bytes.len() - 2]).is_err());
        assert!(from_bytes(&bytes[..6]).is_err());
    }

    #[test]
    fn rejects_implausible_rank() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&100u32.to_le_bytes());
        assert!(from_bytes(&buf).is_err());
    }
}
