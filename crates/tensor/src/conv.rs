//! Convolution and pooling kernels.
//!
//! Forward kernels plus the two convolution gradient kernels
//! ([`conv2d_grad_input`], [`conv2d_grad_weight`]) that the autograd layer in
//! `egeria-nn` composes into a backward pass. All kernels take NCHW tensors.
//!
//! The three GEMM-bound kernels are lowered to im2col plus the parallel
//! blocked GEMM in [`crate::gemm`], dispatched one pool task per image so a
//! batch saturates the worker pool. The seed repo's direct loops survive in
//! [`reference`] as the numerical baseline and the
//! [`Backend::Reference`](crate::backend::Backend) path.
//!
//! Determinism: each task writes a disjoint image slice, im2col/col2im walk
//! fixed index orders, and the cross-image reduction in
//! [`conv2d_grad_weight`] folds per-image partials in ascending image order
//! — so outputs are bit-identical for every thread count.

use crate::backend::{backend, Backend};
use crate::error::{Result, TensorError};
use crate::gemm::{gemm, Layout};
use crate::pool::{self, ThreadPool};
use crate::tensor::Tensor;

/// Convolution geometry: square stride and zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Stride applied in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied on every spatial edge.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec; stride must be non-zero.
    pub fn new(stride: usize, padding: usize) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::Numerical("conv stride must be > 0".into()));
        }
        Ok(Conv2dSpec { stride, padding })
    }

    /// Output spatial extent for an input extent and kernel extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> Result<usize> {
        let padded = input + 2 * self.padding;
        if kernel == 0 || padded < kernel {
            return Err(TensorError::Numerical(format!(
                "kernel {kernel} larger than padded input {padded}"
            )));
        }
        Ok((padded - kernel) / self.stride + 1)
    }
}

fn check_conv_shapes(input: &Tensor, weight: &Tensor) -> Result<()> {
    if input.rank() != 4 || weight.rank() != 4 || input.dims()[1] != weight.dims()[1] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    Ok(())
}

/// The contiguous output range `[lo, hi)` along one spatial axis for which
/// `o*stride + k − pad` stays inside `[0, extent)`.
///
/// Hoisting this bound out of the inner loops removes the per-element
/// branch that otherwise blocks vectorization — the convolution kernels are
/// the training hot path.
#[inline]
fn valid_out_range(out_extent: usize, extent: usize, k: usize, stride: usize, pad: usize) -> (usize, usize) {
    // Smallest o with o*stride + k >= pad.
    let lo = pad.saturating_sub(k).div_ceil(stride);
    // Largest o with o*stride + k - pad <= extent - 1.
    let hi = if extent + pad > k {
        (((extent + pad - k - 1) / stride) + 1).min(out_extent)
    } else {
        0
    };
    (lo.min(out_extent), hi)
}

/// Geometry shared by the im2col lowering of one image.
#[derive(Clone, Copy)]
struct ColGeom {
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    stride: usize,
    pad: usize,
}

impl ColGeom {
    fn rows(&self) -> usize {
        self.c_in * self.kh * self.kw
    }
    fn cols(&self) -> usize {
        self.oh * self.ow
    }
}

/// Unfolds one NCHW image into the `(c_in·kh·kw) × (oh·ow)` patch matrix.
/// `col` is fully overwritten (padding positions become zeros).
fn im2col(x_img: &[f32], g: ColGeom, col: &mut [f32]) {
    col.fill(0.0);
    for ci in 0..g.c_in {
        let in_base = ci * g.h * g.w;
        for ki in 0..g.kh {
            let (oi_lo, oi_hi) = valid_out_range(g.oh, g.h, ki, g.stride, g.pad);
            for kj in 0..g.kw {
                let (oj_lo, oj_hi) = valid_out_range(g.ow, g.w, kj, g.stride, g.pad);
                if oj_lo >= oj_hi {
                    continue;
                }
                let row = ((ci * g.kh + ki) * g.kw + kj) * g.cols();
                let len = oj_hi - oj_lo;
                for oi in oi_lo..oi_hi {
                    let ii = oi * g.stride + ki - g.pad;
                    // Non-negative by construction of `oj_lo`.
                    let start = in_base + ii * g.w + oj_lo * g.stride + kj - g.pad;
                    let dst = row + oi * g.ow + oj_lo;
                    if g.stride == 1 {
                        col[dst..dst + len].copy_from_slice(&x_img[start..start + len]);
                    } else {
                        for d in 0..len {
                            col[dst + d] = x_img[start + d * g.stride];
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-adds a patch-matrix gradient back onto one
/// image's input gradient. `gx_img` must be zero-initialized by the caller.
fn col2im_add(colg: &[f32], g: ColGeom, gx_img: &mut [f32]) {
    for ci in 0..g.c_in {
        let in_base = ci * g.h * g.w;
        for ki in 0..g.kh {
            let (oi_lo, oi_hi) = valid_out_range(g.oh, g.h, ki, g.stride, g.pad);
            for kj in 0..g.kw {
                let (oj_lo, oj_hi) = valid_out_range(g.ow, g.w, kj, g.stride, g.pad);
                if oj_lo >= oj_hi {
                    continue;
                }
                let row = ((ci * g.kh + ki) * g.kw + kj) * g.cols();
                let len = oj_hi - oj_lo;
                for oi in oi_lo..oi_hi {
                    let ii = oi * g.stride + ki - g.pad;
                    let start = in_base + ii * g.w + oj_lo * g.stride + kj - g.pad;
                    let src = row + oi * g.ow + oj_lo;
                    if g.stride == 1 {
                        for d in 0..len {
                            gx_img[start + d] += colg[src + d];
                        }
                    } else {
                        for d in 0..len {
                            gx_img[start + d * g.stride] += colg[src + d];
                        }
                    }
                }
            }
        }
    }
}

fn geom(input_dims: &[usize], weight_dims: &[usize], spec: Conv2dSpec) -> Result<ColGeom> {
    let (h, w) = (input_dims[2], input_dims[3]);
    let (kh, kw) = (weight_dims[2], weight_dims[3]);
    Ok(ColGeom {
        c_in: input_dims[1],
        h,
        w,
        kh,
        kw,
        oh: spec.out_extent(h, kh)?,
        ow: spec.out_extent(w, kw)?,
        stride: spec.stride,
        pad: spec.padding,
    })
}

/// 2-D convolution: input `(n, c_in, h, w)`, weight `(c_out, c_in, kh, kw)`,
/// optional bias `(c_out)`, producing `(n, c_out, oh, ow)`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    check_conv_shapes(input, weight)?;
    let c_out = weight.dims()[0];
    geom(input.dims(), weight.dims(), spec)?;
    if let Some(b) = bias {
        if b.dims() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d bias",
                lhs: b.dims().to_vec(),
                rhs: vec![c_out],
            });
        }
    }
    if backend() == Backend::Reference {
        return reference::conv2d(input, weight, bias, spec);
    }
    conv2d_with_pool(ThreadPool::global(), input, weight, bias, spec)
}

/// Blocked-path [`conv2d`] on an explicit pool. Shapes must already be
/// consistent; exposed for the cross-thread-count determinism tests.
#[doc(hidden)]
pub fn conv2d_with_pool(
    pool_ref: &ThreadPool,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, _, _, _) = dims4(input);
    let c_out = weight.dims()[0];
    let g = geom(input.dims(), weight.dims(), spec)?;
    let x = input.data();
    let wd = weight.data();
    let (rows, cols) = (g.rows(), g.cols());
    let img_in = g.c_in * g.h * g.w;
    let mut out = vec![0.0f32; n * c_out * cols];
    pool::for_each_batch_mut(pool_ref, &mut out, c_out * cols, |ni, o_img| {
        let mut col = vec![0.0f32; rows * cols];
        im2col(&x[ni * img_in..(ni + 1) * img_in], g, &mut col);
        // OUT_i = W (c_out × K) · COL_i (K × P).
        gemm(
            pool_ref,
            wd,
            Layout::RowMajor,
            &col,
            Layout::RowMajor,
            c_out,
            cols,
            rows,
            o_img,
        );
        if let Some(b) = bias {
            for (co, &bv) in b.data().iter().enumerate() {
                for v in &mut o_img[co * cols..(co + 1) * cols] {
                    *v += bv;
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, c_out, g.oh, g.ow])
}

/// Gradient of [`conv2d`] w.r.t. the input (a "full" transposed convolution).
pub fn conv2d_grad_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    spec: Conv2dSpec,
) -> Result<Tensor> {
    if grad_out.rank() != 4 || weight.rank() != 4 || input_dims.len() != 4 {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad_input",
            lhs: grad_out.dims().to_vec(),
            rhs: input_dims.to_vec(),
        });
    }
    let (_, c_out, _, _) = dims4(grad_out);
    let (c_out_w, c_in, _, _) = dims4(weight);
    if c_out != c_out_w || input_dims[1] != c_in {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad_input",
            lhs: grad_out.dims().to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    let g = geom(input_dims, weight.dims(), spec)?;
    if g.oh != grad_out.dims()[2] || g.ow != grad_out.dims()[3] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad_input",
            lhs: grad_out.dims().to_vec(),
            rhs: input_dims.to_vec(),
        });
    }
    if backend() == Backend::Reference {
        return reference::conv2d_grad_input(grad_out, weight, input_dims, spec);
    }
    conv2d_grad_input_with_pool(ThreadPool::global(), grad_out, weight, input_dims, spec)
}

/// Blocked-path [`conv2d_grad_input`] on an explicit pool. Shapes must
/// already be consistent; exposed for the determinism tests.
#[doc(hidden)]
pub fn conv2d_grad_input_with_pool(
    pool_ref: &ThreadPool,
    grad_out: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, c_out, _, _) = dims4(grad_out);
    let c_in = weight.dims()[1];
    let g = geom(input_dims, weight.dims(), spec)?;
    let go = grad_out.data();
    let wd = weight.data();
    let (rows, cols) = (g.rows(), g.cols());
    let img_in = c_in * g.h * g.w;
    let img_out = c_out * cols;
    let mut gx = vec![0.0f32; n * img_in];
    pool::for_each_batch_mut(pool_ref, &mut gx, img_in, |ni, gx_img| {
        // COLG_i = Wᵀ (K × c_out) · G_i (c_out × P); W's storage is the
        // transpose of the logical operand.
        let mut colg = vec![0.0f32; rows * cols];
        gemm(
            pool_ref,
            wd,
            Layout::Transposed,
            &go[ni * img_out..(ni + 1) * img_out],
            Layout::RowMajor,
            rows,
            cols,
            c_out,
            &mut colg,
        );
        col2im_add(&colg, g, gx_img);
    });
    Tensor::from_vec(gx, input_dims)
}

/// Gradient of [`conv2d`] w.r.t. the weight.
pub fn conv2d_grad_weight(
    grad_out: &Tensor,
    input: &Tensor,
    weight_dims: &[usize],
    spec: Conv2dSpec,
) -> Result<Tensor> {
    if grad_out.rank() != 4 || input.rank() != 4 || weight_dims.len() != 4 {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad_weight",
            lhs: grad_out.dims().to_vec(),
            rhs: weight_dims.to_vec(),
        });
    }
    let (_, c_out, _, _) = dims4(grad_out);
    let (_, c_in, _, _) = dims4(input);
    if weight_dims[0] != c_out || weight_dims[1] != c_in {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad_weight",
            lhs: grad_out.dims().to_vec(),
            rhs: weight_dims.to_vec(),
        });
    }
    let g = geom(input.dims(), weight_dims, spec)?;
    if g.oh != grad_out.dims()[2] || g.ow != grad_out.dims()[3] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad_weight",
            lhs: grad_out.dims().to_vec(),
            rhs: weight_dims.to_vec(),
        });
    }
    if backend() == Backend::Reference {
        return reference::conv2d_grad_weight(grad_out, input, weight_dims, spec);
    }
    conv2d_grad_weight_with_pool(ThreadPool::global(), grad_out, input, weight_dims, spec)
}

/// Blocked-path [`conv2d_grad_weight`] on an explicit pool. Shapes must
/// already be consistent; exposed for the determinism tests.
#[doc(hidden)]
pub fn conv2d_grad_weight_with_pool(
    pool_ref: &ThreadPool,
    grad_out: &Tensor,
    input: &Tensor,
    weight_dims: &[usize],
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, c_out, _, _) = dims4(grad_out);
    let c_in = input.dims()[1];
    let g = geom(input.dims(), weight_dims, spec)?;
    let go = grad_out.data();
    let x = input.data();
    let (rows, cols) = (g.rows(), g.cols());
    let img_in = c_in * g.h * g.w;
    let img_out = c_out * cols;
    let w_numel = c_out * rows;
    // Per-image partials computed in parallel, then folded in ascending
    // image order so the reduction is bit-identical for any thread count.
    let mut partials = vec![0.0f32; n * w_numel];
    pool::for_each_batch_mut(pool_ref, &mut partials, w_numel, |ni, part| {
        let mut col = vec![0.0f32; rows * cols];
        im2col(&x[ni * img_in..(ni + 1) * img_in], g, &mut col);
        // GW_i = G_i (c_out × P) · COL_iᵀ (P × K); COL_i's storage is the
        // transpose of the logical right operand.
        gemm(
            pool_ref,
            &go[ni * img_out..(ni + 1) * img_out],
            Layout::RowMajor,
            &col,
            Layout::Transposed,
            c_out,
            rows,
            cols,
            part,
        );
    });
    let mut gw = vec![0.0f32; w_numel];
    for ni in 0..n {
        let part = &partials[ni * w_numel..(ni + 1) * w_numel];
        for (dst, &src) in gw.iter_mut().zip(part.iter()) {
            *dst += src;
        }
    }
    Tensor::from_vec(gw, weight_dims)
}

/// The seed repo's serial direct-convolution loops, kept as the numerical
/// baseline for property tests, the `EGERIA_COMPUTE_BACKEND=reference`
/// escape hatch, and the perf benches' "seed serial kernel" timings.
///
/// The seed's `wv == 0.0` inner-loop skip is gone: it silently collapsed
/// `0 · NaN` and `0 · ∞` to `0` and cost a branch per iteration on dense
/// weights.
pub mod reference {
    use super::*;

    /// Serial reference [`super::conv2d`].
    pub fn conv2d(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Result<Tensor> {
        check_conv_shapes(input, weight)?;
        let (n, c_in, h, w) = dims4(input);
        let (c_out, _, kh, kw) = dims4(weight);
        let oh = spec.out_extent(h, kh)?;
        let ow = spec.out_extent(w, kw)?;
        if let Some(b) = bias {
            if b.dims() != [c_out] {
                return Err(TensorError::ShapeMismatch {
                    op: "conv2d bias",
                    lhs: b.dims().to_vec(),
                    rhs: vec![c_out],
                });
            }
        }
        let x = input.data();
        let wd = weight.data();
        let mut out = vec![0.0f32; n * c_out * oh * ow];
        let (stride, pad) = (spec.stride, spec.padding);
        for ni in 0..n {
            for co in 0..c_out {
                let out_base = (ni * c_out + co) * oh * ow;
                for ci in 0..c_in {
                    let in_base = (ni * c_in + ci) * h * w;
                    let w_base = (co * c_in + ci) * kh * kw;
                    for ki in 0..kh {
                        let (oi_lo, oi_hi) = valid_out_range(oh, h, ki, stride, pad);
                        for kj in 0..kw {
                            let wv = wd[w_base + ki * kw + kj];
                            let (oj_lo, oj_hi) = valid_out_range(ow, w, kj, stride, pad);
                            if oj_lo >= oj_hi {
                                continue;
                            }
                            for oi in oi_lo..oi_hi {
                                let ii = oi * stride + ki - pad;
                                // Non-negative by construction of `oj_lo`.
                                let start = in_base + ii * w + oj_lo * stride + kj - pad;
                                let orow = out_base + oi * ow;
                                let len = oj_hi - oj_lo;
                                if stride == 1 {
                                    let xs = &x[start..start + len];
                                    let os = &mut out[orow + oj_lo..orow + oj_hi];
                                    for (o, &xv) in os.iter_mut().zip(xs.iter()) {
                                        *o += wv * xv;
                                    }
                                } else {
                                    for d in 0..len {
                                        out[orow + oj_lo + d] += wv * x[start + d * stride];
                                    }
                                }
                            }
                        }
                    }
                }
                if let Some(b) = bias {
                    let bv = b.data()[co];
                    for v in &mut out[out_base..out_base + oh * ow] {
                        *v += bv;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c_out, oh, ow])
    }

    /// Serial reference [`super::conv2d_grad_input`].
    pub fn conv2d_grad_input(
        grad_out: &Tensor,
        weight: &Tensor,
        input_dims: &[usize],
        spec: Conv2dSpec,
    ) -> Result<Tensor> {
        let (n, c_out, oh, ow) = dims4(grad_out);
        let (_, c_in, kh, kw) = dims4(weight);
        let (h, w) = (input_dims[2], input_dims[3]);
        let g = grad_out.data();
        let wd = weight.data();
        let mut gx = vec![0.0f32; n * c_in * h * w];
        let (stride, pad) = (spec.stride, spec.padding);
        for ni in 0..n {
            for co in 0..c_out {
                let g_base = (ni * c_out + co) * oh * ow;
                for ci in 0..c_in {
                    let x_base = (ni * c_in + ci) * h * w;
                    let w_base = (co * c_in + ci) * kh * kw;
                    for ki in 0..kh {
                        let (oi_lo, oi_hi) = valid_out_range(oh, h, ki, stride, pad);
                        for kj in 0..kw {
                            let wv = wd[w_base + ki * kw + kj];
                            let (oj_lo, oj_hi) = valid_out_range(ow, w, kj, stride, pad);
                            if oj_lo >= oj_hi {
                                continue;
                            }
                            for oi in oi_lo..oi_hi {
                                let ii = oi * stride + ki - pad;
                                let start = x_base + ii * w + oj_lo * stride + kj - pad;
                                let grow = g_base + oi * ow;
                                let len = oj_hi - oj_lo;
                                if stride == 1 {
                                    let gs = &g[grow + oj_lo..grow + oj_hi];
                                    let xs = &mut gx[start..start + len];
                                    for (xv, &gv) in xs.iter_mut().zip(gs.iter()) {
                                        *xv += wv * gv;
                                    }
                                } else {
                                    for d in 0..len {
                                        gx[start + d * stride] += wv * g[grow + oj_lo + d];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gx, input_dims)
    }

    /// Serial reference [`super::conv2d_grad_weight`].
    pub fn conv2d_grad_weight(
        grad_out: &Tensor,
        input: &Tensor,
        weight_dims: &[usize],
        spec: Conv2dSpec,
    ) -> Result<Tensor> {
        let (n, c_out, oh, ow) = dims4(grad_out);
        let (_, c_in, h, w) = dims4(input);
        let (kh, kw) = (weight_dims[2], weight_dims[3]);
        let g = grad_out.data();
        let x = input.data();
        let mut gw = vec![0.0f32; c_out * c_in * kh * kw];
        let (stride, pad) = (spec.stride, spec.padding);
        for ni in 0..n {
            for co in 0..c_out {
                let g_base = (ni * c_out + co) * oh * ow;
                for ci in 0..c_in {
                    let x_base = (ni * c_in + ci) * h * w;
                    let w_base = (co * c_in + ci) * kh * kw;
                    for ki in 0..kh {
                        let (oi_lo, oi_hi) = valid_out_range(oh, h, ki, stride, pad);
                        for kj in 0..kw {
                            let (oj_lo, oj_hi) = valid_out_range(ow, w, kj, stride, pad);
                            if oj_lo >= oj_hi {
                                continue;
                            }
                            let mut acc = 0.0f32;
                            let len = oj_hi - oj_lo;
                            for oi in oi_lo..oi_hi {
                                let ii = oi * stride + ki - pad;
                                let start = x_base + ii * w + oj_lo * stride + kj - pad;
                                let grow = g_base + oi * ow;
                                if stride == 1 {
                                    let gs = &g[grow + oj_lo..grow + oj_hi];
                                    let xs = &x[start..start + len];
                                    for (&gv, &xv) in gs.iter().zip(xs.iter()) {
                                        acc += gv * xv;
                                    }
                                } else {
                                    for d in 0..len {
                                        acc += g[grow + oj_lo + d] * x[start + d * stride];
                                    }
                                }
                            }
                            gw[w_base + ki * kw + kj] += acc;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gw, weight_dims)
    }
}

/// Depthwise 2-D convolution: input `(n, c, h, w)`, weight `(c, 1, kh, kw)`,
/// one filter per channel (MobileNetV2's spatial convolution). Parallel over
/// the `n·c` channel planes (disjoint outputs → deterministic).
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    if input.rank() != 4
        || weight.rank() != 4
        || weight.dims()[1] != 1
        || input.dims()[1] != weight.dims()[0]
    {
        return Err(TensorError::ShapeMismatch {
            op: "depthwise_conv2d",
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
        });
    }
    let (n, c, h, w) = dims4(input);
    let (_, _, kh, kw) = dims4(weight);
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    let x = input.data();
    let wd = weight.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let pad = spec.padding as isize;
    pool::for_each_batch_mut(ThreadPool::global(), &mut out, oh * ow, |nc, o_plane| {
        let ci = nc % c;
        let in_base = nc * h * w;
        let w_base = ci * kh * kw;
        let bv = bias.map(|b| b.data()[ci]).unwrap_or(0.0);
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc = bv;
                for ki in 0..kh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..kw {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        acc += wd[w_base + ki * kw + kj]
                            * x[in_base + ii as usize * w + jj as usize];
                    }
                }
                o_plane[oi * ow + oj] = acc;
            }
        }
    });
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Gradient of [`depthwise_conv2d`] w.r.t. its input.
pub fn depthwise_grad_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, c, oh, ow) = dims4(grad_out);
    let (_, _, kh, kw) = dims4(weight);
    let (h, w) = (input_dims[2], input_dims[3]);
    let g = grad_out.data();
    let wd = weight.data();
    let mut gx = vec![0.0f32; input_dims.iter().product()];
    let pad = spec.padding as isize;
    let _ = n;
    pool::for_each_batch_mut(ThreadPool::global(), &mut gx, h * w, |nc, gx_plane| {
        let ci = nc % c;
        let g_base = nc * oh * ow;
        let w_base = ci * kh * kw;
        for oi in 0..oh {
            for oj in 0..ow {
                let gv = g[g_base + oi * ow + oj];
                for ki in 0..kh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..kw {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        gx_plane[ii as usize * w + jj as usize] +=
                            gv * wd[w_base + ki * kw + kj];
                    }
                }
            }
        }
    });
    Tensor::from_vec(gx, input_dims)
}

/// Gradient of [`depthwise_conv2d`] w.r.t. its weight. Parallel over
/// channels; each channel folds its image contributions in ascending image
/// order (deterministic).
pub fn depthwise_grad_weight(
    grad_out: &Tensor,
    input: &Tensor,
    weight_dims: &[usize],
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, c, oh, ow) = dims4(grad_out);
    let (_, _, h, w) = dims4(input);
    let (kh, kw) = (weight_dims[2], weight_dims[3]);
    let g = grad_out.data();
    let x = input.data();
    let mut gw = vec![0.0f32; weight_dims.iter().product()];
    let pad = spec.padding as isize;
    pool::for_each_batch_mut(ThreadPool::global(), &mut gw, kh * kw, |ci, gw_chan| {
        for ni in 0..n {
            let nc = ni * c + ci;
            let x_base = nc * h * w;
            let g_base = nc * oh * ow;
            for ki in 0..kh {
                for kj in 0..kw {
                    let mut acc = 0.0f32;
                    for oi in 0..oh {
                        let ii = (oi * spec.stride) as isize + ki as isize - pad;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for oj in 0..ow {
                            let jj = (oj * spec.stride) as isize + kj as isize - pad;
                            if jj < 0 || jj >= w as isize {
                                continue;
                            }
                            acc += g[g_base + oi * ow + oj]
                                * x[x_base + ii as usize * w + jj as usize];
                        }
                    }
                    gw_chan[ki * kw + kj] += acc;
                }
            }
        }
    });
    Tensor::from_vec(gw, weight_dims)
}

/// Average pooling over `k×k` windows with stride `k` (non-overlapping).
pub fn avg_pool2d(input: &Tensor, k: usize) -> Result<Tensor> {
    if input.rank() != 4 || k == 0 {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2d",
            lhs: input.dims().to_vec(),
            rhs: vec![k],
        });
    }
    let (n, c, h, w) = dims4(input);
    if h % k != 0 || w % k != 0 {
        return Err(TensorError::Numerical(format!(
            "avg_pool2d: {h}x{w} not divisible by window {k}"
        )));
    }
    let (oh, ow) = (h / k, w / k);
    let x = input.data();
    let inv = 1.0 / (k * k) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    for nc in 0..n * c {
        let ib = nc * h * w;
        let ob = nc * oh * ow;
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc = 0.0f32;
                for di in 0..k {
                    let row = ib + (oi * k + di) * w + oj * k;
                    for dj in 0..k {
                        acc += x[row + dj];
                    }
                }
                out[ob + oi * ow + oj] = acc * inv;
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Gradient of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its window.
pub fn avg_pool2d_grad(grad_out: &Tensor, k: usize, input_dims: &[usize]) -> Result<Tensor> {
    if grad_out.rank() != 4 || input_dims.len() != 4 {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2d_grad",
            lhs: grad_out.dims().to_vec(),
            rhs: input_dims.to_vec(),
        });
    }
    let (n, c, oh, ow) = dims4(grad_out);
    let (h, w) = (input_dims[2], input_dims[3]);
    let g = grad_out.data();
    let inv = 1.0 / (k * k) as f32;
    let mut gx = vec![0.0f32; n * c * h * w];
    for nc in 0..n * c {
        let gb = nc * oh * ow;
        let xb = nc * h * w;
        for oi in 0..oh {
            for oj in 0..ow {
                let gv = g[gb + oi * ow + oj] * inv;
                for di in 0..k {
                    let row = xb + (oi * k + di) * w + oj * k;
                    for dj in 0..k {
                        gx[row + dj] += gv;
                    }
                }
            }
        }
    }
    Tensor::from_vec(gx, input_dims)
}

/// Global average pooling `(n, c, h, w) → (n, c)`.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::ShapeMismatch {
            op: "global_avg_pool",
            lhs: input.dims().to_vec(),
            rhs: vec![],
        });
    }
    let (n, c, h, w) = dims4(input);
    let x = input.data();
    let inv = 1.0 / (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for nc in 0..n * c {
        out[nc] = x[nc * h * w..(nc + 1) * h * w].iter().sum::<f32>() * inv;
    }
    Tensor::from_vec(out, &[n, c])
}

/// Gradient of [`global_avg_pool`].
pub fn global_avg_pool_grad(grad_out: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    if grad_out.rank() != 2 || input_dims.len() != 4 {
        return Err(TensorError::ShapeMismatch {
            op: "global_avg_pool_grad",
            lhs: grad_out.dims().to_vec(),
            rhs: input_dims.to_vec(),
        });
    }
    let (h, w) = (input_dims[2], input_dims[3]);
    let inv = 1.0 / (h * w) as f32;
    let g = grad_out.data();
    let mut gx = vec![0.0f32; input_dims.iter().product()];
    for nc in 0..g.len() {
        let gv = g[nc] * inv;
        for v in &mut gx[nc * h * w..(nc + 1) * h * w] {
            *v = gv;
        }
    }
    Tensor::from_vec(gx, input_dims)
}

/// Nearest-neighbour upsampling by an integer factor (DeepLab-style heads).
pub fn upsample_nearest(input: &Tensor, factor: usize) -> Result<Tensor> {
    if input.rank() != 4 || factor == 0 {
        return Err(TensorError::ShapeMismatch {
            op: "upsample_nearest",
            lhs: input.dims().to_vec(),
            rhs: vec![factor],
        });
    }
    let (n, c, h, w) = dims4(input);
    let (oh, ow) = (h * factor, w * factor);
    let x = input.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    for nc in 0..n * c {
        let ib = nc * h * w;
        let ob = nc * oh * ow;
        for oi in 0..oh {
            let row = ib + (oi / factor) * w;
            let orow = ob + oi * ow;
            for oj in 0..ow {
                out[orow + oj] = x[row + oj / factor];
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Gradient of [`upsample_nearest`]: sums gradients over each source pixel's
/// replicas.
pub fn upsample_nearest_grad(grad_out: &Tensor, factor: usize) -> Result<Tensor> {
    if grad_out.rank() != 4 || factor == 0 {
        return Err(TensorError::ShapeMismatch {
            op: "upsample_nearest_grad",
            lhs: grad_out.dims().to_vec(),
            rhs: vec![factor],
        });
    }
    let (n, c, oh, ow) = dims4(grad_out);
    if oh % factor != 0 || ow % factor != 0 {
        return Err(TensorError::Numerical(format!(
            "upsample grad: {oh}x{ow} not divisible by factor {factor}"
        )));
    }
    let (h, w) = (oh / factor, ow / factor);
    let g = grad_out.data();
    let mut gx = vec![0.0f32; n * c * h * w];
    for nc in 0..n * c {
        let gb = nc * oh * ow;
        let xb = nc * h * w;
        for oi in 0..oh {
            let xrow = xb + (oi / factor) * w;
            let grow = gb + oi * ow;
            for oj in 0..ow {
                gx[xrow + oj / factor] += g[grow + oj];
            }
        }
    }
    Tensor::from_vec(gx, &[n, c, h, w])
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    let d = t.dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn out_extent_formula() {
        let s = Conv2dSpec::new(1, 1).unwrap();
        assert_eq!(s.out_extent(8, 3).unwrap(), 8);
        let s2 = Conv2dSpec::new(2, 1).unwrap();
        assert_eq!(s2.out_extent(8, 3).unwrap(), 4);
        assert!(Conv2dSpec::new(0, 0).is_err());
    }

    #[test]
    fn conv2d_identity_kernel_preserves_input() {
        // A 1x1 kernel with weight 1 is the identity map.
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[2, 3, 5, 5], &mut rng);
        let mut w = Tensor::zeros(&[3, 3, 1, 1]);
        for c in 0..3 {
            w.set(&[c, c, 0, 0], 1.0).unwrap();
        }
        let y = conv2d(&x, &w, None, Conv2dSpec::new(1, 0).unwrap()).unwrap();
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn conv2d_matches_hand_computed_3x3() {
        // Single-channel 3x3 input, 2x2 kernel, stride 1, no padding.
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        )
        .unwrap();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[1, 1, 2, 2]).unwrap();
        let y = conv2d(&x, &w, None, Conv2dSpec::new(1, 0).unwrap()).unwrap();
        // Each output = x[i,j] + x[i+1,j+1].
        assert_eq!(y.data(), &[6.0, 8.0, 12.0, 14.0]);
    }

    #[test]
    fn conv2d_bias_adds_per_channel() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let y = conv2d(&x, &w, Some(&b), Conv2dSpec::new(1, 0).unwrap()).unwrap();
        assert_eq!(y.narrow(1, 0, 1).unwrap().data(), &[11.0; 4]);
        assert_eq!(y.narrow(1, 1, 1).unwrap().data(), &[21.0; 4]);
    }

    #[test]
    fn conv2d_padding_grows_output() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(1, 1).unwrap()).unwrap();
        assert_eq!(y.dims(), &[1, 1, 3, 3]);
        // Centre sees all 9 ones; corners see 4.
        assert_eq!(y.at(&[0, 0, 1, 1]).unwrap(), 9.0);
        assert_eq!(y.at(&[0, 0, 0, 0]).unwrap(), 4.0);
    }

    /// The blocked GEMM path must agree with the seed's direct loops on
    /// every geometry variation (odd extents, stride, padding).
    #[test]
    fn conv2d_matches_reference_kernels() {
        let mut rng = Rng::new(40);
        for &(n, c_in, c_out, h, w, kh, kw, stride, pad) in &[
            (1usize, 1usize, 1usize, 5usize, 5usize, 3usize, 3usize, 1usize, 0usize),
            (2, 3, 4, 7, 9, 3, 3, 1, 1),
            (3, 2, 5, 8, 6, 3, 2, 2, 1),
            (1, 4, 3, 11, 7, 5, 3, 3, 2),
        ] {
            let spec = Conv2dSpec::new(stride, pad).unwrap();
            let x = Tensor::randn(&[n, c_in, h, w], &mut rng);
            let wt = Tensor::randn(&[c_out, c_in, kh, kw], &mut rng);
            let b = Tensor::randn(&[c_out], &mut rng);
            let y = conv2d(&x, &wt, Some(&b), spec).unwrap();
            let y_ref = reference::conv2d(&x, &wt, Some(&b), spec).unwrap();
            assert!(
                y.allclose(&y_ref, 1e-4),
                "forward mismatch at ({n},{c_in},{c_out},{h},{w},{kh},{kw},s{stride},p{pad})"
            );
            let g = Tensor::randn(y.dims(), &mut rng);
            let gx = conv2d_grad_input(&g, &wt, x.dims(), spec).unwrap();
            let gx_ref = reference::conv2d_grad_input(&g, &wt, x.dims(), spec).unwrap();
            assert!(gx.allclose(&gx_ref, 1e-4), "grad_input mismatch");
            let gw = conv2d_grad_weight(&g, &x, wt.dims(), spec).unwrap();
            let gw_ref = reference::conv2d_grad_weight(&g, &x, wt.dims(), spec).unwrap();
            assert!(gw.allclose(&gw_ref, 1e-3), "grad_weight mismatch");
        }
    }

    /// Regression for the seed's `wv == 0.0` skip: a zero weight times a
    /// NaN input must produce NaN, not silently drop the term.
    #[test]
    fn conv2d_propagates_nan_through_zero_weight() {
        let mut x = Tensor::zeros(&[1, 1, 3, 3]);
        x.set(&[0, 0, 1, 1], f32::NAN).unwrap();
        let w = Tensor::zeros(&[1, 1, 3, 3]);
        let spec = Conv2dSpec::new(1, 1).unwrap();
        let y = conv2d(&x, &w, None, spec).unwrap();
        assert!(y.at(&[0, 0, 1, 1]).unwrap().is_nan(), "blocked path");
        let y_ref = reference::conv2d(&x, &w, None, spec).unwrap();
        assert!(y_ref.at(&[0, 0, 1, 1]).unwrap().is_nan(), "reference path");
        let gi = conv2d_grad_input(&y_ref.map(|_| f32::NAN), &w, x.dims(), spec).unwrap();
        assert!(gi.data().iter().any(|v| v.is_nan()), "grad_input path");
    }

    /// Numerically checks `conv2d_grad_input` and `conv2d_grad_weight`
    /// against central finite differences of the forward kernel.
    #[test]
    fn conv2d_gradients_match_finite_differences() {
        let mut rng = Rng::new(3);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let w = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let spec = Conv2dSpec::new(2, 1).unwrap();
        let y = conv2d(&x, &w, None, spec).unwrap();
        // Loss = sum(y * c) for a fixed random c, so dL/dy = c.
        let c = Tensor::randn(y.dims(), &mut rng);
        let gx = conv2d_grad_input(&c, &w, x.dims(), spec).unwrap();
        let gw = conv2d_grad_weight(&c, &x, w.dims(), spec).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor| {
            conv2d(x, w, None, spec).unwrap().dot(&c).unwrap()
        };
        for probe in [0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - gx.data()[probe]).abs() < 1e-2,
                "input grad {probe}: analytic {} vs numeric {num}",
                gx.data()[probe]
            );
            let mut wp = w.clone();
            wp.data_mut()[probe] += eps;
            let mut wm = w.clone();
            wm.data_mut()[probe] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - gw.data()[probe]).abs() < 1e-2,
                "weight grad {probe}: analytic {} vs numeric {num}",
                gw.data()[probe]
            );
        }
    }

    #[test]
    fn depthwise_matches_grouped_full_conv() {
        // A depthwise conv equals a full conv whose weight is block-diagonal
        // across channels.
        let mut rng = Rng::new(21);
        let x = Tensor::randn(&[2, 3, 5, 5], &mut rng);
        let wd = Tensor::randn(&[3, 1, 3, 3], &mut rng);
        let spec = Conv2dSpec::new(1, 1).unwrap();
        let y = depthwise_conv2d(&x, &wd, None, spec).unwrap();
        let mut wf = Tensor::zeros(&[3, 3, 3, 3]);
        for c in 0..3 {
            for ki in 0..3 {
                for kj in 0..3 {
                    let v = wd.at(&[c, 0, ki, kj]).unwrap();
                    wf.set(&[c, c, ki, kj], v).unwrap();
                }
            }
        }
        let y_full = conv2d(&x, &wf, None, spec).unwrap();
        assert!(y.allclose(&y_full, 1e-4));
    }

    #[test]
    fn depthwise_gradients_match_finite_differences() {
        let mut rng = Rng::new(22);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let w = Tensor::randn(&[2, 1, 3, 3], &mut rng);
        let spec = Conv2dSpec::new(2, 1).unwrap();
        let y = depthwise_conv2d(&x, &w, None, spec).unwrap();
        let c = Tensor::randn(y.dims(), &mut rng);
        let gx = depthwise_grad_input(&c, &w, x.dims(), spec).unwrap();
        let gw = depthwise_grad_weight(&c, &x, w.dims(), spec).unwrap();
        let eps = 1e-2f32;
        let loss =
            |x: &Tensor, w: &Tensor| depthwise_conv2d(x, w, None, spec).unwrap().dot(&c).unwrap();
        for probe in [0usize, 7, 15] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - gx.data()[probe]).abs() < 1e-2);
            let mut wp = w.clone();
            wp.data_mut()[probe] += eps;
            let mut wm = w.clone();
            wm.data_mut()[probe] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - gw.data()[probe]).abs() < 1e-2);
        }
    }

    #[test]
    fn depthwise_rejects_multi_channel_filters() {
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let w = Tensor::zeros(&[2, 2, 3, 3]);
        assert!(depthwise_conv2d(&x, &w, None, Conv2dSpec::new(1, 1).unwrap()).is_err());
    }

    #[test]
    fn avg_pool_and_grad_round_trip() {
        let x = Tensor::arange(16).reshape(&[1, 1, 4, 4]).unwrap();
        let y = avg_pool2d(&x, 2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
        let g = Tensor::ones(&[1, 1, 2, 2]);
        let gx = avg_pool2d_grad(&g, 2, x.dims()).unwrap();
        assert_eq!(gx.data(), &[0.25; 16]);
    }

    #[test]
    fn avg_pool_rejects_indivisible() {
        let x = Tensor::zeros(&[1, 1, 5, 4]);
        assert!(avg_pool2d(&x, 2).is_err());
    }

    #[test]
    fn global_avg_pool_and_grad() {
        let x = Tensor::arange(8).reshape(&[1, 2, 2, 2]).unwrap();
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let g = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap();
        let gx = global_avg_pool_grad(&g, x.dims()).unwrap();
        assert_eq!(gx.data()[..4], [1.0; 4]);
        assert_eq!(gx.data()[4..], [2.0; 4]);
    }

    #[test]
    fn upsample_and_grad_are_adjoint() {
        // <up(x), g> == <x, up_grad(g)> for all x, g (adjointness).
        let mut rng = Rng::new(9);
        let x = Tensor::randn(&[1, 2, 3, 3], &mut rng);
        let up = upsample_nearest(&x, 2).unwrap();
        assert_eq!(up.dims(), &[1, 2, 6, 6]);
        let g = Tensor::randn(up.dims(), &mut rng);
        let lhs = up.dot(&g).unwrap();
        let rhs = x.dot(&upsample_nearest_grad(&g, 2).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn upsample_replicates_pixels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = upsample_nearest(&x, 2).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(y.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(y.at(&[0, 0, 2, 3]).unwrap(), 4.0);
    }
}
