//! Dense linear algebra: QR, SVD, least squares, and scalar line fits.
//!
//! These routines back two parts of the reproduction:
//!
//! - **PWCCA** (`egeria-analysis`) needs a thin SVD and whitening transforms,
//! - **Algorithm 1's freezing criterion** needs a windowed linear
//!   least-squares slope fit ([`linear_fit`]).
//!
//! Matrices in the stack are modest (≤ a few hundred columns), so a
//! Householder QR and a one-sided Jacobi SVD are accurate and fast enough.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Thin Householder QR of an `m×n` matrix with `m ≥ n`.
///
/// Returns `(Q, R)` with `Q` of shape `m×n` having orthonormal columns and
/// `R` upper triangular `n×n`, such that `A = Q·R`.
// The reflector loops index `v` alongside strided slices of R and Q; the
// shared running index is the clearest way to express that correspondence.
#[allow(clippy::needless_range_loop)]
pub fn qr(a: &Tensor) -> Result<(Tensor, Tensor)> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op: "qr",
            lhs: a.dims().to_vec(),
            rhs: vec![],
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if m < n {
        return Err(TensorError::Numerical(format!(
            "qr requires m >= n, got {m}x{n}"
        )));
    }
    // Work on a column-major copy of A augmented with an m×m identity we
    // reduce to Q implicitly via stored reflectors applied to I.
    let mut r = a.clone();
    let mut q = Tensor::eye(m);
    for k in 0..n {
        // Build the Householder reflector for column k below the diagonal.
        let mut norm = 0.0f32;
        for i in k..m {
            let v = r.data()[i * n + k];
            norm += v * v;
        }
        let norm = norm.sqrt();
        if norm < 1e-12 {
            continue;
        }
        let alpha = if r.data()[k * n + k] > 0.0 { -norm } else { norm };
        let mut v = vec![0.0f32; m];
        for i in k..m {
            v[i] = r.data()[i * n + k];
        }
        v[k] -= alpha;
        let vnorm2: f32 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-24 {
            continue;
        }
        let beta = 2.0 / vnorm2;
        // R <- (I - beta v vᵀ) R.
        for j in k..n {
            let mut dot = 0.0f32;
            for i in k..m {
                dot += v[i] * r.data()[i * n + j];
            }
            let s = beta * dot;
            for i in k..m {
                r.data_mut()[i * n + j] -= s * v[i];
            }
        }
        // Q <- Q (I - beta v vᵀ) (accumulate on the right).
        for i in 0..m {
            let mut dot = 0.0f32;
            for l in k..m {
                dot += q.data()[i * m + l] * v[l];
            }
            let s = beta * dot;
            for l in k..m {
                q.data_mut()[i * m + l] -= s * v[l];
            }
        }
    }
    // Thin Q: first n columns; thin R: top n rows.
    let q_thin = q.narrow(1, 0, n)?;
    let r_thin = r.narrow(0, 0, n.min(m))?;
    Ok((q_thin, r_thin))
}

/// Singular value decomposition via one-sided Jacobi rotations.
///
/// Returns `(U, S, V)` with `A = U · diag(S) · Vᵀ`, `U` of shape `m×n`
/// (thin), `S` a length-`n` vector sorted descending, and `V` of shape
/// `n×n`. Requires `m ≥ n`; transpose the input (and swap U/V) otherwise.
pub fn svd(a: &Tensor) -> Result<(Tensor, Vec<f32>, Tensor)> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op: "svd",
            lhs: a.dims().to_vec(),
            rhs: vec![],
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if m < n {
        let (u, s, v) = svd(&a.transpose2d()?)?;
        return Ok((v, s, u));
    }
    let mut u = a.clone(); // Columns get orthogonalized in place.
    let mut v = Tensor::eye(n);
    let max_sweeps = 60;
    let tol = 1e-10f64;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for columns p, q.
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let up = u.data()[i * n + p] as f64;
                    let uq = u.data()[i * n + q] as f64;
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                off += apq * apq;
                if apq.abs() < 1e-30 {
                    continue;
                }
                // Jacobi rotation angle that annihilates the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u.data()[i * n + p] as f64;
                    let uq = u.data()[i * n + q] as f64;
                    u.data_mut()[i * n + p] = (c * up - s * uq) as f32;
                    u.data_mut()[i * n + q] = (s * up + c * uq) as f32;
                }
                for i in 0..n {
                    let vp = v.data()[i * n + p] as f64;
                    let vq = v.data()[i * n + q] as f64;
                    v.data_mut()[i * n + p] = (c * vp - s * vq) as f32;
                    v.data_mut()[i * n + q] = (s * vp + c * vq) as f32;
                }
            }
        }
        if off < tol {
            break;
        }
    }
    // Singular values are the column norms of the rotated U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma = vec![0.0f32; n];
    for (j, s) in sigma.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for i in 0..m {
            let x = u.data()[i * n + j] as f64;
            acc += x * x;
        }
        *s = acc.sqrt() as f32;
    }
    order.sort_by(|&a, &b| sigma[b].partial_cmp(&sigma[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut u_sorted = Tensor::zeros(&[m, n]);
    let mut v_sorted = Tensor::zeros(&[n, n]);
    let mut s_sorted = vec![0.0f32; n];
    for (new_j, &old_j) in order.iter().enumerate() {
        let s = sigma[old_j];
        s_sorted[new_j] = s;
        let inv = if s > 1e-12 { 1.0 / s } else { 0.0 };
        for i in 0..m {
            u_sorted.data_mut()[i * n + new_j] = u.data()[i * n + old_j] * inv;
        }
        for i in 0..n {
            v_sorted.data_mut()[i * n + new_j] = v.data()[i * n + old_j];
        }
    }
    Ok((u_sorted, s_sorted, v_sorted))
}

/// Solves the linear least-squares problem `min ‖A·x − b‖` via QR.
///
/// `a` is `m×n` (`m ≥ n`, full column rank assumed), `b` is `m×k`; returns
/// the `n×k` solution.
pub fn lstsq(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || a.dims()[0] != b.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            op: "lstsq",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (q, r) = qr(a)?;
    let qtb = q.transpose2d()?.matmul(b)?;
    solve_upper_triangular(&r, &qtb)
}

/// Back-substitution for an upper-triangular system `R·x = b`.
pub fn solve_upper_triangular(r: &Tensor, b: &Tensor) -> Result<Tensor> {
    if r.rank() != 2 || r.dims()[0] != r.dims()[1] || b.dims()[0] != r.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            op: "solve_upper_triangular",
            lhs: r.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let n = r.dims()[0];
    let k = b.dims()[1];
    let mut x = b.clone();
    for col in 0..k {
        for i in (0..n).rev() {
            let mut acc = x.data()[i * k + col];
            for j in (i + 1)..n {
                acc -= r.data()[i * n + j] * x.data()[j * k + col];
            }
            let diag = r.data()[i * n + i];
            if diag.abs() < 1e-12 {
                return Err(TensorError::Numerical(format!(
                    "singular triangular system at row {i}"
                )));
            }
            x.data_mut()[i * k + col] = acc / diag;
        }
    }
    Ok(x)
}

/// Ordinary least-squares line fit `y ≈ slope·x + intercept`.
///
/// This is the exact closed form used by the paper's Algorithm 1 to decide
/// whether a plasticity window has flattened out. Returns an error for fewer
/// than two points or a degenerate (constant) x.
pub fn linear_fit(xs: &[f32], ys: &[f32]) -> Result<(f32, f32)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return Err(TensorError::Numerical(format!(
            "linear_fit needs >= 2 paired points, got {} and {}",
            xs.len(),
            ys.len()
        )));
    }
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().map(|&x| x as f64).sum();
    let sy: f64 = ys.iter().map(|&y| y as f64).sum();
    let sxx: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    let sxy: f64 = xs.iter().zip(ys.iter()).map(|(&x, &y)| x as f64 * y as f64).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return Err(TensorError::Numerical("degenerate x values in linear_fit".into()));
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Ok((slope as f32, intercept as f32))
}

/// Centers the columns of an `n×d` matrix (subtracts each column mean).
pub fn center_columns(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op: "center_columns",
            lhs: a.dims().to_vec(),
            rhs: vec![],
        });
    }
    let (n, d) = (a.dims()[0], a.dims()[1]);
    let mut out = a.clone();
    for j in 0..d {
        let mut mean = 0.0f64;
        for i in 0..n {
            mean += a.data()[i * d + j] as f64;
        }
        let mean = (mean / n.max(1) as f64) as f32;
        for i in 0..n {
            out.data_mut()[i * d + j] -= mean;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let (q, r) = qr(&a).unwrap();
        assert_eq!(q.dims(), &[6, 4]);
        assert_eq!(r.dims(), &[4, 4]);
        let recon = q.matmul(&r).unwrap();
        assert!(recon.allclose(&a, 1e-4), "QR reconstruction failed");
        let qtq = q.transpose2d().unwrap().matmul(&q).unwrap();
        assert!(qtq.allclose(&Tensor::eye(4), 1e-4), "Q not orthonormal");
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[5, 3], &mut rng);
        let (_, r) = qr(&a).unwrap();
        for i in 0..3 {
            for j in 0..i {
                assert!(r.at(&[i, j]).unwrap().abs() < 1e-5);
            }
        }
    }

    #[test]
    fn svd_reconstructs_random_matrix() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[8, 5], &mut rng);
        let (u, s, v) = svd(&a).unwrap();
        // Rebuild A = U diag(S) Vᵀ.
        let mut us = u.clone();
        for i in 0..8 {
            for (j, sv) in s.iter().enumerate() {
                us.data_mut()[i * 5 + j] *= sv;
            }
        }
        let recon = us.matmul(&v.transpose2d().unwrap()).unwrap();
        assert!(recon.allclose(&a, 1e-3), "SVD reconstruction failed");
    }

    #[test]
    fn svd_singular_values_sorted_and_nonnegative() {
        let mut rng = Rng::new(4);
        let a = Tensor::randn(&[7, 4], &mut rng);
        let (_, s, _) = svd(&a).unwrap();
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn svd_of_identity_has_unit_singular_values() {
        let (_, s, _) = svd(&Tensor::eye(4)).unwrap();
        for x in s {
            assert!((x - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn svd_handles_wide_matrix_via_transpose() {
        let mut rng = Rng::new(5);
        let a = Tensor::randn(&[3, 6], &mut rng);
        let (u, s, v) = svd(&a).unwrap();
        assert_eq!(u.dims()[0], 3);
        assert_eq!(v.dims()[0], 6);
        let mut us = u.clone();
        let k = s.len();
        for i in 0..u.dims()[0] {
            for (j, sv) in s.iter().enumerate() {
                us.data_mut()[i * k + j] *= sv;
            }
        }
        let recon = us.matmul(&v.transpose2d().unwrap()).unwrap();
        assert!(recon.allclose(&a, 1e-3));
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        // Overdetermined consistent system: A x = b exactly.
        let mut rng = Rng::new(6);
        let a = Tensor::randn(&[10, 3], &mut rng);
        let x_true = Tensor::randn(&[3, 2], &mut rng);
        let b = a.matmul(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!(x.allclose(&x_true, 1e-3));
    }

    #[test]
    fn solve_upper_triangular_rejects_singular() {
        let r = Tensor::from_vec(vec![1.0, 2.0, 0.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::ones(&[2, 1]);
        assert!(solve_upper_triangular(&r, &b).is_err());
    }

    #[test]
    fn linear_fit_is_exact_on_affine_data() {
        let xs: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| 3.0 * x - 2.0).collect();
        let (slope, intercept) = linear_fit(&xs, &ys).unwrap();
        assert!((slope - 3.0).abs() < 1e-4);
        assert!((intercept + 2.0).abs() < 1e-3);
    }

    #[test]
    fn linear_fit_zero_slope_on_constant_series() {
        let xs: Vec<f32> = (0..5).map(|i| i as f32).collect();
        let ys = vec![4.2; 5];
        let (slope, _) = linear_fit(&xs, &ys).unwrap();
        assert!(slope.abs() < 1e-6);
    }

    #[test]
    fn linear_fit_rejects_degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_err());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_err());
    }

    #[test]
    fn center_columns_zeroes_column_means() {
        let mut rng = Rng::new(7);
        let a = Tensor::randn(&[20, 4], &mut rng).add_scalar(3.0);
        let c = center_columns(&a).unwrap();
        let means = c.mean_axis(0).unwrap();
        for &m in means.data() {
            assert!(m.abs() < 1e-4);
        }
    }
}
