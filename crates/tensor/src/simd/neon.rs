//! NEON registers (two 128-bit quads per logical 8-lane register) and the
//! aarch64 kernel entry points.
//!
//! Mirrors `x86.rs`: every lane op is a single correctly-rounded (f32) or
//! exact (i32) instruction, never fused — `vmulq`/`vaddq`, deliberately not
//! `vfmaq` — so the NEON kernels are bit-identical to [`ScalarF32x8`] on
//! the linear paths (DESIGN §5g). NEON is baseline on aarch64, so the
//! intrinsics are unconditionally executable there; the `unsafe` blocks
//! discharge only the intrinsic-call obligation.

use super::kernels::{self, MR, NR};
use super::vec::{F32x8, I32x8, LANES};
use std::arch::aarch64::*;

/// One logical 8-lane f32 register: a pair of NEON quads.
#[derive(Clone, Copy)]
pub struct NeonF32x8(float32x4_t, float32x4_t);

/// One logical 8-lane i32 register: a pair of NEON quads.
#[derive(Clone, Copy)]
pub struct NeonI32x8(int32x4_t, int32x4_t);

impl F32x8 for NeonF32x8 {
    type Int = NeonI32x8;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonF32x8(vdupq_n_f32(v), vdupq_n_f32(v)) }
    }

    #[inline(always)]
    fn load(src: &[f32; LANES]) -> Self {
        // SAFETY: the 8-element array reference is valid for two quad reads.
        unsafe { NeonF32x8(vld1q_f32(src.as_ptr()), vld1q_f32(src.as_ptr().add(4))) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32; LANES]) {
        // SAFETY: the 8-element array reference is valid for two quad writes.
        unsafe {
            vst1q_f32(dst.as_mut_ptr(), self.0);
            vst1q_f32(dst.as_mut_ptr().add(4), self.1);
        }
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonF32x8(vaddq_f32(self.0, o.0), vaddq_f32(self.1, o.1)) }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonF32x8(vsubq_f32(self.0, o.0), vsubq_f32(self.1, o.1)) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonF32x8(vmulq_f32(self.0, o.0), vmulq_f32(self.1, o.1)) }
    }

    #[inline(always)]
    fn div(self, o: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonF32x8(vdivq_f32(self.0, o.0), vdivq_f32(self.1, o.1)) }
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonF32x8(vsqrtq_f32(self.0), vsqrtq_f32(self.1)) }
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64. vbslq on the > mask gives
        // maxps semantics: the second operand wins when either is NaN.
        unsafe {
            NeonF32x8(
                vbslq_f32(vcgtq_f32(self.0, o.0), self.0, o.0),
                vbslq_f32(vcgtq_f32(self.1, o.1), self.1, o.1),
            )
        }
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64. minps semantics as in max.
        unsafe {
            NeonF32x8(
                vbslq_f32(vcltq_f32(self.0, o.0), self.0, o.0),
                vbslq_f32(vcltq_f32(self.1, o.1), self.1, o.1),
            )
        }
    }

    #[inline(always)]
    fn to_i32_nearest(self) -> NeonI32x8 {
        // SAFETY: NEON is baseline on aarch64; vcvtnq rounds to nearest
        // even, matching `round_ties_even`.
        unsafe { NeonI32x8(vcvtnq_s32_f32(self.0), vcvtnq_s32_f32(self.1)) }
    }

    #[inline(always)]
    fn with_nan_from(self, src: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64. vceqq is false exactly on
        // NaN lanes of src; vbslq keeps self on equal lanes, src elsewhere.
        unsafe {
            NeonF32x8(
                vbslq_f32(vceqq_f32(src.0, src.0), self.0, src.0),
                vbslq_f32(vceqq_f32(src.1, src.1), self.1, src.1),
            )
        }
    }

    #[inline(always)]
    fn hmax(self) -> f32 {
        let mut buf = [0.0f32; LANES];
        self.store(&mut buf);
        let mut m = buf[0];
        for &v in &buf[1..] {
            m = if m > v { m } else { v };
        }
        m
    }

    #[inline(always)]
    fn hsum(self) -> f32 {
        // Same pairwise tree as ScalarF32x8::hsum.
        let mut l = [0.0f32; LANES];
        self.store(&mut l);
        let a = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
        (a[0] + a[2]) + (a[1] + a[3])
    }
}

impl I32x8 for NeonI32x8 {
    type Float = NeonF32x8;

    #[inline(always)]
    fn splat(v: i32) -> Self {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonI32x8(vdupq_n_s32(v), vdupq_n_s32(v)) }
    }

    #[inline(always)]
    fn load(src: &[i32; LANES]) -> Self {
        // SAFETY: the 8-element array reference is valid for two quad reads.
        unsafe { NeonI32x8(vld1q_s32(src.as_ptr()), vld1q_s32(src.as_ptr().add(4))) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32; LANES]) {
        // SAFETY: the 8-element array reference is valid for two quad writes.
        unsafe {
            vst1q_s32(dst.as_mut_ptr(), self.0);
            vst1q_s32(dst.as_mut_ptr().add(4), self.1);
        }
    }

    #[inline(always)]
    fn widen_i8(src: &[i8; LANES]) -> Self {
        // SAFETY: the 8-element array reference is valid for one 64-bit
        // read; vmovl sign-extends i8→i16→i32 lanewise.
        unsafe {
            let bytes = vld1_s8(src.as_ptr());
            let wide = vmovl_s8(bytes);
            NeonI32x8(
                vmovl_s16(vget_low_s16(wide)),
                vmovl_s16(vget_high_s16(wide)),
            )
        }
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonI32x8(vaddq_s32(self.0, o.0), vaddq_s32(self.1, o.1)) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        // SAFETY: NEON is baseline on aarch64; vmulq_s32 keeps the low 32
        // bits, matching scalar wrapping_mul.
        unsafe { NeonI32x8(vmulq_s32(self.0, o.0), vmulq_s32(self.1, o.1)) }
    }

    #[inline(always)]
    fn to_f32(self) -> NeonF32x8 {
        // SAFETY: NEON is baseline on aarch64 (module safety model).
        unsafe { NeonF32x8(vcvtq_f32_s32(self.0), vcvtq_f32_s32(self.1)) }
    }

    #[inline(always)]
    fn exp2_bits(self) -> NeonF32x8 {
        // SAFETY: NEON is baseline on aarch64. (n + 127) << 23 constructs
        // the f32 exponent field; vreinterpretq is a bit reinterpretation.
        unsafe {
            let bias = vdupq_n_s32(127);
            NeonF32x8(
                vreinterpretq_f32_s32(vshlq_n_s32::<23>(vaddq_s32(self.0, bias))),
                vreinterpretq_f32_s32(vshlq_n_s32::<23>(vaddq_s32(self.1, bias))),
            )
        }
    }
}

// ---------------------------------------------------------------------
// Kernel entry points (NEON is baseline on aarch64, so these are safe)
// ---------------------------------------------------------------------

/// GEMM microkernel on NEON registers.
pub fn microkernel(kc: usize, a_strip: &[f32], b_panel: &[f32], acc: &mut [f32; MR * NR]) {
    kernels::microkernel::<NeonF32x8>(kc, a_strip, b_panel, acc)
}

/// Int8 GEMM output row on NEON registers.
pub fn qmatmul_row(arow: &[i8], b: &[i8], n: usize, out: &mut [i32]) {
    kernels::qmatmul_row::<NeonF32x8>(arow, b, n, out)
}

/// `dst += alpha * src` on NEON registers.
pub fn axpy(dst: &mut [f32], src: &[f32], alpha: f32) {
    kernels::axpy::<NeonF32x8>(dst, src, alpha)
}

/// Fused momentum update on NEON registers.
pub fn decay_axpy(dst: &mut [f32], src: &[f32], decay: f32, alpha: f32) {
    kernels::decay_axpy::<NeonF32x8>(dst, src, decay, alpha)
}

/// Fused second-moment update on NEON registers.
pub fn ema_sq(dst: &mut [f32], src: &[f32], decay: f32, w: f32) {
    kernels::ema_sq::<NeonF32x8>(dst, src, decay, w)
}

/// Adam parameter update on NEON registers.
pub fn adam_update(p: &mut [f32], m: &[f32], v: &[f32], lr: f32, eps: f32, bc1: f32, bc2: f32) {
    kernels::adam_update::<NeonF32x8>(p, m, v, lr, eps, bc1, bc2)
}

/// Polynomial exp over a slice on NEON registers.
pub fn exp_inplace(xs: &mut [f32]) {
    kernels::exp_inplace::<NeonF32x8>(xs)
}

/// Polynomial tanh over a slice on NEON registers.
pub fn tanh_inplace(xs: &mut [f32]) {
    kernels::tanh_inplace::<NeonF32x8>(xs)
}

/// In-place softmax of one row on NEON registers.
pub fn softmax_row(row: &mut [f32]) {
    kernels::softmax_row::<NeonF32x8>(row)
}
