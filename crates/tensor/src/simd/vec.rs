//! Portable 8-lane vector traits and the scalar reference implementation.
//!
//! [`F32x8`] / [`I32x8`] abstract one 8-wide register of the target ISA.
//! Every method maps to a single correctly-rounded IEEE-754 lane operation
//! (add/sub/mul/div/sqrt/min/max) or an exact integer operation, so a
//! generic kernel instantiated at two ISAs produces bit-identical lanes as
//! long as it only uses these ops in the same per-element order. That is
//! the mechanism behind the scalar↔AVX2↔NEON bit-identity contract for the
//! GEMM microkernel, the int8 dot product and the fused optimizer kernels
//! (DESIGN §5g). Deliberately absent: a fused multiply-add. FMA rounds
//! once where `mul`+`add` round twice, which would break that contract.
//!
//! Lane loads/stores take `&[T; 8]` array references (produced with
//! `slice::as_chunks`), so the trait surface is entirely safe; `unsafe` is
//! confined to the intrinsic calls inside the per-ISA impls.

/// Lanes per vector register (256-bit f32/i32).
pub const LANES: usize = 8;

/// One 8-lane f32 register.
///
/// All arithmetic lane ops are IEEE-754 correctly rounded; horizontal
/// reductions ([`hsum`](F32x8::hsum)/[`hmax`](F32x8::hmax)) have an
/// ISA-specific association and must only be used where the surrounding
/// kernel is documented as toleranced (softmax row reductions).
pub trait F32x8: Copy {
    /// The i32 register type of the same ISA.
    type Int: I32x8<Float = Self>;

    /// Broadcasts one value into all lanes.
    fn splat(v: f32) -> Self;
    /// Loads 8 contiguous lanes.
    fn load(src: &[f32; LANES]) -> Self;
    /// Stores 8 contiguous lanes.
    fn store(self, dst: &mut [f32; LANES]);
    /// Lanewise `self + o` (one rounding).
    fn add(self, o: Self) -> Self;
    /// Lanewise `self - o`.
    fn sub(self, o: Self) -> Self;
    /// Lanewise `self * o` (unfused; see module docs).
    fn mul(self, o: Self) -> Self;
    /// Lanewise `self / o` (correctly rounded).
    fn div(self, o: Self) -> Self;
    /// Lanewise square root (correctly rounded).
    fn sqrt(self) -> Self;
    /// Lanewise maximum with x86 `maxps` NaN semantics: if either operand
    /// is NaN the **second** (`o`) operand is returned.
    fn max(self, o: Self) -> Self;
    /// Lanewise minimum, `minps` NaN semantics (as [`max`](F32x8::max)).
    fn min(self, o: Self) -> Self;
    /// Lanewise round-to-nearest-even, then convert to i32. Inputs must be
    /// within i32 range (the transcendental kernels clamp first).
    fn to_i32_nearest(self) -> Self::Int;
    /// Lanes where `src` is NaN become NaN; others keep `self`. Used to
    /// restore NaN propagation after range clamps in the polynomial
    /// transcendentals.
    fn with_nan_from(self, src: Self) -> Self;
    /// Horizontal max of all lanes (association ISA-specific).
    fn hmax(self) -> f32;
    /// Horizontal sum of all lanes (association ISA-specific).
    fn hsum(self) -> f32;
}

/// One 8-lane i32 register. All ops are exact (wrapping on overflow, like
/// the scalar `i32` ops in release builds).
pub trait I32x8: Copy {
    /// The f32 register type of the same ISA.
    type Float: F32x8<Int = Self>;

    /// Broadcasts one value into all lanes.
    fn splat(v: i32) -> Self;
    /// Loads 8 contiguous lanes.
    fn load(src: &[i32; LANES]) -> Self;
    /// Stores 8 contiguous lanes.
    fn store(self, dst: &mut [i32; LANES]);
    /// Loads 8 `i8` values and sign-extends each to i32 (the int8 GEMM
    /// operand widening).
    fn widen_i8(src: &[i8; LANES]) -> Self;
    /// Lanewise wrapping add.
    fn add(self, o: Self) -> Self;
    /// Lanewise wrapping multiply (low 32 bits).
    fn mul(self, o: Self) -> Self;
    /// Lanewise exact int→float conversion (used for small-magnitude
    /// exponents, where it is lossless).
    fn to_f32(self) -> Self::Float;
    /// Lanewise `2^self` built by exponent-field construction:
    /// `bitcast((self + 127) << 23)`. Lanes must be in `[-126, 127]`.
    fn exp2_bits(self) -> Self::Float;
}

/// Scalar fallback register: a plain `[f32; 8]` with per-lane scalar ops.
///
/// This is the cross-ISA reference implementation: each method performs the
/// same single IEEE operation per lane that the AVX2/NEON registers do, so
/// generic kernels instantiated with it are the bit-exact oracle for the
/// vector paths (and the tail path inside those kernels).
#[derive(Clone, Copy)]
pub struct ScalarF32x8(pub [f32; LANES]);

/// Scalar fallback i32 register.
#[derive(Clone, Copy)]
pub struct ScalarI32x8(pub [i32; LANES]);

impl F32x8 for ScalarF32x8 {
    type Int = ScalarI32x8;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        ScalarF32x8([v; LANES])
    }

    #[inline(always)]
    fn load(src: &[f32; LANES]) -> Self {
        ScalarF32x8(*src)
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32; LANES]) {
        *dst = self.0;
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a += b;
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a -= b;
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a *= b;
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn div(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a /= b;
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        let mut r = self.0;
        for a in r.iter_mut() {
            *a = a.sqrt();
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            // maxps semantics: second operand wins when either is NaN.
            *a = if *a > b { *a } else { b };
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a = if *a < b { *a } else { b };
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn to_i32_nearest(self) -> ScalarI32x8 {
        let mut r = [0i32; LANES];
        for (o, a) in r.iter_mut().zip(self.0) {
            *o = a.round_ties_even() as i32;
        }
        ScalarI32x8(r)
    }

    #[inline(always)]
    fn with_nan_from(self, src: Self) -> Self {
        let mut r = self.0;
        for (a, s) in r.iter_mut().zip(src.0) {
            if s.is_nan() {
                *a = s;
            }
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn hmax(self) -> f32 {
        let mut m = self.0[0];
        for &v in &self.0[1..] {
            m = if m > v { m } else { v };
        }
        m
    }

    #[inline(always)]
    fn hsum(self) -> f32 {
        // Same pairwise tree the AVX2 reduction uses:
        // ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
        let l = self.0;
        let a = [l[0] + l[4], l[1] + l[5], l[2] + l[6], l[3] + l[7]];
        (a[0] + a[2]) + (a[1] + a[3])
    }
}

impl I32x8 for ScalarI32x8 {
    type Float = ScalarF32x8;

    #[inline(always)]
    fn splat(v: i32) -> Self {
        ScalarI32x8([v; LANES])
    }

    #[inline(always)]
    fn load(src: &[i32; LANES]) -> Self {
        ScalarI32x8(*src)
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32; LANES]) {
        *dst = self.0;
    }

    #[inline(always)]
    fn widen_i8(src: &[i8; LANES]) -> Self {
        let mut r = [0i32; LANES];
        for (o, &b) in r.iter_mut().zip(src) {
            *o = b as i32;
        }
        ScalarI32x8(r)
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a = a.wrapping_add(b);
        }
        ScalarI32x8(r)
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a = a.wrapping_mul(b);
        }
        ScalarI32x8(r)
    }

    #[inline(always)]
    fn to_f32(self) -> ScalarF32x8 {
        let mut r = [0.0f32; LANES];
        for (o, a) in r.iter_mut().zip(self.0) {
            *o = a as f32;
        }
        ScalarF32x8(r)
    }

    #[inline(always)]
    fn exp2_bits(self) -> ScalarF32x8 {
        let mut r = [0.0f32; LANES];
        for (o, n) in r.iter_mut().zip(self.0) {
            *o = f32::from_bits((n.wrapping_add(127) as u32) << 23);
        }
        ScalarF32x8(r)
    }
}
