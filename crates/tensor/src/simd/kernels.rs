//! ISA-generic inner kernels over the [`F32x8`]/[`I32x8`] traits.
//!
//! Each kernel is `#[inline(always)]` and written against the trait surface
//! only, so the per-ISA entry points (`x86.rs`/`neon.rs`) monomorphize it
//! into straight-line vector code while [`ScalarF32x8`] instantiations stay
//! the bit-exact reference. Remainder elements (`len % 8`) run through the
//! scalar register type with the *same* lane math, which keeps tails
//! bit-identical to the vector body at every ISA.
//!
//! Accumulation-order contract: every kernel folds its k/element dimension
//! in the same order at every ISA and uses only single-rounding lane ops
//! (no FMA), so the f32 linear kernels (microkernel, axpy family, adam) and
//! the exact-integer int8 dot are bit-identical across Scalar/AVX2/NEON.
//! The polynomial transcendentals ([`exp_inplace`]/[`tanh_inplace`]/
//! [`softmax_row`]) share lane math across ISAs too, but their horizontal
//! reductions (softmax max/sum) have ISA-specific association — those are
//! the documented toleranced paths (DESIGN §5g).

use super::vec::{F32x8, I32x8, ScalarF32x8, LANES};

/// Microkernel tile rows (matches the packed-A strip interleave).
pub const MR: usize = 4;
/// Microkernel tile columns (two vector registers wide).
pub const NR: usize = 16;

/// Register-tiled GEMM inner kernel: `acc += a_strip · b_panel` over `kc`
/// rank-1 updates. `a_strip` is `kc × MR` interleaved, `b_panel` is
/// `kc × NR` interleaved; both are at least that long (packed by
/// `gemm::pack_a_block`/`pack_b_block`).
#[inline(always)]
pub fn microkernel<V: F32x8>(
    kc: usize,
    a_strip: &[f32],
    b_panel: &[f32],
    acc: &mut [f32; MR * NR],
) {
    let (a4, _) = a_strip.as_chunks::<MR>();
    let (b8, _) = b_panel.as_chunks::<LANES>();
    let (acc8, _) = acc.as_chunks_mut::<LANES>();
    let mut t = [[V::splat(0.0); 2]; MR];
    for (r, pair) in t.iter_mut().enumerate() {
        pair[0] = V::load(&acc8[2 * r]);
        pair[1] = V::load(&acc8[2 * r + 1]);
    }
    for (av, bp) in a4.iter().zip(b8.chunks_exact(2)).take(kc) {
        let b0 = V::load(&bp[0]);
        let b1 = V::load(&bp[1]);
        for (r, pair) in t.iter_mut().enumerate() {
            let ar = V::splat(av[r]);
            pair[0] = pair[0].add(ar.mul(b0));
            pair[1] = pair[1].add(ar.mul(b1));
        }
    }
    for (r, pair) in t.iter().enumerate() {
        pair[0].store(&mut acc8[2 * r]);
        pair[1].store(&mut acc8[2 * r + 1]);
    }
}

/// One output row of the int8 GEMM: `out[j] = Σ_p arow[p] · b[p·n + j]`
/// with exact (wrapping) i32 accumulation. `b` is `k × n` row-major with
/// `k = arow.len()`; `out.len() == n`. Integer adds are associative, so the
/// column-tiled vector order and the scalar remainder agree bit-for-bit.
#[inline(always)]
pub fn qmatmul_row<V: F32x8>(arow: &[i8], b: &[i8], n: usize, out: &mut [i32]) {
    // Four accumulator registers per column tile stay resident across the
    // whole k loop; B is streamed with sign-extending 8-lane loads.
    const TILE_VECS: usize = 4;
    const TILE: usize = TILE_VECS * LANES;
    let k = arow.len();
    let mut j = 0;
    while j + TILE <= n {
        let mut acc = [V::Int::splat(0); TILE_VECS];
        for (p, &a) in arow.iter().enumerate() {
            let av = V::Int::splat(a as i32);
            let (b8, _) = b[p * n + j..p * n + j + TILE].as_chunks::<LANES>();
            for (t, src) in acc.iter_mut().zip(b8) {
                *t = t.add(av.mul(V::Int::widen_i8(src)));
            }
        }
        let (o8, _) = out[j..j + TILE].as_chunks_mut::<LANES>();
        for (t, dst) in acc.iter().zip(o8) {
            t.store(dst);
        }
        j += TILE;
    }
    for (jj, o) in out.iter_mut().enumerate().skip(j).take(n - j) {
        let mut s = 0i32;
        for (p, &a) in arow.iter().enumerate().take(k) {
            s = s.wrapping_add((a as i32).wrapping_mul(b[p * n + jj] as i32));
        }
        *o = s;
    }
}

/// `dst += alpha * src` (SGD step).
#[inline(always)]
pub fn axpy<V: F32x8>(dst: &mut [f32], src: &[f32], alpha: f32) {
    let av = V::splat(alpha);
    let (d8, dt) = dst.as_chunks_mut::<LANES>();
    let (s8, st) = src.as_chunks::<LANES>();
    for (d, s) in d8.iter_mut().zip(s8) {
        V::load(d).add(av.mul(V::load(s))).store(d);
    }
    for (d, &s) in dt.iter_mut().zip(st) {
        *d += alpha * s;
    }
}

/// `dst = decay * dst + alpha * src` (fused momentum update).
#[inline(always)]
pub fn decay_axpy<V: F32x8>(dst: &mut [f32], src: &[f32], decay: f32, alpha: f32) {
    let dv = V::splat(decay);
    let av = V::splat(alpha);
    let (d8, dt) = dst.as_chunks_mut::<LANES>();
    let (s8, st) = src.as_chunks::<LANES>();
    for (d, s) in d8.iter_mut().zip(s8) {
        dv.mul(V::load(d)).add(av.mul(V::load(s))).store(d);
    }
    for (d, &s) in dt.iter_mut().zip(st) {
        *d = decay * *d + alpha * s;
    }
}

/// `dst = decay * dst + w * src²` (fused Adam second moment; `w` is the
/// caller's precomputed `1 - decay`).
#[inline(always)]
pub fn ema_sq<V: F32x8>(dst: &mut [f32], src: &[f32], decay: f32, w: f32) {
    let dv = V::splat(decay);
    let wv = V::splat(w);
    let (d8, dt) = dst.as_chunks_mut::<LANES>();
    let (s8, st) = src.as_chunks::<LANES>();
    for (d, s) in d8.iter_mut().zip(s8) {
        let g = V::load(s);
        dv.mul(V::load(d)).add(wv.mul(g).mul(g)).store(d);
    }
    for (d, &g) in dt.iter_mut().zip(st) {
        *d = decay * *d + w * g * g;
    }
}

/// Adam parameter update: `p -= lr * (m/bc1) / (sqrt(v/bc2) + eps)`.
/// Division and square root are correctly rounded at every ISA, so this is
/// bit-identical to the scalar expression.
#[inline(always)]
pub fn adam_update<V: F32x8>(
    p: &mut [f32],
    m: &[f32],
    v: &[f32],
    lr: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    let lrv = V::splat(lr);
    let epsv = V::splat(eps);
    let bc1v = V::splat(bc1);
    let bc2v = V::splat(bc2);
    let (p8, pt) = p.as_chunks_mut::<LANES>();
    let (m8, mt) = m.as_chunks::<LANES>();
    let (v8, vt) = v.as_chunks::<LANES>();
    for ((pp, mm), vv) in p8.iter_mut().zip(m8).zip(v8) {
        let m_hat = V::load(mm).div(bc1v);
        let v_hat = V::load(vv).div(bc2v);
        let upd = lrv.mul(m_hat).div(v_hat.sqrt().add(epsv));
        V::load(pp).sub(upd).store(pp);
    }
    for ((pp, &mm), &vv) in pt.iter_mut().zip(mt).zip(vt) {
        let m_hat = mm / bc1;
        let v_hat = vv / bc2;
        *pp -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

// Cephes-style single-precision exp reduction constants: ln2 split so the
// high part has zero low-order mantissa bits (exact n·C1 product for the
// clamped n range), plus a degree-5 minimax polynomial on the reduced
// argument. ~2 ulp over the clamped domain.
const EXP_HI: f32 = 87.336_55;
const EXP_LO: f32 = -87.336_55;
const LOG2E: f32 = std::f32::consts::LOG2_E;
// Full digits kept: 0.693359375 is exactly representable and the trailing
// zeros of its mantissa are the point of the hi/lo split.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
const EXP_P: [f32; 6] = [
    1.987_569_1e-4,
    1.398_199_9e-3,
    8.333_452e-3,
    4.166_579_6e-2,
    1.666_666_6e-1,
    0.5,
];

/// One register of the polynomial `exp`. Inputs are clamped to
/// `[EXP_LO, EXP_HI]` (beyond which the result saturates to the boundary
/// value); NaN lanes propagate. Identical lane math at every ISA.
#[inline(always)]
pub fn exp_v<V: F32x8>(x: V) -> V {
    let xc = x.max(V::splat(EXP_LO)).min(V::splat(EXP_HI));
    let n = xc.mul(V::splat(LOG2E)).to_i32_nearest();
    let nf = n.to_f32();
    let r = xc
        .sub(nf.mul(V::splat(LN2_HI)))
        .sub(nf.mul(V::splat(LN2_LO)));
    let mut p = V::splat(EXP_P[0]);
    for &c in &EXP_P[1..] {
        p = p.mul(r).add(V::splat(c));
    }
    let y = p.mul(r.mul(r)).add(r).add(V::splat(1.0));
    y.mul(n.exp2_bits()).with_nan_from(x)
}

// tanh saturates (in f32) beyond |x| = 9: tanh(9) = 1 − 4.5e-9 rounds to
// 1.0, and clamping keeps exp(2x) finite.
const TANH_SAT: f32 = 9.0;

/// One register of `tanh` via `(e^{2x} − 1) / (e^{2x} + 1)` on the clamped
/// argument; NaN lanes propagate, ±∞ saturate to ±1 like libm.
#[inline(always)]
pub fn tanh_v<V: F32x8>(x: V) -> V {
    let xc = x.max(V::splat(-TANH_SAT)).min(V::splat(TANH_SAT));
    let q = exp_v(xc.add(xc));
    let one = V::splat(1.0);
    q.sub(one).div(q.add(one)).with_nan_from(x)
}

/// Polynomial `exp` over a slice; the remainder runs the same lane math
/// through [`ScalarF32x8`], so results are bit-identical to the vector body.
#[inline(always)]
pub fn exp_inplace<V: F32x8>(xs: &mut [f32]) {
    let (x8, tail) = xs.as_chunks_mut::<LANES>();
    for c in x8.iter_mut() {
        exp_v(V::load(c)).store(c);
    }
    apply_tail(tail, exp_v::<ScalarF32x8>);
}

/// Polynomial `tanh` over a slice (remainder as in [`exp_inplace`]).
#[inline(always)]
pub fn tanh_inplace<V: F32x8>(xs: &mut [f32]) {
    let (x8, tail) = xs.as_chunks_mut::<LANES>();
    for c in x8.iter_mut() {
        tanh_v(V::load(c)).store(c);
    }
    apply_tail(tail, tanh_v::<ScalarF32x8>);
}

/// Runs a register-level function over a `< LANES` remainder by padding
/// into one scalar register. Lane math matches the vector body exactly.
#[inline(always)]
fn apply_tail(tail: &mut [f32], f: impl Fn(ScalarF32x8) -> ScalarF32x8) {
    if tail.is_empty() {
        return;
    }
    let mut pad = [0.0f32; LANES];
    pad[..tail.len()].copy_from_slice(tail);
    let mut out = [0.0f32; LANES];
    f(ScalarF32x8::load(&pad)).store(&mut out);
    tail.copy_from_slice(&out[..tail.len()]);
}

/// Numerically stable in-place softmax of one row: shift by the row max,
/// polynomial exp, normalize. The max/sum reductions use the ISA's
/// horizontal association, so this path is toleranced (not bit-pinned)
/// against the scalar reference.
#[inline(always)]
pub fn softmax_row<V: F32x8>(row: &mut [f32]) {
    let mut mv = V::splat(f32::NEG_INFINITY);
    {
        let (r8, tail) = row.as_chunks::<LANES>();
        for c in r8 {
            mv = mv.max(V::load(c));
        }
        let mut max = mv.hmax();
        for &x in tail {
            max = if max > x { max } else { x };
        }
        let maxv = V::splat(max);
        let (r8, tail) = row.as_chunks_mut::<LANES>();
        let mut sv = V::splat(0.0);
        for c in r8.iter_mut() {
            let y = exp_v(V::load(c).sub(maxv));
            sv = sv.add(y);
            y.store(c);
        }
        let mut sum = sv.hsum();
        if !tail.is_empty() {
            let mut pad = [0.0f32; LANES];
            pad[..tail.len()].copy_from_slice(tail);
            let mut out = [0.0f32; LANES];
            exp_v(ScalarF32x8::load(&pad).sub(ScalarF32x8::splat(max))).store(&mut out);
            for (dst, &y) in tail.iter_mut().zip(&out) {
                *dst = y;
                sum += y;
            }
        }
        let sumv = V::splat(sum);
        let (r8, tail) = row.as_chunks_mut::<LANES>();
        for c in r8.iter_mut() {
            V::load(c).div(sumv).store(c);
        }
        for x in tail {
            *x /= sum;
        }
    }
}
