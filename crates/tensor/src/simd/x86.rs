//! AVX2 registers and the `#[target_feature(enable = "avx2")]` kernel
//! entry points.
//!
//! The trait impls wrap one `__m256`/`__m256i` each; every method lowers to
//! a single correctly-rounded (f32) or exact (i32) instruction, and none of
//! them fuse — `mul` + `add` round twice exactly like the scalar reference,
//! which is what keeps the AVX2 kernels bit-identical to [`ScalarF32x8`]
//! on the linear paths (DESIGN §5g).
//!
//! Safety model: the intrinsics themselves are safe to *execute* whenever
//! the CPU supports AVX2. The only route to these kernels is the `Isa`
//! dispatch in `simd::mod`, which selects [`Isa::Avx2`] exclusively after
//! `is_x86_feature_detected!("avx2")` succeeds; each `unsafe` block below
//! cites that invariant.

use super::kernels::{self, MR, NR};
use super::vec::{F32x8, I32x8, LANES};
use std::arch::x86_64::*;

/// One AVX2 f32 register.
#[derive(Clone, Copy)]
pub struct AvxF32x8(__m256);

/// One AVX2 i32 register.
#[derive(Clone, Copy)]
pub struct AvxI32x8(__m256i);

impl F32x8 for AvxF32x8 {
    type Int = AvxI32x8;

    #[inline(always)]
    fn splat(v: f32) -> Self {
        // SAFETY: reached only via the Isa::Avx2 dispatch, which requires a
        // successful runtime avx2 detection (module safety model).
        AvxF32x8(unsafe { _mm256_set1_ps(v) })
    }

    #[inline(always)]
    fn load(src: &[f32; LANES]) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model); the
        // 8-element array reference is valid for 8 unaligned f32 reads.
        AvxF32x8(unsafe { _mm256_loadu_ps(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32; LANES]) {
        // SAFETY: avx2 verified at dispatch; the 8-element array reference
        // is valid for 8 unaligned f32 writes.
        unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), self.0) }
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxF32x8(unsafe { _mm256_add_ps(self.0, o.0) })
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxF32x8(unsafe { _mm256_sub_ps(self.0, o.0) })
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxF32x8(unsafe { _mm256_mul_ps(self.0, o.0) })
    }

    #[inline(always)]
    fn div(self, o: Self) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxF32x8(unsafe { _mm256_div_ps(self.0, o.0) })
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxF32x8(unsafe { _mm256_sqrt_ps(self.0) })
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxF32x8(unsafe { _mm256_max_ps(self.0, o.0) })
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxF32x8(unsafe { _mm256_min_ps(self.0, o.0) })
    }

    #[inline(always)]
    fn to_i32_nearest(self) -> AvxI32x8 {
        // SAFETY: avx2 verified at dispatch; cvtps2dq rounds to nearest
        // even under the default MXCSR mode, matching `round_ties_even`.
        AvxI32x8(unsafe { _mm256_cvtps_epi32(self.0) })
    }

    #[inline(always)]
    fn with_nan_from(self, src: Self) -> Self {
        // SAFETY: avx2 verified at dispatch. UNORD_Q compares lanes where
        // src is NaN; blendv takes src (the NaN) there, self elsewhere.
        unsafe {
            let nan_mask = _mm256_cmp_ps::<_CMP_UNORD_Q>(src.0, src.0);
            AvxF32x8(_mm256_blendv_ps(self.0, src.0, nan_mask))
        }
    }

    #[inline(always)]
    fn hmax(self) -> f32 {
        // SAFETY: avx2 verified at dispatch (module safety model).
        unsafe {
            let lo = _mm256_castps256_ps128(self.0);
            let hi = _mm256_extractf128_ps::<1>(self.0);
            let m = _mm_max_ps(lo, hi);
            let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
            let m = _mm_max_ss(m, _mm_shuffle_ps::<0b01>(m, m));
            _mm_cvtss_f32(m)
        }
    }

    #[inline(always)]
    fn hsum(self) -> f32 {
        // SAFETY: avx2 verified at dispatch. The pairwise tree
        // ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) matches ScalarF32x8::hsum.
        unsafe {
            let lo = _mm256_castps256_ps128(self.0);
            let hi = _mm256_extractf128_ps::<1>(self.0);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps::<0b01>(s, s));
            _mm_cvtss_f32(s)
        }
    }
}

impl I32x8 for AvxI32x8 {
    type Float = AvxF32x8;

    #[inline(always)]
    fn splat(v: i32) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxI32x8(unsafe { _mm256_set1_epi32(v) })
    }

    #[inline(always)]
    fn load(src: &[i32; LANES]) -> Self {
        // SAFETY: avx2 verified at dispatch; the 8-element array reference
        // is valid for one unaligned 256-bit read.
        AvxI32x8(unsafe { _mm256_loadu_si256(src.as_ptr().cast()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32; LANES]) {
        // SAFETY: avx2 verified at dispatch; the 8-element array reference
        // is valid for one unaligned 256-bit write.
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn widen_i8(src: &[i8; LANES]) -> Self {
        // SAFETY: avx2 verified at dispatch; the 8-element array reference
        // is valid for one unaligned 64-bit read, sign-extended lanewise.
        unsafe {
            let bytes = _mm_loadl_epi64(src.as_ptr().cast());
            AvxI32x8(_mm256_cvtepi8_epi32(bytes))
        }
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxI32x8(unsafe { _mm256_add_epi32(self.0, o.0) })
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        // SAFETY: avx2 verified at dispatch; mullo keeps the low 32 bits,
        // matching scalar wrapping_mul.
        AvxI32x8(unsafe { _mm256_mullo_epi32(self.0, o.0) })
    }

    #[inline(always)]
    fn to_f32(self) -> AvxF32x8 {
        // SAFETY: avx2 verified at dispatch (module safety model).
        AvxF32x8(unsafe { _mm256_cvtepi32_ps(self.0) })
    }

    #[inline(always)]
    fn exp2_bits(self) -> AvxF32x8 {
        // SAFETY: avx2 verified at dispatch. (n + 127) << 23 constructs the
        // f32 exponent field; the cast is a bit reinterpretation.
        unsafe {
            let biased = _mm256_add_epi32(self.0, _mm256_set1_epi32(127));
            AvxF32x8(_mm256_castsi256_ps(_mm256_slli_epi32::<23>(biased)))
        }
    }
}

// ---------------------------------------------------------------------
// target_feature entry points (monomorphized generic kernels)
// ---------------------------------------------------------------------

/// GEMM microkernel on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn microkernel(kc: usize, a_strip: &[f32], b_panel: &[f32], acc: &mut [f32; MR * NR]) {
    kernels::microkernel::<AvxF32x8>(kc, a_strip, b_panel, acc)
}

/// Int8 GEMM output row on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn qmatmul_row(arow: &[i8], b: &[i8], n: usize, out: &mut [i32]) {
    kernels::qmatmul_row::<AvxF32x8>(arow, b, n, out)
}

/// `dst += alpha * src` on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn axpy(dst: &mut [f32], src: &[f32], alpha: f32) {
    kernels::axpy::<AvxF32x8>(dst, src, alpha)
}

/// Fused momentum update on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn decay_axpy(dst: &mut [f32], src: &[f32], decay: f32, alpha: f32) {
    kernels::decay_axpy::<AvxF32x8>(dst, src, decay, alpha)
}

/// Fused second-moment update on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn ema_sq(dst: &mut [f32], src: &[f32], decay: f32, w: f32) {
    kernels::ema_sq::<AvxF32x8>(dst, src, decay, w)
}

/// Adam parameter update on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn adam_update(
    p: &mut [f32],
    m: &[f32],
    v: &[f32],
    lr: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    kernels::adam_update::<AvxF32x8>(p, m, v, lr, eps, bc1, bc2)
}

/// Polynomial exp over a slice on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn exp_inplace(xs: &mut [f32]) {
    kernels::exp_inplace::<AvxF32x8>(xs)
}

/// Polynomial tanh over a slice on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn tanh_inplace(xs: &mut [f32]) {
    kernels::tanh_inplace::<AvxF32x8>(xs)
}

/// In-place softmax of one row on AVX2 registers.
///
/// # Safety
/// The CPU must support AVX2 (the `Isa::Avx2` dispatch guarantees this).
// SAFETY: declared unsafe because executing AVX2 instructions requires CPU
// support; the Isa::Avx2 dispatch verifies that before calling in here.
#[target_feature(enable = "avx2")]
pub unsafe fn softmax_row(row: &mut [f32]) {
    kernels::softmax_row::<AvxF32x8>(row)
}
