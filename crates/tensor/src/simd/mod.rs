//! Runtime-dispatched SIMD microkernel layer (DESIGN §5g).
//!
//! One ISA is selected per process — auto-detected at first use, or forced
//! with `EGERIA_SIMD=avx2|neon|scalar` — and every hot inner loop (GEMM
//! microkernel, int8 dot product, fused optimizer kernels, transcendental
//! sweeps) routes through it. The kernels are written once, generically,
//! over the [`F32x8`]/[`I32x8`] traits in [`vec`]; `x86.rs`/`neon.rs`
//! monomorphize them into `#[target_feature]` entry points.
//!
//! Determinism contract:
//! - **Per ISA**: results are bit-identical across thread counts (the
//!   kernels keep the fixed-geometry partitioning and in-order folds of the
//!   blocked backend).
//! - **Across ISAs**: the f32 linear kernels and the exact-integer int8 dot
//!   are bit-identical to [`Isa::Scalar`] because every lane op rounds once
//!   (no FMA) in the same per-element order. The transcendentals are *not*:
//!   the vector ISAs use polynomial exp/tanh while `Isa::Scalar` keeps the
//!   seed's libm calls, so `EGERIA_SIMD=scalar` reproduces the pre-SIMD
//!   numerics (and the golden-run fingerprint) exactly.

pub mod kernels;
pub mod vec;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use kernels::{MR, NR};
pub use vec::{F32x8, I32x8, ScalarF32x8, ScalarI32x8, LANES};

use std::sync::atomic::{AtomicU8, Ordering};

/// Which instruction set the SIMD kernels execute with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Scalar fallback: the seed kernels' exact numerics (libm
    /// transcendentals, plain loops). The cross-ISA reference.
    Scalar,
    /// 256-bit AVX2 on x86-64 (requires runtime CPU support).
    Avx2,
    /// 128-bit NEON pairs on aarch64 (baseline there).
    Neon,
}

impl Isa {
    /// Stable lower-case name (the `EGERIA_SIMD` value that selects it).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
        }
    }
}

const UNSET: u8 = u8::MAX;
static ISA: AtomicU8 = AtomicU8::new(UNSET);

fn supported(isa: Isa) -> bool {
    match isa {
        Isa::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        Isa::Avx2 => false,
        Isa::Neon => cfg!(target_arch = "aarch64"),
    }
}

/// The best ISA this CPU supports (ignoring `EGERIA_SIMD`). Benches and
/// differential tests use this to pit the vector unit against
/// [`Isa::Scalar`] explicitly.
pub fn detect() -> Isa {
    if supported(Isa::Avx2) {
        Isa::Avx2
    } else if supported(Isa::Neon) {
        Isa::Neon
    } else {
        Isa::Scalar
    }
}

/// The active ISA. The first call reads `EGERIA_SIMD`
/// (`avx2`/`neon`/`scalar`); an unset, unknown, or unsupported-on-this-CPU
/// value falls back to auto-detection (then scalar).
pub fn isa() -> Isa {
    match ISA.load(Ordering::Relaxed) {
        0 => Isa::Scalar,
        1 => Isa::Avx2,
        2 => Isa::Neon,
        _ => {
            let requested = match std::env::var("EGERIA_SIMD").as_deref() {
                Ok("scalar") => Some(Isa::Scalar),
                Ok("avx2") => Some(Isa::Avx2),
                Ok("neon") => Some(Isa::Neon),
                _ => None,
            };
            let isa = match requested {
                Some(r) if supported(r) => r,
                _ => detect(),
            };
            set_isa(isa)
        }
    }
}

/// Overrides the active ISA (benches and differential tests switch
/// in-process). Unsupported requests clamp to [`Isa::Scalar`]; returns the
/// ISA actually installed.
pub fn set_isa(isa: Isa) -> Isa {
    let effective = if supported(isa) { isa } else { Isa::Scalar };
    let v = match effective {
        Isa::Scalar => 0,
        Isa::Avx2 => 1,
        Isa::Neon => 2,
    };
    ISA.store(v, Ordering::Relaxed);
    effective
}

/// The register-tiled GEMM inner kernel: `acc += a_strip · b_panel` over
/// `kc` rank-1 updates (`a_strip` is `kc × MR` interleaved, `b_panel` is
/// `kc × NR` interleaved). Bit-identical at every ISA.
#[inline]
pub fn microkernel(kc: usize, a_strip: &[f32], b_panel: &[f32], acc: &mut [f32; MR * NR]) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::microkernel(kc, a_strip, b_panel, acc) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::microkernel(kc, a_strip, b_panel, acc),
        _ => kernels::microkernel::<ScalarF32x8>(kc, a_strip, b_panel, acc),
    }
}

/// One output row of the int8 GEMM with exact i32 accumulation:
/// `out[j] = Σ_p arow[p] · b[p·n + j]`. Bit-identical at every ISA
/// (integer adds associate exactly).
#[inline]
pub fn qmatmul_row(arow: &[i8], b: &[i8], n: usize, out: &mut [i32]) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::qmatmul_row(arow, b, n, out) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::qmatmul_row(arow, b, n, out),
        _ => kernels::qmatmul_row::<ScalarF32x8>(arow, b, n, out),
    }
}

/// `dst += alpha * src` over equal-length slices. Bit-identical at every
/// ISA. Callers guarantee `dst.len() == src.len()`.
#[inline]
pub fn axpy(dst: &mut [f32], src: &[f32], alpha: f32) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::axpy(dst, src, alpha) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::axpy(dst, src, alpha),
        _ => {
            for (a, &b) in dst.iter_mut().zip(src.iter()) {
                *a += alpha * b;
            }
        }
    }
}

/// `dst = decay * dst + alpha * src` (fused momentum / first-moment
/// update). Bit-identical at every ISA.
#[inline]
pub fn decay_axpy(dst: &mut [f32], src: &[f32], decay: f32, alpha: f32) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::decay_axpy(dst, src, decay, alpha) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::decay_axpy(dst, src, decay, alpha),
        _ => {
            for (a, &b) in dst.iter_mut().zip(src.iter()) {
                *a = decay * *a + alpha * b;
            }
        }
    }
}

/// `dst = decay * dst + w * src²` (fused Adam second moment; `w` is the
/// caller's `1 - decay`). Bit-identical at every ISA.
#[inline]
pub fn ema_sq(dst: &mut [f32], src: &[f32], decay: f32, w: f32) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::ema_sq(dst, src, decay, w) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::ema_sq(dst, src, decay, w),
        _ => {
            for (a, &g) in dst.iter_mut().zip(src.iter()) {
                *a = decay * *a + w * g * g;
            }
        }
    }
}

/// Adam parameter update `p -= lr * (m/bc1) / (sqrt(v/bc2) + eps)` over
/// equal-length slices. Division and square root are correctly rounded, so
/// this is bit-identical at every ISA.
#[inline]
pub fn adam_update(p: &mut [f32], m: &[f32], v: &[f32], lr: f32, eps: f32, bc1: f32, bc2: f32) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::adam_update(p, m, v, lr, eps, bc1, bc2) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::adam_update(p, m, v, lr, eps, bc1, bc2),
        _ => {
            for ((pp, &mm), &vv) in p.iter_mut().zip(m.iter()).zip(v.iter()) {
                let m_hat = mm / bc1;
                let v_hat = vv / bc2;
                *pp -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }
}

/// Elementwise `exp`. [`Isa::Scalar`] calls libm `f32::exp` (the seed
/// numerics); the vector ISAs use the shared polynomial (toleranced, ~2 ulp
/// over the clamped domain — see `kernels::exp_v`).
#[inline]
pub fn exp_inplace(xs: &mut [f32]) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::exp_inplace(xs) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::exp_inplace(xs),
        _ => {
            for x in xs {
                *x = x.exp();
            }
        }
    }
}

/// Elementwise `tanh` (scalar = libm, vector = polynomial; as
/// [`exp_inplace`]).
#[inline]
pub fn tanh_inplace(xs: &mut [f32]) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::tanh_inplace(xs) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::tanh_inplace(xs),
        _ => {
            for x in xs {
                *x = x.tanh();
            }
        }
    }
}

/// Numerically stable in-place softmax of one row. [`Isa::Scalar`] runs
/// the seed's exact loop (libm exp, serial left-to-right sum); the vector
/// ISAs vectorize max/exp/sum with ISA-specific reduction association
/// (toleranced path).
#[inline]
pub fn softmax_row(row: &mut [f32]) {
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Isa::Avx2 is installed only after runtime avx2 detection.
        Isa::Avx2 => unsafe { x86::softmax_row(row) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::softmax_row(row),
        _ => {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global ISA state: tests that flip it take this lock so
    // concurrent test threads never observe a mid-test switch.
    static ISA_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_isa<R>(isa: Isa, f: impl FnOnce() -> R) -> R {
        let _guard = ISA_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = super::isa();
        let eff = set_isa(isa);
        assert_eq!(eff, isa, "requested ISA unsupported on this host");
        let r = f();
        set_isa(prev);
        r
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn set_isa_clamps_unsupported_to_scalar() {
        let _guard = ISA_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = super::isa();
        #[cfg(target_arch = "x86_64")]
        assert_eq!(set_isa(Isa::Neon), Isa::Scalar);
        #[cfg(target_arch = "aarch64")]
        assert_eq!(set_isa(Isa::Avx2), Isa::Scalar);
        set_isa(prev);
    }

    #[test]
    fn scalar_poly_exp_is_close_to_libm() {
        let xs: Vec<f32> = (-600..600).map(|i| i as f32 * 0.05).collect();
        let mut ys = xs.clone();
        kernels::exp_inplace::<ScalarF32x8>(&mut ys);
        for (&x, &y) in xs.iter().zip(&ys) {
            let want = x.exp();
            let rel = (y - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 4e-7, "exp({x}) = {y}, libm {want}, rel {rel}");
        }
    }

    #[test]
    fn scalar_poly_tanh_is_close_to_libm() {
        let xs: Vec<f32> = (-400..400).map(|i| i as f32 * 0.05).collect();
        let mut ys = xs.clone();
        kernels::tanh_inplace::<ScalarF32x8>(&mut ys);
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!(
                (y - x.tanh()).abs() < 1e-6,
                "tanh({x}) = {y} vs {}",
                x.tanh()
            );
        }
    }

    #[test]
    fn poly_transcendentals_propagate_nan_and_saturate_inf() {
        let mut xs = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0];
        kernels::tanh_inplace::<ScalarF32x8>(&mut xs);
        assert!(xs[0].is_nan());
        assert_eq!(xs[1], 1.0);
        assert_eq!(xs[2], -1.0);
        assert_eq!(xs[3], 0.0);
        let mut es = [f32::NAN, 0.0];
        kernels::exp_inplace::<ScalarF32x8>(&mut es);
        assert!(es[0].is_nan());
        assert_eq!(es[1], 1.0);
    }

    #[test]
    fn vector_isa_matches_scalar_register_bits() {
        // The detected vector ISA (if any) must agree bit-for-bit with the
        // ScalarF32x8 instantiation of every generic kernel — linear ops
        // because each lane op rounds once, transcendentals because the
        // lane math is identical (only horizontal reductions may differ,
        // checked separately with tolerance in backend_differential).
        let vector = super::detect();
        if vector == Isa::Scalar {
            return; // nothing to compare on this host
        }
        let mut a: Vec<f32> = (0..67).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let src: Vec<f32> = (0..67).map(|i| (i as f32 * 0.11).cos() * 2.0).collect();
        let mut expect = a.clone();
        kernels::exp_inplace::<ScalarF32x8>(&mut expect);
        with_isa(vector, || exp_inplace(&mut a));
        assert_eq!(bits(&a), bits(&expect), "poly exp lane math diverged");

        let mut d1: Vec<f32> = src.iter().map(|x| x * 1.5).collect();
        let mut d2 = d1.clone();
        kernels::adam_update::<ScalarF32x8>(
            &mut d1,
            &src,
            &src.iter().map(|x| x * x).collect::<Vec<_>>(),
            0.1,
            1e-8,
            0.9,
            0.99,
        );
        with_isa(vector, || {
            adam_update(
                &mut d2,
                &src,
                &src.iter().map(|x| x * x).collect::<Vec<_>>(),
                0.1,
                1e-8,
                0.9,
                0.99,
            )
        });
        assert_eq!(bits(&d1), bits(&d2), "adam kernel diverged across ISAs");
    }
}
