//! Deterministic random number generation.
//!
//! Training reproducibility is load-bearing in this system: the activation
//! cache (§4.3 of the paper) is only correct if random data augmentation is
//! *stateless*, i.e. re-derivable from `(seed, epoch, sample id)`. We wrap a
//! seeded [`rand::rngs::StdRng`] and expose exactly the distributions the
//! stack needs, plus a [`Rng::derive`] combinator that builds the
//! per-(epoch, sample) streams used by stateless augmentation.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seeded random number generator with explicit derivation.
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    seed: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator keyed by `salt`.
    ///
    /// The derivation is a pure function of `(seed, salt)`, which is what
    /// makes augmentation stateless: `rng.derive(epoch).derive(sample_id)`
    /// always yields the same stream regardless of call order elsewhere.
    pub fn derive(&self, salt: u64) -> Rng {
        // SplitMix64-style mixing keeps derived seeds well separated.
        let mut z = self.seed.wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng::new(z ^ (z >> 31))
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// A standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller on two uniforms; clamp u1 away from 0 to avoid ln(0).
        let u1 = self.inner.gen::<f64>().max(1e-12);
        let u2 = self.inner.gen::<f64>();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// Returns 0 when `n == 0` so callers need no special case for empty
    /// ranges (they must check emptiness themselves where it matters).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.inner.gen::<bool>()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn derive_is_pure_in_seed_and_salt() {
        let base = Rng::new(99);
        let mut d1 = base.derive(5);
        let mut d2 = base.derive(5);
        assert_eq!(d1.uniform(), d2.uniform());
        let mut d3 = base.derive(6);
        assert_ne!(Rng::new(99).derive(5).uniform(), d3.uniform());
    }

    #[test]
    fn derive_is_independent_of_consumption() {
        let mut base = Rng::new(1);
        let before = base.derive(3).uniform();
        let _ = base.uniform();
        let _ = base.uniform();
        let after = base.derive(3).uniform();
        assert_eq!(before, after);
    }

    #[test]
    fn normal_has_roughly_standard_moments() {
        let mut rng = Rng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng::new(5);
        let p = rng.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = Rng::new(5);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
