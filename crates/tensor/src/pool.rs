//! Shared persistent worker pool for the compute kernels.
//!
//! All parallel tensor kernels dispatch through a [`ThreadPool`]: a fixed set
//! of `std::thread` workers fed by a `crossbeam` MPMC channel. The pool is
//! designed around a *determinism contract*:
//!
//! - Work is partitioned into tasks by **fixed geometry** (chunk sizes and
//!   block extents are compile-time constants), never by thread count.
//! - Each task writes a disjoint region of the output, so scheduling order
//!   cannot affect results.
//! - Cross-task reductions accumulate per-task partials **in task-index
//!   order** on the calling thread.
//!
//! Under this contract every kernel produces bit-identical output for any
//! worker count, including 1 — which is what lets the PR-1 resume-exactness
//! guarantees survive parallel execution.
//!
//! The global pool is sized from `EGERIA_THREADS` if set (clamped to
//! `[1, 256]`), otherwise [`std::thread::available_parallelism`]. The calling
//! thread always participates in task execution, so a pool of size `n` holds
//! `n - 1` worker threads and a size-1 pool runs everything inline with zero
//! dispatch overhead.

use crossbeam::channel;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Fixed chunk length (in elements) for parallel elementwise and reduction
/// kernels. Part of the determinism contract: chunk geometry never depends
/// on thread count, so partial-sum association is stable.
pub const CHUNK: usize = 32 * 1024;

/// A borrowed task closure smuggled across the `'static` channel boundary.
struct TaskFn(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` and `ThreadPool::run` blocks until every
// claimed task has finished before returning, so the pointer never outlives
// the borrow it was made from and may be dereferenced from any thread.
unsafe impl Send for TaskFn {}
// SAFETY: as for Send — shared references to the `Sync` pointee are safe.
unsafe impl Sync for TaskFn {}

struct JobShared {
    f: TaskFn,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Count of finished tasks.
    done: AtomicUsize,
    tasks: usize,
    panicked: AtomicBool,
    done_tx: channel::Sender<()>,
}

impl JobShared {
    /// Claims and runs tasks until none remain; returns whether this call
    /// finished the last task.
    fn drain(&self) {
        // SAFETY: `ThreadPool::run` keeps the closure borrow alive until the
        // job's last task completes, so the pointer is valid for this deref.
        let f = unsafe { &*self.f.0 };
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                return;
            }
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.tasks {
                // Wake the caller; ignore a disconnected receiver (cannot
                // happen while the caller is blocked in `run`).
                let _ = self.done_tx.send(());
            }
        }
    }
}

thread_local! {
    /// Set while a thread is executing pool tasks; nested `run` calls from
    /// inside a task execute inline so kernels can freely compose (e.g. a
    /// per-image conv task calling the blocked GEMM) without flooding the
    /// queue or inverting the fixed work partition.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Occupancy counters a pool accumulates over its lifetime. Updated with
/// relaxed atomics on the dispatch path (not per task), so the cost is a
/// couple of uncontended increments per `run` call; read by the telemetry
/// layer to report pool task occupancy.
#[derive(Default)]
pub struct PoolStats {
    jobs: AtomicUsize,
    tasks: AtomicUsize,
    inline_jobs: AtomicUsize,
}

/// A point-in-time copy of a pool's [`PoolStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// `run` invocations dispatched to the worker queue.
    pub jobs: usize,
    /// Total tasks executed across all jobs (dispatched and inline).
    pub tasks: usize,
    /// `run` invocations that executed inline on the calling thread
    /// (single-thread pool, single task, or nested dispatch).
    pub inline_jobs: usize,
}

/// A persistent worker pool. See the module docs for the determinism
/// contract all dispatched work must follow.
pub struct ThreadPool {
    job_tx: Option<channel::Sender<Arc<JobShared>>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    stats: PoolStats,
}

impl ThreadPool {
    /// Creates a pool that executes with `threads` total threads (the caller
    /// plus `threads - 1` spawned workers). `0` is treated as `1`.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return ThreadPool {
                job_tx: None,
                workers: Vec::new(),
                threads: 1,
                stats: PoolStats::default(),
            };
        }
        // Generous bound: jobs are tiny Arcs and senders never need to block
        // in practice; `run` enqueues at most `threads - 1` per invocation.
        let (tx, rx) = channel::bounded::<Arc<JobShared>>(4 * threads);
        let workers = (0..threads - 1)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("egeria-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            IN_TASK.with(|t| t.set(true));
                            job.drain();
                            IN_TASK.with(|t| t.set(false));
                        }
                    })
                    // egeria-lint: allow(no-panic-in-kernels, panic-reachable-from-kernel):
                    // failing to spawn a worker at pool construction is
                    // unrecoverable, and happens once at startup — never
                    // mid-train-step.
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            job_tx: Some(tx),
            workers,
            threads,
            stats: PoolStats::default(),
        }
    }

    /// A snapshot of this pool's lifetime occupancy counters.
    pub fn stats(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            jobs: self.stats.jobs.load(Ordering::Relaxed),
            tasks: self.stats.tasks.load(Ordering::Relaxed),
            inline_jobs: self.stats.inline_jobs.load(Ordering::Relaxed),
        }
    }

    /// The configured thread count (callers + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0)`, `f(1)`, …, `f(tasks - 1)` across the pool and blocks
    /// until all tasks have finished.
    ///
    /// Tasks may run in any order on any thread; callers must ensure tasks
    /// write disjoint data (see the module-level determinism contract).
    /// Panics in a task are re-raised here after all tasks complete.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        let inline = self.threads == 1
            || tasks == 1
            || self.job_tx.is_none()
            || IN_TASK.with(|t| t.get());
        if inline {
            self.stats.inline_jobs.fetch_add(1, Ordering::Relaxed);
            self.stats.tasks.fetch_add(tasks, Ordering::Relaxed);
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        self.stats.jobs.fetch_add(1, Ordering::Relaxed);
        self.stats.tasks.fetch_add(tasks, Ordering::Relaxed);
        let (done_tx, done_rx) = channel::bounded::<()>(1);
        // SAFETY: we block on `done_rx` below until every claimed task has
        // completed, so the borrowed closure outlives all worker accesses.
        let f_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let shared = Arc::new(JobShared {
            f: TaskFn(f_static as *const _),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            tasks,
            panicked: AtomicBool::new(false),
            done_tx,
        });
        let helpers = (self.threads - 1).min(tasks - 1);
        if let Some(tx) = &self.job_tx {
            for _ in 0..helpers {
                if tx.send(Arc::clone(&shared)).is_err() {
                    break;
                }
            }
        }
        IN_TASK.with(|t| t.set(true));
        shared.drain();
        IN_TASK.with(|t| t.set(false));
        // Wait for stragglers claimed by workers.
        let _ = done_rx.recv();
        if shared.panicked.load(Ordering::Relaxed) {
            // egeria-lint: allow(no-panic-in-kernels, panic-reachable-from-kernel):
            // deliberate re-raise of a worker task's panic on the calling
            // thread — swallowing it would let a half-computed tensor flow
            // onward; the transitive reachability from every kernel entry is
            // exactly the point.
            panic!("egeria-tensor pool task panicked");
        }
    }

    /// The process-wide pool used by all tensor kernels, sized from
    /// `EGERIA_THREADS` or the machine's available parallelism.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers fall out of their recv loops.
        self.job_tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Thread count the global pool is created with: `EGERIA_THREADS` if set and
/// parseable, else available parallelism, else 1.
pub fn default_threads() -> usize {
    match std::env::var("EGERIA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.clamp(1, 256),
            Err(_) => hardware_threads(),
        },
        Err(_) => hardware_threads(),
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Raw mutable pointer that may cross threads; used to hand disjoint
/// sub-slices of one buffer to pool tasks.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: a SendPtr is only handed to pool tasks that write disjoint,
// in-bounds regions of the buffer it points into, and the dispatching call
// blocks until every task finishes — no aliasing or dangling access.
unsafe impl Send for SendPtr {}
// SAFETY: as for Send — concurrent tasks touch disjoint regions only.
unsafe impl Sync for SendPtr {}
impl SendPtr {
    /// Method (not field) access so closures capture the whole wrapper,
    /// keeping it `Sync` under edition-2021 disjoint capture.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Applies `f(chunk_index, chunk)` to fixed-size chunks of `data` in
/// parallel. Chunk geometry is [`CHUNK`], independent of thread count.
pub fn for_each_chunk_mut(
    pool: &ThreadPool,
    data: &mut [f32],
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let tasks = len.div_ceil(CHUNK);
    let ptr = SendPtr(data.as_mut_ptr());
    pool.run(tasks, &|i| {
        let start = i * CHUNK;
        let end = (start + CHUNK).min(len);
        // SAFETY: chunk ranges are disjoint and in-bounds, and `data`
        // outlives the blocking `run` call.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), end - start) };
        f(i, chunk);
    });
}

/// Applies `f(chunk_of_dst, matching_chunk_of_src)` in parallel over fixed
/// [`CHUNK`]-sized chunks. `dst` and `src` must have equal length.
pub fn for_each_chunk_mut_zip(
    pool: &ThreadPool,
    dst: &mut [f32],
    src: &[f32],
    f: impl Fn(&mut [f32], &[f32]) + Sync,
) {
    // egeria-lint: allow(panic-reachable-from-kernel): geometry
    // precondition guarding the unsafe disjoint-chunk split below — a
    // length mismatch here must never reach the raw-pointer arithmetic.
    assert_eq!(dst.len(), src.len(), "zip chunk length mismatch");
    let len = dst.len();
    if len == 0 {
        return;
    }
    let tasks = len.div_ceil(CHUNK);
    let ptr = SendPtr(dst.as_mut_ptr());
    pool.run(tasks, &|i| {
        let start = i * CHUNK;
        let end = (start + CHUNK).min(len);
        // SAFETY: chunk ranges are disjoint and in-bounds, and `dst`
        // outlives the blocking `run` call.
        let d = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), end - start) };
        f(d, &src[start..end]);
    });
}

/// Splits `data` into consecutive `item`-sized slices and applies
/// `f(item_index, item_slice)` in parallel — the dispatch used for
/// batch-parallel kernels (one task per batch element / image).
pub fn for_each_batch_mut(
    pool: &ThreadPool,
    data: &mut [f32],
    item: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if item == 0 || data.is_empty() {
        return;
    }
    // egeria-lint: allow(panic-reachable-from-kernel): geometry
    // precondition guarding the unsafe disjoint-item split below — a
    // non-dividing length must never reach the raw-pointer arithmetic.
    assert_eq!(data.len() % item, 0, "batch dispatch length mismatch");
    let tasks = data.len() / item;
    let ptr = SendPtr(data.as_mut_ptr());
    pool.run(tasks, &|i| {
        // SAFETY: item ranges are disjoint and in-bounds (length divides
        // evenly), and `data` outlives the blocking `run` call.
        let slice = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(i * item), item) };
        f(i, slice);
    });
}

/// Deterministic parallel reduction: maps each fixed [`CHUNK`]-sized range
/// of `0..len` to a partial with `f`, then folds the partials **in chunk
/// order** on the calling thread. Bit-identical for every thread count.
pub fn reduce_chunks(pool: &ThreadPool, len: usize, f: impl Fn(std::ops::Range<usize>) -> f32 + Sync) -> f32 {
    if len == 0 {
        return 0.0;
    }
    let tasks = len.div_ceil(CHUNK);
    if tasks == 1 {
        return f(0..len);
    }
    let mut partials = vec![0.0f32; tasks];
    {
        let ptr = SendPtr(partials.as_mut_ptr());
        pool.run(tasks, &|i| {
            let start = i * CHUNK;
            let end = (start + CHUNK).min(len);
            // SAFETY: each task writes only its own in-bounds slot of the
            // partials buffer, which outlives the blocking `run` call.
            unsafe { *ptr.get().add(i) = f(start..end) };
        });
    }
    // Fixed left-to-right association, independent of scheduling.
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            // Sum of task indices: double-counted or skipped tasks change it.
            let sum = AtomicU64::new(0);
            pool.run(1000, &|i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 500_500, "threads={threads}");
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = ThreadPool::new(4);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn chunked_mutation_covers_whole_buffer() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0.0f32; CHUNK * 2 + 17];
        for_each_chunk_mut(&pool, &mut data, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * CHUNK + j) as f32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        let len = CHUNK * 3 + 123;
        let data: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut results = Vec::new();
        for threads in [1usize, 2, 7, 8] {
            let pool = ThreadPool::new(threads);
            results.push(reduce_chunks(&pool, len, |r| data[r].iter().sum()));
        }
        for w in results.windows(2) {
            assert_eq!(w[0].to_bits(), w[1].to_bits());
        }
    }

    #[test]
    fn nested_run_executes_inline_without_deadlock() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        pool.run(8, &|_| {
            ThreadPool::global().run(8, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn stats_count_jobs_and_tasks() {
        let pool = ThreadPool::new(2);
        pool.run(8, &|_| {});
        pool.run(1, &|_| {}); // single task → inline
        let s = pool.stats();
        assert_eq!(s.jobs, 1);
        assert_eq!(s.inline_jobs, 1);
        assert_eq!(s.tasks, 9);

        let serial = ThreadPool::new(1);
        serial.run(5, &|_| {});
        let s = serial.stats();
        assert_eq!(s.jobs, 0);
        assert_eq!(s.inline_jobs, 1);
        assert_eq!(s.tasks, 5);
    }

    #[test]
    fn task_panic_propagates_after_completion() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool stays usable after a panic.
        let count = AtomicUsize::new(0);
        pool.run(4, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }
}
