//! The dense, contiguous, row-major `f32` tensor.

use crate::backend::{backend, Backend};
use crate::error::{Result, TensorError};
use crate::gemm::{gemm, gemm_reference, Layout};
use crate::pool::{self, ThreadPool};
use crate::rng::Rng;
use crate::shape::Shape;
use crate::simd;

/// A dense n-dimensional array of `f32` stored contiguously in row-major
/// order.
///
/// All operations allocate fresh output tensors unless the name ends in
/// `_inplace`. Fallible operations (anything whose validity depends on
/// shapes) return [`Result`]; infallible accessors panic only on programmer
/// error (documented per method).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates a tensor from raw data and a shape.
    ///
    /// Returns an error if `data.len()` does not match the shape's element
    /// count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::InvalidReshape {
                from: vec![data.len()],
                to: dims.to_vec(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a one-filled tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// Creates a tensor of standard-normal samples using the given RNG.
    pub fn randn(dims: &[usize], rng: &mut Rng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Tensor { data, shape }
    }

    /// Creates a tensor of uniform samples in `[lo, hi)` using the given RNG.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel())
            .map(|_| lo + (hi - lo) * rng.uniform())
            .collect();
        Tensor { data, shape }
    }

    /// Creates a 1-D tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            data: (0..n).map(|i| i as f32).collect(),
            shape: Shape::new(&[n]),
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// Returns an error if the tensor has more than one element.
    pub fn item(&self) -> Result<f32> {
        if self.numel() != 1 {
            return Err(TensorError::ShapeMismatch {
                op: "item",
                lhs: self.dims().to_vec(),
                rhs: vec![1],
            });
        }
        Ok(self.data[0])
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reshapes to `dims` (same element count, zero-copy for the buffer).
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let target = Shape::new(dims);
        if target.numel() != self.numel() {
            return Err(TensorError::InvalidReshape {
                from: self.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: target,
        })
    }

    /// Flattens to 1-D.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            data: self.data.clone(),
            shape: Shape::new(&[self.numel()]),
        }
    }

    /// Transposes a 2-D tensor.
    pub fn transpose2d(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                op: "transpose2d",
                lhs: self.dims().to_vec(),
                rhs: vec![],
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(out, &[c, r])
    }

    /// Permutes dimensions according to `perm` (a permutation of `0..rank`).
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        let rank = self.rank();
        if perm.len() != rank {
            return Err(TensorError::ShapeMismatch {
                op: "permute",
                lhs: self.dims().to_vec(),
                rhs: perm.to_vec(),
            });
        }
        let mut seen = vec![false; rank];
        for &p in perm {
            if p >= rank || seen[p] {
                return Err(TensorError::AxisOutOfRange { axis: p, rank });
            }
            seen[p] = true;
        }
        let src_strides = self.shape.strides();
        let out_dims: Vec<usize> = perm.iter().map(|&p| self.dims()[p]).collect();
        let out_shape = Shape::new(&out_dims);
        let mut out = vec![0.0f32; self.numel()];
        let mut index = vec![0usize; rank];
        for slot in out.iter_mut() {
            let mut src_off = 0usize;
            for (k, &i) in index.iter().enumerate() {
                src_off += i * src_strides[perm[k]];
            }
            *slot = self.data[src_off];
            // Advance the row-major index over the output shape.
            for k in (0..rank).rev() {
                index[k] += 1;
                if index[k] < out_dims[k] {
                    break;
                }
                index[k] = 0;
            }
        }
        Ok(Tensor {
            data: out,
            shape: out_shape,
        })
    }

    /// Concatenates tensors along `axis`; all other extents must match.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::Numerical("concat of empty tensor list".into()))?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut axis_total = 0usize;
        for p in parts {
            if p.rank() != rank {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            for d in 0..rank {
                if d != axis && p.dims()[d] != first.dims()[d] {
                    return Err(TensorError::ShapeMismatch {
                        op: "concat",
                        lhs: first.dims().to_vec(),
                        rhs: p.dims().to_vec(),
                    });
                }
            }
            axis_total += p.dims()[axis];
        }
        let mut out_dims = first.dims().to_vec();
        out_dims[axis] = axis_total;
        let outer: usize = first.dims()[..axis].iter().product();
        let inner: usize = first.dims()[axis + 1..].iter().product();
        let mut out = Vec::with_capacity(outer * axis_total * inner);
        for o in 0..outer {
            for p in parts {
                let a = p.dims()[axis];
                let start = o * a * inner;
                out.extend_from_slice(&p.data[start..start + a * inner]);
            }
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Extracts the sub-tensor `[start, start+len)` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Result<Tensor> {
        let rank = self.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let extent = self.dims()[axis];
        if start + len > extent {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start + len],
                shape: self.dims().to_vec(),
            });
        }
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * extent + start) * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        let mut dims = self.dims().to_vec();
        dims[axis] = len;
        Tensor::from_vec(out, &dims)
    }

    /// Gathers rows along axis 0 by index (used to assemble mini-batches).
    pub fn index_select0(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
        }
        let rows = self.dims()[0];
        let inner: usize = self.dims()[1..].iter().product();
        let mut out = Vec::with_capacity(indices.len() * inner);
        for &i in indices {
            if i >= rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![i],
                    shape: self.dims().to_vec(),
                });
            }
            out.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut dims = self.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_vec(out, &dims)
    }

    // ------------------------------------------------------------------
    // Elementwise & broadcasting arithmetic
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    fn binary_broadcast(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Tensor> {
        if self.shape == other.shape {
            // Fast path: identical shapes, no index arithmetic; chunked
            // across the pool (pure per-element map, trivially
            // deterministic).
            let mut data = vec![0.0f32; self.data.len()];
            pool::for_each_chunk_mut(ThreadPool::global(), &mut data, |ci, chunk| {
                let start = ci * pool::CHUNK;
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = f(self.data[start + j], other.data[start + j]);
                }
            });
            return Ok(Tensor {
                data,
                shape: self.shape.clone(),
            });
        }
        let target =
            self.shape
                .broadcast(&other.shape)
                .map_err(|_| TensorError::ShapeMismatch {
                    op,
                    lhs: self.dims().to_vec(),
                    rhs: other.dims().to_vec(),
                })?;
        let ls = self.shape.broadcast_strides(&target)?;
        let rs = other.shape.broadcast_strides(&target)?;
        let rank = target.rank();
        let dims = target.dims().to_vec();
        let mut out = vec![0.0f32; target.numel()];
        let mut index = vec![0usize; rank];
        for slot in out.iter_mut() {
            let mut lo = 0usize;
            let mut ro = 0usize;
            for k in 0..rank {
                lo += index[k] * ls[k];
                ro += index[k] * rs[k];
            }
            *slot = f(self.data[lo], other.data[ro]);
            for k in (0..rank).rev() {
                index[k] += 1;
                if index[k] < dims[k] {
                    break;
                }
                index[k] = 0;
            }
        }
        Ok(Tensor {
            data: out,
            shape: target,
        })
    }

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_broadcast(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_broadcast(other, "sub", |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_broadcast(other, "mul", |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_broadcast(other, "div", |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += alpha * other` for same-shape tensors (the SGD
    /// update kernel). Chunk-parallel; per-element, so deterministic.
    pub fn axpy_inplace(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        pool::for_each_chunk_mut_zip(ThreadPool::global(), &mut self.data, &other.data, |d, s| {
            simd::axpy(d, s, alpha)
        });
        Ok(())
    }

    /// In-place `self = decay * self + alpha * other` (the fused momentum /
    /// first-moment update used by the optimizers).
    pub fn decay_axpy_inplace(&mut self, decay: f32, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "decay_axpy",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        pool::for_each_chunk_mut_zip(ThreadPool::global(), &mut self.data, &other.data, |d, s| {
            simd::decay_axpy(d, s, decay, alpha)
        });
        Ok(())
    }

    /// In-place `self = decay * self + (1 - decay) * other²` (Adam's second
    /// moment, fused so the gradient square never materializes).
    pub fn ema_sq_inplace(&mut self, decay: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "ema_sq",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let w = 1.0 - decay;
        pool::for_each_chunk_mut_zip(ThreadPool::global(), &mut self.data, &other.data, |d, s| {
            simd::ema_sq(d, s, decay, w)
        });
        Ok(())
    }

    /// In-place Adam parameter update:
    /// `self -= lr * (m / bc1) / (sqrt(v / bc2) + eps)`.
    pub fn adam_update_inplace(
        &mut self,
        lr: f32,
        eps: f32,
        bc1: f32,
        bc2: f32,
        m: &Tensor,
        v: &Tensor,
    ) -> Result<()> {
        // Validate each operand separately so the error names the moment
        // tensor that actually disagrees — the chunk-parallel path below
        // slices both unchecked.
        if self.shape != m.shape {
            return Err(TensorError::ShapeMismatch {
                op: "adam_update (param vs m)",
                lhs: self.dims().to_vec(),
                rhs: m.dims().to_vec(),
            });
        }
        if self.shape != v.shape {
            return Err(TensorError::ShapeMismatch {
                op: "adam_update (param vs v)",
                lhs: self.dims().to_vec(),
                rhs: v.dims().to_vec(),
            });
        }
        pool::for_each_chunk_mut(ThreadPool::global(), &mut self.data, |ci, chunk| {
            let start = ci * pool::CHUNK;
            let mc = &m.data[start..start + chunk.len()];
            let vc = &v.data[start..start + chunk.len()];
            simd::adam_update(chunk, mc, vc, lr, eps, bc1, bc2);
        });
        Ok(())
    }

    /// In-place scaling of every element.
    pub fn scale_inplace(&mut self, s: f32) {
        pool::for_each_chunk_mut(ThreadPool::global(), &mut self.data, |_, chunk| {
            for a in chunk {
                *a *= s;
            }
        });
    }

    /// Fills the tensor with a constant.
    pub fn fill_inplace(&mut self, v: f32) {
        pool::for_each_chunk_mut(ThreadPool::global(), &mut self.data, |_, chunk| {
            for a in chunk {
                *a = v;
            }
        });
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    ///
    /// Parallel with fixed chunk geometry and an ordered partial fold, so
    /// the result is bit-identical for every thread count (and equal to the
    /// plain serial fold for tensors up to one chunk).
    pub fn sum(&self) -> f32 {
        pool::reduce_chunks(ThreadPool::global(), self.data.len(), |r| {
            self.data[r].iter().sum()
        })
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared Frobenius norm (sum of squares). Deterministic parallel
    /// reduction (see [`Tensor::sum`]).
    pub fn sq_norm(&self) -> f32 {
        pool::reduce_chunks(ThreadPool::global(), self.data.len(), |r| {
            self.data[r].iter().map(|&x| x * x).sum()
        })
    }

    /// Frobenius / L2 norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.numel() != other.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(pool::reduce_chunks(
            ThreadPool::global(),
            self.data.len(),
            |r| {
                self.data[r.clone()]
                    .iter()
                    .zip(other.data[r].iter())
                    .map(|(&a, &b)| a * b)
                    .sum()
            },
        ))
    }

    /// Sums along `axis`, removing that dimension.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        let rank = self.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let outer: usize = self.dims()[..axis].iter().product();
        let extent = self.dims()[axis];
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for e in 0..extent {
                let base = (o * extent + e) * inner;
                for i in 0..inner {
                    out[o * inner + i] += self.data[base + i];
                }
            }
        }
        let mut dims = self.dims().to_vec();
        dims.remove(axis);
        Tensor::from_vec(out, &dims)
    }

    /// Means along `axis`, removing that dimension.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let extent = *self.dims().get(axis).ok_or(TensorError::AxisOutOfRange {
            axis,
            rank: self.rank(),
        })?;
        Ok(self.sum_axis(axis)?.mul_scalar(1.0 / extent.max(1) as f32))
    }

    /// Index of the maximum element along the last axis, one per leading row.
    ///
    /// For a `(b, k)` logits tensor this is the per-sample predicted class.
    pub fn argmax_last(&self) -> Result<Vec<usize>> {
        if self.rank() == 0 {
            return Ok(vec![0]);
        }
        let k = *self.dims().last().expect("rank checked above");
        if k == 0 {
            return Err(TensorError::Numerical("argmax over empty axis".into()));
        }
        let rows = self.numel() / k;
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * k..(r + 1) * k];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Matrix multiplication
    // ------------------------------------------------------------------

    /// Shared driver for the four 2-D product variants. `a_rows`/`b_rows`
    /// are the *storage* shapes; `m`/`n`/`k` the logical GEMM extents.
    #[allow(clippy::too_many_arguments)]
    fn matmul_impl(
        &self,
        other: &Tensor,
        op: &'static str,
        a_layout: Layout,
        b_layout: Layout,
    ) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (m, k) = match a_layout {
            Layout::RowMajor => (self.dims()[0], self.dims()[1]),
            Layout::Transposed => (self.dims()[1], self.dims()[0]),
        };
        let (bk, n) = match b_layout {
            Layout::RowMajor => (other.dims()[0], other.dims()[1]),
            Layout::Transposed => (other.dims()[1], other.dims()[0]),
        };
        if k != bk {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        match backend() {
            Backend::Blocked => gemm(
                ThreadPool::global(),
                &self.data,
                a_layout,
                &other.data,
                b_layout,
                m,
                n,
                k,
                &mut out,
            ),
            Backend::Reference => gemm_reference(
                &self.data,
                a_layout,
                &other.data,
                b_layout,
                m,
                n,
                k,
                &mut out,
            ),
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// 2-D matrix product `self (m×k) · other (k×n) → (m×n)`.
    ///
    /// Runs on the parallel blocked GEMM ([`crate::gemm`]); deterministic
    /// for every thread count.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_impl(other, "matmul", Layout::RowMajor, Layout::RowMajor)
    }

    /// `self (m×k) · otherᵀ` where `other` is stored `(n×k)` — the linear
    /// layer forward (`x · Wᵀ`) without materializing the transpose.
    pub fn matmul_tb(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_impl(other, "matmul_tb", Layout::RowMajor, Layout::Transposed)
    }

    /// `selfᵀ · other` where `self` is stored `(k×m)` — the weight-gradient
    /// product (`gᵀ · x`) without materializing the transpose.
    pub fn matmul_ta(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_impl(other, "matmul_ta", Layout::Transposed, Layout::RowMajor)
    }

    /// Shared driver for the batched product variants.
    fn bmm_impl(
        &self,
        other: &Tensor,
        op: &'static str,
        a_layout: Layout,
        b_layout: Layout,
    ) -> Result<Tensor> {
        if self.rank() != 3 || other.rank() != 3 || self.dims()[0] != other.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (m, k) = match a_layout {
            Layout::RowMajor => (self.dims()[1], self.dims()[2]),
            Layout::Transposed => (self.dims()[2], self.dims()[1]),
        };
        let (bk, n) = match b_layout {
            Layout::RowMajor => (other.dims()[1], other.dims()[2]),
            Layout::Transposed => (other.dims()[2], other.dims()[1]),
        };
        if k != bk {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let b = self.dims()[0];
        let mut out = vec![0.0f32; b * m * n];
        let reference = backend() == Backend::Reference;
        // Parallel over the batch; each task owns one output matrix. Inner
        // GEMMs run inline inside pool tasks (single-batch calls still
        // parallelize internally).
        let a_sz = m * k;
        let b_sz = k * n;
        let o_sz = m * n;
        let pool_ref = ThreadPool::global();
        pool::for_each_batch_mut(pool_ref, &mut out, o_sz, |bi, o_slice| {
            let a_slice = &self.data[bi * a_sz..(bi + 1) * a_sz];
            let b_slice = &other.data[bi * b_sz..(bi + 1) * b_sz];
            if reference {
                gemm_reference(a_slice, a_layout, b_slice, b_layout, m, n, k, o_slice);
            } else {
                gemm(
                    pool_ref, a_slice, a_layout, b_slice, b_layout, m, n, k, o_slice,
                );
            }
        });
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched 3-D matmul: `(b, m, k) · (b, k, n) → (b, m, n)`, parallel
    /// over the batch dimension.
    pub fn bmm(&self, other: &Tensor) -> Result<Tensor> {
        self.bmm_impl(other, "bmm", Layout::RowMajor, Layout::RowMajor)
    }

    /// Batched `self (b,m,k) · otherᵀ` with `other` stored `(b,n,k)` — the
    /// attention score product (`Q · Kᵀ`) without permuting K.
    pub fn bmm_tb(&self, other: &Tensor) -> Result<Tensor> {
        self.bmm_impl(other, "bmm_tb", Layout::RowMajor, Layout::Transposed)
    }

    /// Batched `selfᵀ · other` with `self` stored `(b,k,m)` — the attention
    /// backward products (`Pᵀ · G`) without permuting P.
    pub fn bmm_ta(&self, other: &Tensor) -> Result<Tensor> {
        self.bmm_impl(other, "bmm_ta", Layout::Transposed, Layout::RowMajor)
    }

    /// Checks approximate equality within an absolute tolerance.
    pub fn allclose(&self, other: &Tensor, atol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= atol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).is_ok());
    }

    #[test]
    fn constructors_fill_correctly() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).item().unwrap(), 3.0);
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[3, 3]);
        assert!(x.matmul(&i).unwrap().allclose(&x, 1e-6));
        assert!(i.matmul(&x).unwrap().allclose(&x, 1e-6));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    /// Regression for the seed's `a == 0.0` inner-loop skip: a zero operand
    /// times NaN must yield NaN in both compute backends, not a silent 0.
    #[test]
    fn matmul_propagates_nan_through_zero_operand() {
        let a = t(&[0.0, 1.0], &[1, 2]);
        let b = t(&[f32::NAN, 1.0], &[2, 1]);
        let c = a.matmul(&b).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN + 1·1 must be NaN");
        crate::backend::set_backend(crate::backend::Backend::Reference);
        let c_ref = a.matmul(&b).unwrap();
        crate::backend::set_backend(crate::backend::Backend::Blocked);
        assert!(c_ref.data()[0].is_nan(), "reference backend must agree");
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[3, 2, 4], &mut rng);
        let b = Tensor::randn(&[3, 4, 5], &mut rng);
        let c = a.bmm(&b).unwrap();
        for bi in 0..3 {
            let a2 = a.narrow(0, bi, 1).unwrap().reshape(&[2, 4]).unwrap();
            let b2 = b.narrow(0, bi, 1).unwrap().reshape(&[4, 5]).unwrap();
            let c2 = c.narrow(0, bi, 1).unwrap().reshape(&[2, 5]).unwrap();
            assert!(a2.matmul(&b2).unwrap().allclose(&c2, 1e-5));
        }
    }

    #[test]
    fn transpose2d_flips_indices() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose2d().unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.at(&[2, 1]).unwrap(), 6.0);
        assert_eq!(at.at(&[0, 1]).unwrap(), 4.0);
    }

    #[test]
    fn permute_matches_transpose_for_rank2() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.permute(&[1, 0]).unwrap(), a.transpose2d().unwrap());
    }

    #[test]
    fn permute_rank4_nchw_to_nhwc() {
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let y = x.permute(&[0, 2, 3, 1]).unwrap();
        assert_eq!(y.dims(), &[2, 4, 5, 3]);
        assert_eq!(y.at(&[1, 2, 3, 1]).unwrap(), x.at(&[1, 1, 2, 3]).unwrap());
    }

    #[test]
    fn broadcast_add_bias() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[10.0, 20.0, 30.0], &[3]);
        let y = x.add(&b).unwrap();
        assert_eq!(y.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_rejects_mismatch() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4]);
        assert!(x.add(&b).is_err());
    }

    #[test]
    fn reductions_match_hand_values() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert_eq!(x.max(), 4.0);
        assert_eq!(x.min(), 1.0);
        assert_eq!(x.sq_norm(), 30.0);
    }

    #[test]
    fn sum_axis_each_direction() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(x.sum_axis(0).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(x.sum_axis(1).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(x.mean_axis(1).unwrap().data(), &[2.0, 5.0]);
    }

    #[test]
    fn argmax_last_per_row() {
        let x = t(&[0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(x.argmax_last().unwrap(), vec![1, 0]);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0], &[1, 2]);
        let c0 = Tensor::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.dims(), &[2, 2]);
        assert_eq!(c0.data(), &[1.0, 2.0, 3.0, 4.0]);
        let c1 = Tensor::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.dims(), &[1, 4]);
        assert_eq!(c1.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn narrow_extracts_middle() {
        let x = Tensor::arange(12).reshape(&[4, 3]).unwrap();
        let y = x.narrow(0, 1, 2).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let z = x.narrow(1, 1, 1).unwrap();
        assert_eq!(z.data(), &[1.0, 4.0, 7.0, 10.0]);
    }

    #[test]
    fn narrow_rejects_overflow() {
        let x = Tensor::zeros(&[4, 3]);
        assert!(x.narrow(0, 3, 2).is_err());
        assert!(x.narrow(2, 0, 1).is_err());
    }

    #[test]
    fn index_select0_gathers_rows() {
        let x = Tensor::arange(6).reshape(&[3, 2]).unwrap();
        let y = x.index_select0(&[2, 0, 2]).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        assert!(x.index_select0(&[3]).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = t(&[1.0, 2.0, 3.0], &[3]);
        a.axpy_inplace(0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
        let c = Tensor::zeros(&[4]);
        assert!(a.axpy_inplace(1.0, &c).is_err());
    }

    #[test]
    fn adam_update_rejects_each_mismatched_moment_by_name() {
        let mut p = Tensor::ones(&[4]);
        let good = Tensor::ones(&[4]);
        let bad = Tensor::ones(&[5]);
        let err = p.adam_update_inplace(1e-3, 1e-8, 0.9, 0.99, &bad, &good);
        assert!(err.unwrap_err().to_string().contains("param vs m"));
        let err = p.adam_update_inplace(1e-3, 1e-8, 0.9, 0.99, &good, &bad);
        assert!(err.unwrap_err().to_string().contains("param vs v"));
        assert!(p
            .adam_update_inplace(1e-3, 1e-8, 0.9, 0.99, &good, &good)
            .is_ok());
        let err = p.decay_axpy_inplace(0.9, 0.1, &bad);
        assert!(err.unwrap_err().to_string().contains("decay_axpy"));
        let err = p.ema_sq_inplace(0.99, &bad);
        assert!(err.unwrap_err().to_string().contains("ema_sq"));
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng::new(42);
        let mut r2 = Rng::new(42);
        let a = Tensor::randn(&[16], &mut r1);
        let b = Tensor::randn(&[16], &mut r2);
        assert_eq!(a, b);
        let mut r3 = Rng::new(43);
        let c = Tensor::randn(&[16], &mut r3);
        assert_ne!(a, c);
    }

    #[test]
    fn item_requires_single_element() {
        assert!(Tensor::zeros(&[2]).item().is_err());
        assert_eq!(Tensor::scalar(5.0).item().unwrap(), 5.0);
    }
}
