//! Determinism contract of the parallel compute backend.
//!
//! The pool partitions work by fixed geometry (chunk/block constants), never
//! by thread count, and every cross-task reduction folds partials in task
//! order — so any kernel must produce **bit-identical** output on a 1-thread
//! pool and on pools of 2, 7, and 8 threads (counts chosen to straddle and
//! misalign with typical block boundaries). These tests pin that contract:
//! PR-1's checkpoint resume-exactness depends on it.

use egeria_tensor::conv::{
    conv2d_grad_input_with_pool, conv2d_grad_weight_with_pool, conv2d_with_pool, reference,
    Conv2dSpec,
};
use egeria_tensor::gemm::{gemm, gemm_reference, Layout};
use egeria_tensor::simd::{self, Isa};
use egeria_tensor::{Rng, Tensor, ThreadPool};
use proptest::prelude::*;
use std::sync::Mutex;

const THREADS: [usize; 4] = [1, 2, 7, 8];

/// Bit-level equality, treating NaN as equal to itself (the kernels must
/// not manufacture or destroy NaNs depending on thread count either).
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn run_gemm(threads: usize, a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    let pool = ThreadPool::new(threads);
    let mut c = vec![0.0f32; m * n];
    gemm(
        &pool,
        a,
        Layout::RowMajor,
        b,
        Layout::RowMajor,
        m,
        n,
        k,
        &mut c,
    );
    c
}

/// Odd shapes: deliberately not multiples of the MR/NR/MC/KC block sizes.
#[test]
fn gemm_bit_identical_across_thread_counts_on_odd_shapes() {
    let mut rng = Rng::new(77);
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (3, 5, 7),
        (65, 9, 257),
        (130, 67, 31),
    ] {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let serial = run_gemm(1, a.data(), b.data(), m, n, k);
        for &t in &THREADS[1..] {
            let par = run_gemm(t, a.data(), b.data(), m, n, k);
            assert!(
                bits_eq(&serial, &par),
                "gemm ({m},{n},{k}) differs at {t} threads"
            );
        }
        // And the blocked kernel agrees with the naive reference numerically.
        let mut naive = vec![0.0f32; m * n];
        gemm_reference(
            a.data(),
            Layout::RowMajor,
            b.data(),
            Layout::RowMajor,
            m,
            n,
            k,
            &mut naive,
        );
        for (s, r) in serial.iter().zip(naive.iter()) {
            assert!(
                (s - r).abs() <= 1e-3 * r.abs().max(1.0),
                "blocked vs naive: {s} vs {r}"
            );
        }
    }
}

#[test]
fn conv2d_bit_identical_across_thread_counts() {
    let mut rng = Rng::new(78);
    // (n, c_in, c_out, h, w, kh, kw, stride, pad) — strides > 1 and
    // padding > 0 included deliberately.
    for &(n, c_in, c_out, h, w, kh, kw, stride, pad) in &[
        (
            2usize, 3usize, 4usize, 9usize, 7usize, 3usize, 3usize, 1usize, 1usize,
        ),
        (3, 2, 5, 11, 8, 3, 2, 2, 1),
        (1, 4, 3, 13, 9, 5, 3, 3, 2),
    ] {
        let spec = Conv2dSpec::new(stride, pad).unwrap();
        let x = Tensor::randn(&[n, c_in, h, w], &mut rng);
        let wt = Tensor::randn(&[c_out, c_in, kh, kw], &mut rng);
        let b = Tensor::randn(&[c_out], &mut rng);
        let p1 = ThreadPool::new(1);
        let y1 = conv2d_with_pool(&p1, &x, &wt, Some(&b), spec).unwrap();
        let g = Tensor::randn(y1.dims(), &mut rng);
        let gx1 = conv2d_grad_input_with_pool(&p1, &g, &wt, x.dims(), spec).unwrap();
        let gw1 = conv2d_grad_weight_with_pool(&p1, &g, &x, wt.dims(), spec).unwrap();
        for &t in &THREADS[1..] {
            let pt = ThreadPool::new(t);
            let yt = conv2d_with_pool(&pt, &x, &wt, Some(&b), spec).unwrap();
            assert!(
                bits_eq(y1.data(), yt.data()),
                "forward differs at {t} threads"
            );
            let gxt = conv2d_grad_input_with_pool(&pt, &g, &wt, x.dims(), spec).unwrap();
            assert!(
                bits_eq(gx1.data(), gxt.data()),
                "grad_input differs at {t} threads"
            );
            let gwt = conv2d_grad_weight_with_pool(&pt, &g, &x, wt.dims(), spec).unwrap();
            assert!(
                bits_eq(gw1.data(), gwt.data()),
                "grad_weight differs at {t} threads"
            );
        }
        // The blocked lowering agrees with the seed's direct loops.
        let y_ref = reference::conv2d(&x, &wt, Some(&b), spec).unwrap();
        assert!(y1.allclose(&y_ref, 1e-4));
    }
}

/// The thread-count contract must hold at *every* ISA, not just the
/// default: the SIMD microkernel partitions by the same fixed geometry as
/// the scalar one (DESIGN §5g), so each ISA's 1-thread output is the
/// reference for its 2/7/8-thread runs. (GEMM is additionally bit-identical
/// *across* ISAs — pinned by backend_differential.rs — so flipping the
/// process-global ISA here cannot disturb the other tests in this binary;
/// the mutex only serializes this test against itself under `--test-threads`.)
#[test]
fn gemm_bit_identical_across_thread_counts_at_every_isa() {
    static ISA_LOCK: Mutex<()> = Mutex::new(());
    let _guard = ISA_LOCK.lock().unwrap();
    let mut rng = Rng::new(79);
    let mut isas = vec![Isa::Scalar];
    if simd::detect() != Isa::Scalar {
        isas.push(simd::detect());
    }
    for &isa in &isas {
        simd::set_isa(isa);
        for &(m, n, k) in &[(5usize, 21usize, 300usize), (64, 48, 256), (33, 17, 31)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let serial = run_gemm(1, a.data(), b.data(), m, n, k);
            for &t in &THREADS[1..] {
                let par = run_gemm(t, a.data(), b.data(), m, n, k);
                assert!(
                    bits_eq(&serial, &par),
                    "gemm ({m},{n},{k}) differs at {t} threads under {}",
                    isa.name()
                );
            }
        }
    }
    simd::set_isa(simd::detect());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes (including degenerate 1-extents), random layouts: the
    /// parallel GEMM must match its own 1-thread execution bit-for-bit.
    #[test]
    fn gemm_parallel_equals_serial(
        seed in any::<u64>(),
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..60,
        threads_idx in 0usize..4,
    ) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let serial = run_gemm(1, a.data(), b.data(), m, n, k);
        let par = run_gemm(THREADS[threads_idx], a.data(), b.data(), m, n, k);
        prop_assert!(bits_eq(&serial, &par));
    }

    /// Random conv geometry (stride 1–3, padding 0–2): blocked path at any
    /// thread count is bit-identical to its 1-thread execution and allclose
    /// to the serial reference loops.
    #[test]
    fn conv_parallel_equals_serial(
        seed in any::<u64>(),
        n in 1usize..4,
        c_in in 1usize..4,
        c_out in 1usize..5,
        hw in 5usize..12,
        kk in 1usize..4,
        stride in 1usize..4,
        pad in 0usize..3,
        threads_idx in 0usize..4,
    ) {
        prop_assume!(hw + 2 * pad >= kk);
        let spec = Conv2dSpec::new(stride, pad).unwrap();
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[n, c_in, hw, hw], &mut rng);
        let wt = Tensor::randn(&[c_out, c_in, kk, kk], &mut rng);
        let p1 = ThreadPool::new(1);
        let pt = ThreadPool::new(THREADS[threads_idx]);
        let y1 = conv2d_with_pool(&p1, &x, &wt, None, spec).unwrap();
        let yt = conv2d_with_pool(&pt, &x, &wt, None, spec).unwrap();
        prop_assert!(bits_eq(y1.data(), yt.data()));
        let y_ref = reference::conv2d(&x, &wt, None, spec).unwrap();
        prop_assert!(y1.allclose(&y_ref, 1e-3));
        let g = Tensor::randn(y1.dims(), &mut rng);
        let gx1 = conv2d_grad_input_with_pool(&p1, &g, &wt, x.dims(), spec).unwrap();
        let gxt = conv2d_grad_input_with_pool(&pt, &g, &wt, x.dims(), spec).unwrap();
        prop_assert!(bits_eq(gx1.data(), gxt.data()));
        let gw1 = conv2d_grad_weight_with_pool(&p1, &g, &x, wt.dims(), spec).unwrap();
        let gwt = conv2d_grad_weight_with_pool(&pt, &g, &x, wt.dims(), spec).unwrap();
        prop_assert!(bits_eq(gw1.data(), gwt.data()));
    }
}
