//! Differential test of the two compute backends.
//!
//! `parallel_determinism.rs` pins the *thread-count* contract (blocked
//! output is bit-identical at any pool size). This suite pins the
//! *backend* contract: routing an op through
//! `EGERIA_COMPUTE_BACKEND=reference` (the seed's serial loops) and
//! through the blocked backend must agree — **bit-identically** while the
//! reduction fits one `KC = 256` k-block, because both kernels then fold
//! the same products in the same order, and within float tolerance beyond
//! that (the blocked kernel re-associates across k-blocks).
//!
//! `set_backend` is process-global, so every test serializes behind one
//! mutex and restores the blocked default before releasing it.

use egeria_tensor::backend::{set_backend, Backend};
use egeria_tensor::conv::{conv2d, conv2d_grad_input, conv2d_grad_weight, Conv2dSpec};
use egeria_tensor::simd::{self, Isa};
use egeria_tensor::{Rng, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

/// One k-block of the blocked GEMM (crate::gemm::KC). A reduction this
/// short is accumulated in identical order by both backends.
const KC: usize = 256;

static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under each backend and returns (reference, blocked) results.
fn differential<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = BACKEND_LOCK.lock().unwrap();
    set_backend(Backend::Reference);
    let r = f();
    set_backend(Backend::Blocked);
    let b = f();
    (r, b)
}

/// Runs `f` under `Isa::Scalar` and under this machine's vector unit,
/// returning `None` when there is no vector unit (the ISA contract is then
/// trivially satisfied). `set_isa`, like `set_backend`, is process-global,
/// so this shares `BACKEND_LOCK`; the lock is released with the ISA back at
/// the auto-detected default.
fn isa_differential<T>(f: impl Fn() -> T) -> Option<(T, T)> {
    let vector = simd::detect();
    if vector == Isa::Scalar {
        return None;
    }
    let _guard = BACKEND_LOCK.lock().unwrap();
    simd::set_isa(Isa::Scalar);
    let s = f();
    simd::set_isa(vector);
    let v = f();
    Some((s, v))
}

fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data().iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn matmul_backends_bit_identical_within_one_k_block() {
    let mut rng = Rng::new(101);
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (7, 5, 3),
        (33, 17, 255),
        (64, 48, KC),
    ] {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let (r, p) = differential(|| a.matmul(&b).unwrap());
        assert!(
            bits_eq(&r, &p),
            "matmul ({m},{n},{k}) differs between backends"
        );
    }
}

#[test]
fn matmul_backends_agree_numerically_across_k_blocks() {
    // Beyond KC the blocked kernel finishes one k-block before the next, so
    // the association differs from the reference's single left-to-right
    // fold; the results stay within tight float tolerance.
    let mut rng = Rng::new(102);
    let (m, n, k) = (16, 16, KC * 2 + 7);
    let a = Tensor::randn(&[m, k], &mut rng);
    let b = Tensor::randn(&[k, n], &mut rng);
    let (r, p) = differential(|| a.matmul(&b).unwrap());
    let d = max_abs_diff(&r, &p);
    assert!(d <= 1e-3, "matmul across k-blocks drifted {d}");
}

#[test]
fn transposed_matmul_variants_bit_identical() {
    let mut rng = Rng::new(103);
    let (m, n, k) = (19, 11, 37);
    let a = Tensor::randn(&[m, k], &mut rng);
    let bt = Tensor::randn(&[n, k], &mut rng);
    let (r, p) = differential(|| a.matmul_tb(&bt).unwrap());
    assert!(bits_eq(&r, &p), "matmul_tb differs between backends");
    let at = Tensor::randn(&[k, m], &mut rng);
    let b = Tensor::randn(&[k, n], &mut rng);
    let (r, p) = differential(|| at.matmul_ta(&b).unwrap());
    assert!(bits_eq(&r, &p), "matmul_ta differs between backends");
}

#[test]
fn bmm_variants_bit_identical() {
    let mut rng = Rng::new(104);
    let (bsz, m, n, k) = (3, 9, 7, 31);
    let a = Tensor::randn(&[bsz, m, k], &mut rng);
    let b = Tensor::randn(&[bsz, k, n], &mut rng);
    let (r, p) = differential(|| a.bmm(&b).unwrap());
    assert!(bits_eq(&r, &p), "bmm differs between backends");
    let bt = Tensor::randn(&[bsz, n, k], &mut rng);
    let (r, p) = differential(|| a.bmm_tb(&bt).unwrap());
    assert!(bits_eq(&r, &p), "bmm_tb differs between backends");
    let at = Tensor::randn(&[bsz, k, m], &mut rng);
    let (r, p) = differential(|| at.bmm_ta(&b).unwrap());
    assert!(bits_eq(&r, &p), "bmm_ta differs between backends");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes with the reduction inside one k-block: the backends
    /// must agree bit-for-bit on matmul.
    #[test]
    fn prop_matmul_bit_identical(
        seed in any::<u64>(),
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..KC + 1,
    ) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let (r, p) = differential(|| a.matmul(&b).unwrap());
        prop_assert!(bits_eq(&r, &p), "matmul ({m},{n},{k}) differs");
    }

    /// Random batched shapes: bmm and its transposed variants agree
    /// bit-for-bit within one k-block.
    #[test]
    fn prop_bmm_bit_identical(
        seed in any::<u64>(),
        bsz in 1usize..4,
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..64,
        variant in 0usize..3,
    ) {
        let mut rng = Rng::new(seed);
        let (r, p) = match variant {
            0 => {
                let a = Tensor::randn(&[bsz, m, k], &mut rng);
                let b = Tensor::randn(&[bsz, k, n], &mut rng);
                differential(|| a.bmm(&b).unwrap())
            }
            1 => {
                let a = Tensor::randn(&[bsz, m, k], &mut rng);
                let b = Tensor::randn(&[bsz, n, k], &mut rng);
                differential(|| a.bmm_tb(&b).unwrap())
            }
            _ => {
                let a = Tensor::randn(&[bsz, k, m], &mut rng);
                let b = Tensor::randn(&[bsz, k, n], &mut rng);
                differential(|| a.bmm_ta(&b).unwrap())
            }
        };
        prop_assert!(bits_eq(&r, &p), "bmm variant {variant} differs");
    }

    /// Random conv geometry: forward and both gradients agree between the
    /// direct reference loops and the im2col+GEMM lowering. The im2col
    /// reduction order matches the direct loops' (c_in, kh, kw) order, so
    /// agreement is bit-exact while c_in*kh*kw fits one k-block.
    #[test]
    fn prop_conv2d_differential(
        seed in any::<u64>(),
        n in 1usize..3,
        c_in in 1usize..4,
        c_out in 1usize..4,
        hw in 5usize..10,
        kk in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        bias in any::<bool>(),
    ) {
        prop_assume!(hw + 2 * pad >= kk);
        let spec = Conv2dSpec::new(stride, pad).unwrap();
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[n, c_in, hw, hw], &mut rng);
        let w = Tensor::randn(&[c_out, c_in, kk, kk], &mut rng);
        let b = Tensor::randn(&[c_out], &mut rng);
        let b_opt = if bias { Some(&b) } else { None };
        let (yr, yp) = differential(|| conv2d(&x, &w, b_opt, spec).unwrap());
        let dy = max_abs_diff(&yr, &yp);
        prop_assert!(dy <= 1e-4, "conv2d forward drifted {dy}");
        let g = Tensor::randn(yr.dims(), &mut rng);
        let (gxr, gxp) = differential(|| conv2d_grad_input(&g, &w, x.dims(), spec).unwrap());
        let dgx = max_abs_diff(&gxr, &gxp);
        prop_assert!(dgx <= 1e-4, "conv2d grad_input drifted {dgx}");
        let (gwr, gwp) = differential(|| conv2d_grad_weight(&g, &x, w.dims(), spec).unwrap());
        let dgw = max_abs_diff(&gwr, &gwp);
        prop_assert!(dgw <= 1e-3, "conv2d grad_weight drifted {dgw}");
    }
}

// ---------------------------------------------------------------------------
// ISA differential: `Isa::Scalar` vs the machine's vector unit.
//
// DESIGN §5g splits the kernels in two classes. Everything built from
// single-rounded IEEE lane ops in a fixed order — GEMM, the int8 qmatmul
// dot, and the fused optimizer kernels — must be **bit-identical** between
// the scalar fallback and every vector ISA (the vector bodies deliberately
// use unfused mul+add, never FMA). The transcendentals (exp/tanh/softmax)
// swap libm for a polynomial under a vector ISA and are only promised to
// agree within tolerance.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes, including reductions spanning several k-blocks: the
    /// blocked GEMM is bit-identical between scalar and vector ISAs.
    #[test]
    fn prop_matmul_scalar_vs_simd_bit_identical(
        seed in any::<u64>(),
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..300,
    ) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        if let Some((s, v)) = isa_differential(|| a.matmul(&b).unwrap()) {
            prop_assert!(bits_eq(&s, &v), "matmul ({m},{n},{k}) differs between ISAs");
        }
    }

    /// The int8 row-dot kernel under qmatmul accumulates in exact i32
    /// arithmetic: scalar and vector ISAs must agree to the last bit.
    #[test]
    fn prop_qmatmul_row_scalar_vs_simd_exact(
        seed in any::<u64>(),
        k in 1usize..128,
        n in 1usize..48,
    ) {
        let mut rng = Rng::new(seed);
        let to_i8 = |t: &Tensor| -> Vec<i8> {
            t.data().iter().map(|&x| (x * 40.0).clamp(-127.0, 127.0) as i8).collect()
        };
        let arow = to_i8(&Tensor::randn(&[k], &mut rng));
        let b = to_i8(&Tensor::randn(&[k, n], &mut rng));
        let run = || {
            let mut acc = vec![0i32; n];
            simd::qmatmul_row(&arow, &b, n, &mut acc);
            acc
        };
        if let Some((s, v)) = isa_differential(run) {
            prop_assert_eq!(s, v, "qmatmul_row ({}, {}) differs between ISAs", k, n);
        }
    }

    /// The fused optimizer kernels (axpy / decay_axpy / ema_sq / adam) are
    /// pure lane arithmetic: bit-identical between ISAs.
    #[test]
    fn prop_fused_optimizer_scalar_vs_simd_bit_identical(
        seed in any::<u64>(),
        len in 1usize..200,
        which in 0usize..4,
    ) {
        let mut rng = Rng::new(seed);
        let p0 = Tensor::randn(&[len], &mut rng);
        let g = Tensor::randn(&[len], &mut rng);
        let m = Tensor::randn(&[len], &mut rng);
        let v = g.map(|x| x * x + 1e-3);
        let run = || {
            let mut p = p0.clone();
            match which {
                0 => p.axpy_inplace(-0.05, &g).unwrap(),
                1 => p.decay_axpy_inplace(0.9, -0.05, &g).unwrap(),
                2 => p.ema_sq_inplace(0.99, &g).unwrap(),
                _ => p.adam_update_inplace(1e-3, 1e-8, 0.9, 0.99, &m, &v).unwrap(),
            }
            p
        };
        if let Some((s, r)) = isa_differential(run) {
            prop_assert!(bits_eq(&s, &r), "optimizer kernel {which} differs between ISAs");
        }
    }

    /// exp/tanh: the vector polynomial tracks libm within tight tolerance
    /// over the clamped domain (bit-identity deliberately not promised).
    #[test]
    fn prop_exp_tanh_scalar_vs_simd_toleranced(
        seed in any::<u64>(),
        len in 1usize..300,
        tanh in any::<bool>(),
    ) {
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[len], &mut rng).map(|v| v * 5.0);
        let run = || {
            let mut y = x.clone();
            if tanh {
                simd::tanh_inplace(y.data_mut());
            } else {
                simd::exp_inplace(y.data_mut());
            }
            y
        };
        if let Some((s, v)) = isa_differential(run) {
            for (a, b) in s.data().iter().zip(v.data().iter()) {
                if tanh {
                    prop_assert!((a - b).abs() <= 1e-5, "tanh drifted: {a} vs {b}");
                } else {
                    prop_assert!((a - b).abs() <= 1e-5 * a.abs().max(1e-30),
                        "exp drifted: {a} vs {b}");
                }
            }
        }
    }

    /// softmax rows: scalar and vector ISAs agree within tolerance and the
    /// vector result still normalizes.
    #[test]
    fn prop_softmax_scalar_vs_simd_toleranced(
        seed in any::<u64>(),
        rows in 1usize..4,
        k in 1usize..40,
    ) {
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[rows, k], &mut rng).map(|v| v * 3.0);
        let run = || {
            let mut y = x.clone();
            for r in 0..rows {
                simd::softmax_row(&mut y.data_mut()[r * k..(r + 1) * k]);
            }
            y
        };
        if let Some((s, v)) = isa_differential(run) {
            let d = max_abs_diff(&s, &v);
            prop_assert!(d <= 1e-5, "softmax drifted {d} between ISAs");
            for r in 0..rows {
                let sum: f32 = v.data()[r * k..(r + 1) * k].iter().sum();
                prop_assert!((sum - 1.0).abs() <= 1e-5, "vector softmax row sums to {sum}");
            }
        }
    }
}
