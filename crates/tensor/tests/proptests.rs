//! Property-based tests for the tensor substrate.

use egeria_tensor::conv::{conv2d, conv2d_grad_input, Conv2dSpec};
use egeria_tensor::linalg::{linear_fit, qr, svd};
use egeria_tensor::{serialize, Rng, Tensor};
use proptest::prelude::*;

fn small_tensor(max: usize) -> impl Strategy<Value = Tensor> {
    (1..max, 1..max, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = Rng::new(seed);
        Tensor::randn(&[r, c], &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_is_neutral(t in small_tensor(8)) {
        let n = t.dims()[1];
        let i = Tensor::eye(n);
        let p = t.matmul(&i).unwrap();
        prop_assert!(p.allclose(&t, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in any::<u64>(), m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let c = Tensor::randn(&[k, n], &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn transpose_is_involution(t in small_tensor(8)) {
        let tt = t.transpose2d().unwrap().transpose2d().unwrap();
        prop_assert_eq!(tt, t);
    }

    #[test]
    fn serialization_round_trips(t in small_tensor(10)) {
        let bytes = serialize::to_bytes(&t);
        let back = serialize::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn sum_axis_preserves_total(t in small_tensor(8)) {
        let total = t.sum();
        let by0 = t.sum_axis(0).unwrap().sum();
        let by1 = t.sum_axis(1).unwrap().sum();
        prop_assert!((total - by0).abs() < 1e-3 * total.abs().max(1.0));
        prop_assert!((total - by1).abs() < 1e-3 * total.abs().max(1.0));
    }

    #[test]
    fn conv_output_shape_law(
        seed in any::<u64>(),
        h in 4usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        prop_assume!(h + 2 * pad >= k);
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[1, 2, h, h], &mut rng);
        let w = Tensor::randn(&[3, 2, k, k], &mut rng);
        let spec = Conv2dSpec::new(stride, pad).unwrap();
        let y = conv2d(&x, &w, None, spec).unwrap();
        let expected = (h + 2 * pad - k) / stride + 1;
        prop_assert_eq!(y.dims(), &[1, 3, expected, expected]);
    }

    #[test]
    fn conv_grad_input_is_adjoint(seed in any::<u64>(), h in 4usize..8) {
        // <conv(x), g> == <x, conv_grad_input(g)> for all x, g.
        let mut rng = Rng::new(seed);
        let x = Tensor::randn(&[1, 2, h, h], &mut rng);
        let w = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let spec = Conv2dSpec::new(1, 1).unwrap();
        let y = conv2d(&x, &w, None, spec).unwrap();
        let g = Tensor::randn(y.dims(), &mut rng);
        let lhs = y.dot(&g).unwrap();
        let gx = conv2d_grad_input(&g, &w, x.dims(), spec).unwrap();
        let rhs = x.dot(&gx).unwrap();
        let scale = lhs.abs().max(1.0);
        prop_assert!((lhs - rhs).abs() < 1e-3 * scale, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn qr_reconstructs(seed in any::<u64>(), n in 2usize..6, extra in 0usize..4) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[n + extra, n], &mut rng);
        let (q, r) = qr(&a).unwrap();
        let recon = q.matmul(&r).unwrap();
        prop_assert!(recon.allclose(&a, 1e-3));
    }

    #[test]
    fn svd_values_bound_matrix_norm(seed in any::<u64>(), n in 2usize..6) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[n + 2, n], &mut rng);
        let (_, s, _) = svd(&a).unwrap();
        // Frobenius² equals the sum of squared singular values.
        let fro2: f32 = a.sq_norm();
        let ssum: f32 = s.iter().map(|&x| x * x).sum();
        prop_assert!((fro2 - ssum).abs() < 1e-2 * fro2.max(1.0));
    }

    #[test]
    fn linear_fit_recovers_affine(slope in -5.0f32..5.0, intercept in -5.0f32..5.0, n in 3usize..20) {
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| slope * x + intercept).collect();
        let (s, b) = linear_fit(&xs, &ys).unwrap();
        prop_assert!((s - slope).abs() < 1e-3);
        prop_assert!((b - intercept).abs() < 1e-2);
    }

    #[test]
    fn broadcast_add_then_sub_is_identity(t in small_tensor(8), bias_seed in any::<u64>()) {
        let c = t.dims()[1];
        let mut rng = Rng::new(bias_seed);
        let bias = Tensor::randn(&[c], &mut rng);
        let back = t.add(&bias).unwrap().sub(&bias).unwrap();
        prop_assert!(back.allclose(&t, 1e-4));
    }
}
