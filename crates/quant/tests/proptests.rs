//! Property-based tests for quantization error bounds.

use egeria_quant::fake::{f16_round, fake_int8};
use egeria_quant::qtensor::{qmatmul, Granularity, QTensor};
use egeria_tensor::{Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int8_round_trip_error_within_half_step(seed in any::<u64>(), n in 1usize..200) {
        let mut rng = Rng::new(seed);
        let t = Tensor::randn(&[n], &mut rng).mul_scalar(3.0);
        let q = QTensor::quantize(&t, Granularity::PerTensor).unwrap();
        let back = q.dequantize().unwrap();
        let max_abs = t.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let step = max_abs / 127.0;
        for (&a, &b) in t.data().iter().zip(back.data().iter()) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn fake_int8_is_idempotent(seed in any::<u64>(), n in 1usize..100) {
        let mut rng = Rng::new(seed);
        let t = Tensor::randn(&[n], &mut rng);
        let once = fake_int8(&t, Granularity::PerTensor).unwrap();
        let twice = fake_int8(&once, Granularity::PerTensor).unwrap();
        // The second pass re-derives (almost) the same scale, so values are
        // already on the grid.
        prop_assert!(once.allclose(&twice, 1e-5));
    }

    #[test]
    fn f16_round_never_increases_magnitude_much(x in -1e5f32..1e5) {
        let r = f16_round(x);
        prop_assert!(r.abs() <= x.abs() * 1.001 + 1e-6);
        // Relative error within half-ULP of the 10-bit mantissa — for
        // values inside the f16 normal range; above 65504 the rounding
        // clamps to f16::MAX by design.
        if x.abs() > 1e-3 && x.abs() <= 65504.0 {
            prop_assert!(((r - x) / x).abs() < 1e-3, "x={} r={}", x, r);
        }
    }

    #[test]
    fn qmatmul_relative_error_bounded(seed in any::<u64>(), m in 1usize..8, k in 1usize..16, n in 1usize..8) {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let exact = a.matmul(&b).unwrap();
        let qa = QTensor::quantize(&a, Granularity::PerTensor).unwrap();
        let qb = QTensor::quantize(&b, Granularity::PerTensor).unwrap();
        let approx = qmatmul(&qa, &qb).unwrap();
        let denom = exact.norm().max(1.0);
        prop_assert!(exact.sub(&approx).unwrap().norm() / denom < 0.15);
    }

    #[test]
    fn per_channel_error_never_worse_than_per_tensor(seed in any::<u64>(), c in 1usize..6, d in 1usize..20) {
        let mut rng = Rng::new(seed);
        // Give channels wildly different scales.
        let mut t = Tensor::randn(&[c, d], &mut rng);
        for ch in 0..c {
            let scale = 10f32.powi(ch as i32 % 4);
            for j in 0..d {
                let v = t.at(&[ch, j]).unwrap() * scale;
                t.set(&[ch, j], v).unwrap();
            }
        }
        let e_pc = t
            .sub(&QTensor::quantize(&t, Granularity::PerChannel).unwrap().dequantize().unwrap())
            .unwrap()
            .sq_norm();
        let e_pt = t
            .sub(&QTensor::quantize(&t, Granularity::PerTensor).unwrap().dequantize().unwrap())
            .unwrap()
            .sq_norm();
        prop_assert!(e_pc <= e_pt + 1e-6);
    }
}
