//! Calibration observers for static quantization.

use egeria_tensor::Tensor;

/// A running min/max observer over activation tensors.
///
/// Static quantization (the paper's choice for convolutional models) runs a
/// few calibration batches through the model, records activation ranges,
/// and fixes scales from them. Dynamic quantization (the paper's choice for
/// NLP models) computes the scale per call instead — see
/// [`dynamic_scale`].
#[derive(Debug, Clone, Default)]
pub struct MinMaxObserver {
    min: f32,
    max: f32,
    observed: bool,
}

impl MinMaxObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        MinMaxObserver {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            observed: false,
        }
    }

    /// Folds one activation tensor into the range.
    pub fn observe(&mut self, t: &Tensor) {
        if t.numel() == 0 {
            return;
        }
        self.min = self.min.min(t.min());
        self.max = self.max.max(t.max());
        self.observed = true;
    }

    /// Whether any data has been observed.
    pub fn is_calibrated(&self) -> bool {
        self.observed
    }

    /// The symmetric int8 scale implied by the observed range.
    ///
    /// Returns 1.0 before calibration (callers should check
    /// [`Self::is_calibrated`]).
    pub fn scale(&self) -> f32 {
        if !self.observed {
            return 1.0;
        }
        let bound = self.min.abs().max(self.max.abs());
        // egeria-lint: allow(float-exact-eq): the observed abs-bound is
        // exactly 0.0 iff every calibration activation was zero; the guard
        // prevents a degenerate 0-scale, not a data-dependent skip.
        if bound == 0.0 {
            1.0
        } else {
            bound / 127.0
        }
    }
}

/// The per-call symmetric int8 scale of dynamic quantization.
pub fn dynamic_scale(t: &Tensor) -> f32 {
    let bound = t.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    // egeria-lint: allow(float-exact-eq): an abs-max is exactly 0.0 iff the
    // tensor is all zeros (NaN never survives f32::max against 0.0); the
    // guard prevents a degenerate 0-scale.
    if bound == 0.0 {
        1.0
    } else {
        bound / 127.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    #[test]
    fn observer_tracks_running_extremes() {
        let mut o = MinMaxObserver::new();
        assert!(!o.is_calibrated());
        o.observe(&Tensor::from_vec(vec![-2.0, 1.0], &[2]).unwrap());
        o.observe(&Tensor::from_vec(vec![0.5, 3.0], &[2]).unwrap());
        assert!(o.is_calibrated());
        assert!((o.scale() - 3.0 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn uncalibrated_scale_is_identity() {
        assert_eq!(MinMaxObserver::new().scale(), 1.0);
    }

    #[test]
    fn dynamic_scale_follows_batch_range() {
        let mut rng = Rng::new(1);
        let small = Tensor::randn(&[64], &mut rng).mul_scalar(0.1);
        let large = small.mul_scalar(100.0);
        assert!(dynamic_scale(&large) > dynamic_scale(&small) * 50.0);
        assert_eq!(dynamic_scale(&Tensor::zeros(&[4])), 1.0);
    }

    #[test]
    fn empty_tensor_is_ignored() {
        let mut o = MinMaxObserver::new();
        o.observe(&Tensor::zeros(&[0]));
        assert!(!o.is_calibrated());
    }
}
