//! Fake quantization: quantize→dequantize in one step.
//!
//! Reference models keep f32 storage but carry the exact rounding error of
//! the target precision, so plasticity evaluation sees the same activations
//! a true int8/f16 execution would produce (up to accumulation-order
//! effects).

use crate::qtensor::{Granularity, QTensor};
use egeria_tensor::{Result, Tensor};

/// Applies int8 fake quantization to a tensor.
pub fn fake_int8(t: &Tensor, granularity: Granularity) -> Result<Tensor> {
    QTensor::quantize(t, granularity)?.dequantize()
}

/// Rounds every element to IEEE half precision and back.
pub fn fake_f16(t: &Tensor) -> Tensor {
    t.map(f16_round)
}

/// Rounds one f32 through the f16 representation (round-to-nearest-even on
/// the 10-bit mantissa, with overflow to ±inf clamped to f16 max).
pub fn f16_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let sign = bits & 0x8000_0000;
    let abs = f32::from_bits(bits & 0x7FFF_FFFF);
    const F16_MAX: f32 = 65504.0;
    if abs > F16_MAX {
        return f32::from_bits(sign | F16_MAX.to_bits());
    }
    if abs < 6.103_515_6e-5 {
        // Subnormal range: quantize to multiples of 2^-24.
        let step = 5.960_464_5e-8;
        let q = (abs / step).round() * step;
        return f32::from_bits(sign | q.to_bits());
    }
    // Normal range: keep 10 mantissa bits (f32 has 23): round at bit 13.
    let mant_round = bits & 0x7FFF_FFFF;
    let rounded = (mant_round + 0x0000_1000) & !0x0000_1FFF;
    f32::from_bits(sign | rounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    #[test]
    fn fake_int8_error_is_small_but_nonzero() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn(&[256], &mut rng);
        let f = fake_int8(&t, Granularity::PerTensor).unwrap();
        let rel = t.sub(&f).unwrap().norm() / t.norm();
        assert!(rel > 0.0 && rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn f16_round_is_idempotent() {
        let mut rng = Rng::new(2);
        let t = Tensor::randn(&[128], &mut rng);
        let once = fake_f16(&t);
        let twice = fake_f16(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn f16_exactly_represents_small_integers() {
        for v in [0.0f32, 1.0, -2.0, 1024.0, 0.5, 0.25] {
            assert_eq!(f16_round(v), v);
        }
    }

    #[test]
    fn f16_error_smaller_than_int8_error() {
        let mut rng = Rng::new(3);
        let t = Tensor::randn(&[512], &mut rng);
        let e16 = t.sub(&fake_f16(&t)).unwrap().norm();
        let e8 = t
            .sub(&fake_int8(&t, Granularity::PerTensor).unwrap())
            .unwrap()
            .norm();
        assert!(e16 < e8, "f16 {e16} vs int8 {e8}");
    }

    #[test]
    fn f16_clamps_overflow() {
        assert_eq!(f16_round(1e6), 65504.0);
        assert_eq!(f16_round(-1e6), -65504.0);
    }
}
