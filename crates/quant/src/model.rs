//! Whole-model reference generation (§4.1.3, Table 2).

use crate::fake::{fake_f16, fake_int8};
use crate::qtensor::Granularity;
use egeria_models::Model;
use egeria_tensor::Result;

/// Numeric precision of a reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 8-bit integers (the paper's default reference precision).
    Int8,
    /// IEEE half precision.
    F16,
    /// Full precision (the fallback for extremely sensitive models).
    F32,
}

impl Precision {
    /// Measured-shape CPU inference speedup relative to f32 (Table 2 row 2
    /// of the paper: int8 3.59×, f16 1.69×). Used by the performance
    /// simulator to cost reference-model execution; the real kernel-level
    /// speed ratio is measured independently by the `quant_inference`
    /// Criterion bench.
    pub fn cpu_speedup(&self) -> f32 {
        match self {
            Precision::Int8 => 3.59,
            Precision::F16 => 1.69,
            Precision::F32 => 1.0,
        }
    }
}

/// Generates a reference model: a deep copy of `model` whose parameters
/// carry the rounding error of the requested precision.
///
/// Per the paper, convolution/linear weights use per-channel scales (the
/// PyTorch static-quantization default) and everything else per-tensor.
/// The copy's architecture, BatchNorm statistics, and module list are
/// identical to the source, so layer-wise activations remain comparable.
pub fn quantize_reference(model: &dyn Model, precision: Precision) -> Result<Box<dyn Model>> {
    let mut reference = model.clone_boxed();
    if precision == Precision::F32 {
        return Ok(reference);
    }
    for p in reference.params_mut() {
        p.value = match precision {
            Precision::Int8 => {
                let granularity = if p.value.rank() >= 2 {
                    Granularity::PerChannel
                } else {
                    Granularity::PerTensor
                };
                fake_int8(&p.value, granularity)?
            }
            Precision::F16 => fake_f16(&p.value),
            Precision::F32 => unreachable!("handled above"),
        };
        // The reference never trains.
        p.requires_grad = false;
    }
    Ok(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_models::resnet::{resnet_cifar, ResNetCifarConfig};
    use egeria_models::{Batch, Input, Targets};
    use egeria_tensor::{Rng, Tensor};

    fn model_and_batch() -> (Box<dyn Model>, Batch) {
        let cfg = ResNetCifarConfig {
            n: 2,
            width: 4,
            classes: 4,
            ..Default::default()
        };
        let m = resnet_cifar(cfg, 1);
        let mut rng = Rng::new(2);
        let batch = Batch {
            input: Input::Image(Tensor::randn(&[4, 3, 8, 8], &mut rng)),
            targets: Targets::Classes(vec![0, 1, 2, 3]),
            sample_ids: vec![0, 1, 2, 3],
        };
        (Box::new(m), batch)
    }

    #[test]
    fn f32_reference_is_exact_copy() {
        let (m, batch) = model_and_batch();
        let mut r = quantize_reference(m.as_ref(), Precision::F32).unwrap();
        let mut m = m;
        let a = m.capture_activation(&batch, 1).unwrap();
        let b = r.capture_activation(&batch, 1).unwrap();
        assert!(a.allclose(&b, 1e-6));
    }

    #[test]
    fn int8_reference_is_close_but_not_identical() {
        let (m, batch) = model_and_batch();
        let mut r = quantize_reference(m.as_ref(), Precision::Int8).unwrap();
        let mut m = m;
        let a = m.capture_activation(&batch, 1).unwrap();
        let b = r.capture_activation(&batch, 1).unwrap();
        let rel = a.sub(&b).unwrap().norm() / a.norm().max(1e-9);
        assert!(rel > 0.0, "int8 must differ");
        assert!(rel < 0.25, "int8 relative activation error {rel} too large");
    }

    #[test]
    fn f16_reference_closer_than_int8() {
        let (m, batch) = model_and_batch();
        let mut m = m;
        let a = m.capture_activation(&batch, 1).unwrap();
        let mut r16 = quantize_reference(m.as_ref(), Precision::F16).unwrap();
        let mut r8 = quantize_reference(m.as_ref(), Precision::Int8).unwrap();
        let e16 = a.sub(&r16.capture_activation(&batch, 1).unwrap()).unwrap().norm();
        let e8 = a.sub(&r8.capture_activation(&batch, 1).unwrap()).unwrap().norm();
        assert!(e16 < e8, "f16 {e16} vs int8 {e8}");
    }

    #[test]
    fn reference_parameters_are_frozen() {
        let (m, _) = model_and_batch();
        let r = quantize_reference(m.as_ref(), Precision::Int8).unwrap();
        assert!(r.params().iter().all(|p| !p.requires_grad));
    }

    #[test]
    fn speedup_ordering_matches_paper() {
        assert!(Precision::Int8.cpu_speedup() > Precision::F16.cpu_speedup());
        assert!(Precision::F16.cpu_speedup() > Precision::F32.cpu_speedup());
    }
}
