//! Post-training quantization for Egeria's reference models (§4.1.3).
//!
//! The paper instantly compresses a training-model snapshot to int8 so the
//! reference runs fast on CPUs. This crate provides:
//!
//! - [`qtensor::QTensor`]: a real int8 tensor (symmetric, per-tensor or
//!   per-channel scales) with quantize/dequantize and an int8 matmul kernel
//!   whose speed advantage is measured by the Table 2 benchmark,
//! - [`fake`]: fake-quantization (quantize→dequantize) used to build
//!   reference *models*: the reference keeps f32 storage but carries exactly
//!   the int8 (or f16) rounding error, which is what determines plasticity
//!   accuracy; execution speed is benchmarked separately on the real int8
//!   kernels and modeled in `egeria-simsys` (substitution documented in
//!   DESIGN.md),
//! - [`calibrate`]: min/max observers for static quantization (CNNs) and
//!   per-call dynamic scaling (attention/linear models), mirroring the
//!   paper's static-for-CV / dynamic-for-NLP split,
//! - [`model`]: whole-model reference generation at int8 / f16 / f32
//!   precision (Table 2's sweep).

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod fake;
pub mod model;
pub mod qtensor;

pub use model::{quantize_reference, Precision};
pub use qtensor::QTensor;
