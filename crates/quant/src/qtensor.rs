//! Real int8 tensors and kernels.

use egeria_tensor::{pool, simd, Result, Tensor, TensorError, ThreadPool};

/// Quantization granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One scale for the whole tensor.
    PerTensor,
    /// One scale per leading-dimension slice (conv/linear output channels).
    PerChannel,
}

/// A symmetric int8 tensor: `value ≈ scale[channel] * q`.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    data: Vec<i8>,
    scales: Vec<f32>,
    dims: Vec<usize>,
    granularity: Granularity,
}

impl QTensor {
    /// Quantizes an f32 tensor symmetrically into int8.
    pub fn quantize(t: &Tensor, granularity: Granularity) -> Result<QTensor> {
        let dims = t.dims().to_vec();
        match granularity {
            Granularity::PerTensor => {
                let scale = scale_for(t.data());
                let data = t.data().iter().map(|&x| quant_one(x, scale)).collect();
                Ok(QTensor {
                    data,
                    scales: vec![scale],
                    dims,
                    granularity,
                })
            }
            Granularity::PerChannel => {
                let channels = *dims.first().ok_or(TensorError::ShapeMismatch {
                    op: "quantize per-channel",
                    lhs: dims.clone(),
                    rhs: vec![],
                })?;
                let inner = t.numel() / channels.max(1);
                let mut data = Vec::with_capacity(t.numel());
                let mut scales = Vec::with_capacity(channels);
                for c in 0..channels {
                    let slice = &t.data()[c * inner..(c + 1) * inner];
                    let scale = scale_for(slice);
                    scales.push(scale);
                    data.extend(slice.iter().map(|&x| quant_one(x, scale)));
                }
                Ok(QTensor {
                    data,
                    scales,
                    dims,
                    granularity,
                })
            }
        }
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Result<Tensor> {
        let numel: usize = self.dims.iter().product();
        let mut out = Vec::with_capacity(numel);
        match self.granularity {
            Granularity::PerTensor => {
                let s = self.scales[0];
                out.extend(self.data.iter().map(|&q| q as f32 * s));
            }
            Granularity::PerChannel => {
                let channels = self.scales.len();
                let inner = numel / channels.max(1);
                for (c, &s) in self.scales.iter().enumerate() {
                    out.extend(
                        self.data[c * inner..(c + 1) * inner]
                            .iter()
                            .map(|&q| q as f32 * s),
                    );
                }
            }
        }
        Tensor::from_vec(out, &self.dims)
    }

    /// Raw int8 payload.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Quantization scales (one entry per-tensor, or one per channel).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Tensor dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Memory footprint in bytes (payload + scales), for the paper's
    /// 3–4× footprint-reduction claim.
    pub fn byte_size(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }
}

fn scale_for(xs: &[f32]) -> f32 {
    let max = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    // egeria-lint: allow(float-exact-eq): an abs-max is exactly 0.0 iff the
    // slice is all zeros (NaN never survives f32::max against 0.0); the
    // guard prevents a 0/0 scale, and 1.0 round-trips the zero tensor.
    if max == 0.0 {
        1.0
    } else {
        max / 127.0
    }
}

fn quant_one(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(-127.0, 127.0) as i8
}

/// Int8 matrix multiply with i32 accumulation: `a (m×k, per-tensor) ·
/// b (k×n from a per-tensor-quantized matrix) → f32 (m×n)`.
///
/// This is the CPU-inference kernel whose speed Table 2 compares against
/// f32; it processes 1-byte operands with integer MACs.
pub fn qmatmul(a: &QTensor, b: &QTensor) -> Result<Tensor> {
    if a.dims.len() != 2 || b.dims.len() != 2 || a.dims[1] != b.dims[0] {
        return Err(TensorError::ShapeMismatch {
            op: "qmatmul",
            lhs: a.dims.clone(),
            rhs: b.dims.clone(),
        });
    }
    if a.granularity != Granularity::PerTensor || b.granularity != Granularity::PerTensor {
        return Err(TensorError::Numerical(
            "qmatmul requires per-tensor scales".into(),
        ));
    }
    let (m, k) = (a.dims[0], a.dims[1]);
    let n = b.dims[1];
    let scale = a.scales[0] * b.scales[0];
    let mut out = vec![0.0f32; m * n];
    // Row-parallel over the output: each pool task owns a disjoint output
    // row whose i32 dot products run on the SIMD layer (sign-extending
    // widened loads, exact integer accumulation) before the single f32
    // rescale. Integer adds associate exactly, so results are bit-identical
    // for every thread count *and* every ISA.
    pool::for_each_batch_mut(ThreadPool::global(), &mut out, n, |i, orow| {
        let arow = &a.data[i * k..(i + 1) * k];
        let mut acc = vec![0i32; n];
        simd::qmatmul_row(arow, &b.data, n, &mut acc);
        for (o, &s) in orow.iter_mut().zip(acc.iter()) {
            *o = s as f32 * scale;
        }
    });
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use egeria_tensor::Rng;

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn(&[64], &mut rng);
        let q = QTensor::quantize(&t, Granularity::PerTensor).unwrap();
        let back = q.dequantize().unwrap();
        let scale = q.scales[0];
        for (&a, &b) in t.data().iter().zip(back.data().iter()) {
            assert!((a - b).abs() <= scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn per_channel_beats_per_tensor_on_skewed_channels() {
        // One tiny channel next to one huge channel: per-tensor wastes
        // resolution on the tiny one.
        let mut data = vec![0.0f32; 32];
        for i in 0..16 {
            data[i] = 0.01 * (i as f32 - 8.0);
            data[16 + i] = 10.0 * (i as f32 - 8.0);
        }
        let t = Tensor::from_vec(data, &[2, 16]).unwrap();
        let per_t = QTensor::quantize(&t, Granularity::PerTensor).unwrap();
        let per_c = QTensor::quantize(&t, Granularity::PerChannel).unwrap();
        let err_t = t.sub(&per_t.dequantize().unwrap()).unwrap().sq_norm();
        let err_c = t.sub(&per_c.dequantize().unwrap()).unwrap().sq_norm();
        assert!(err_c < err_t, "per-channel {err_c} vs per-tensor {err_t}");
    }

    #[test]
    fn zero_tensor_round_trips() {
        let t = Tensor::zeros(&[8]);
        let q = QTensor::quantize(&t, Granularity::PerTensor).unwrap();
        assert_eq!(q.dequantize().unwrap(), t);
    }

    #[test]
    fn byte_size_is_quarter_of_f32() {
        let t = Tensor::zeros(&[1000]);
        let q = QTensor::quantize(&t, Granularity::PerTensor).unwrap();
        // f32 payload would be 4000 bytes.
        assert!(q.byte_size() < 1100);
    }

    #[test]
    fn qmatmul_approximates_f32_matmul() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[8, 16], &mut rng);
        let b = Tensor::randn(&[16, 8], &mut rng);
        let exact = a.matmul(&b).unwrap();
        let qa = QTensor::quantize(&a, Granularity::PerTensor).unwrap();
        let qb = QTensor::quantize(&b, Granularity::PerTensor).unwrap();
        let approx = qmatmul(&qa, &qb).unwrap();
        let rel = exact.sub(&approx).unwrap().norm() / exact.norm();
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn qmatmul_bit_identical_across_isas() {
        use egeria_tensor::simd::{self, Isa};
        let mut rng = Rng::new(5);
        let a = Tensor::randn(&[5, 33], &mut rng);
        let b = Tensor::randn(&[33, 9], &mut rng);
        let qa = QTensor::quantize(&a, Granularity::PerTensor).unwrap();
        let qb = QTensor::quantize(&b, Granularity::PerTensor).unwrap();
        // Integer accumulation is exact, so scalar and vector ISAs must
        // agree bit-for-bit (process-global set_isa; restored to default).
        simd::set_isa(Isa::Scalar);
        let s = qmatmul(&qa, &qb).unwrap();
        simd::set_isa(simd::detect());
        let v = qmatmul(&qa, &qb).unwrap();
        assert_eq!(s, v);
    }

    #[test]
    fn qmatmul_rejects_shape_mismatch() {
        let a = QTensor::quantize(&Tensor::zeros(&[2, 3]), Granularity::PerTensor).unwrap();
        let b = QTensor::quantize(&Tensor::zeros(&[2, 3]), Granularity::PerTensor).unwrap();
        assert!(qmatmul(&a, &b).is_err());
    }
}
