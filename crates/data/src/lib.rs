//! Synthetic datasets and the training data loader.
//!
//! The paper trains on ImageNet/CIFAR-10/VOC/WMT16/SQuAD; this reproduction
//! substitutes deterministic synthetic datasets with learnable structure
//! (documented in DESIGN.md). Two properties of the paper's data pipeline
//! are preserved exactly because Egeria's design depends on them:
//!
//! 1. **Stateless augmentation** (§4.3): every augmented sample is a pure
//!    function of `(dataset seed, sample id)`, identical across epochs, so
//!    frozen-prefix activations can be cached and replayed.
//! 2. **Known-future sampling**: the loader fixes each epoch's batch order
//!    up front, so the prefetcher can see the incoming sample ids before
//!    the iteration reaches them ("we actually know the future").

// No unsafe outside egeria-tensor: enforced here and audited by egeria-lint.
#![forbid(unsafe_code)]

pub mod images;
pub mod loader;
pub mod qa;
pub mod segmentation;
pub mod translation;

pub use loader::{DataLoader, Dataset};
